"""Sampling harness over the concrete interpreter.

Static certification claims are falsifiable by running the program: a
single stuck execution refutes "deadlock-free" (if cyclically stuck) or
"stall-free" (if stalled).  ``sample_runs`` executes a program under
many seeds and aggregates outcomes; the test suite uses it to
differential-test every static analysis, and the precision benchmarks
use it as a cheap lower bound on anomaly reachability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .. import obs
from ..lang.ast_nodes import Program
from .scheduler import RunResult, run_program

__all__ = ["SimulationSummary", "sample_runs"]


@dataclass
class SimulationSummary:
    """Aggregate of many seeded runs of one program."""

    runs: int
    completed: int = 0
    stuck: int = 0
    deadlock_runs: int = 0
    stall_runs: int = 0
    observed_deadlock_tasks: Dict[str, int] = field(default_factory=dict)
    observed_stall_tasks: Dict[str, int] = field(default_factory=dict)
    example_deadlock: RunResult | None = None
    example_stall: RunResult | None = None

    @property
    def ever_deadlocked(self) -> bool:
        return self.deadlock_runs > 0

    @property
    def ever_stalled(self) -> bool:
        return self.stall_runs > 0

    @property
    def ever_stuck(self) -> bool:
        return self.stuck > 0

    def describe(self) -> str:
        return (
            f"{self.runs} runs: {self.completed} completed, "
            f"{self.stuck} stuck ({self.deadlock_runs} deadlocked, "
            f"{self.stall_runs} stalled)"
        )


def sample_runs(
    program: Program,
    runs: int = 100,
    seed: int = 0,
    max_steps: int = 100_000,
    max_loop_iters: int = 8,
) -> SimulationSummary:
    """Run ``program`` under ``runs`` different scheduler seeds."""
    summary = SimulationSummary(runs=runs)
    observing = obs.is_enabled()
    with obs.span("interp.sample_runs", runs=runs):
        for i in range(runs):
            result = run_program(
                program,
                seed=seed + i,
                max_steps=max_steps,
                max_loop_iters=max_loop_iters,
            )
            if observing:
                obs.counter("interp.runs").inc()
                obs.counter("interp.scheduler_steps").inc(result.steps)
            if result.completed:
                summary.completed += 1
                continue
            summary.stuck += 1
            if result.is_deadlock:
                summary.deadlock_runs += 1
                if summary.example_deadlock is None:
                    summary.example_deadlock = result
                for task in result.deadlock_tasks:
                    summary.observed_deadlock_tasks[task] = (
                        summary.observed_deadlock_tasks.get(task, 0) + 1
                    )
            if result.is_stall:
                summary.stall_runs += 1
                if summary.example_stall is None:
                    summary.example_stall = result
                for task in result.stall_tasks:
                    summary.observed_stall_tasks[task] = (
                        summary.observed_stall_tasks.get(task, 0) + 1
                    )
    return summary

"""Concrete execution of ADL programs: task threads and the scheduler.

This is the dynamic substrate the paper's static analyses are judged
against: it *runs* programs under the barrier rendezvous semantics —
each task advances to its next rendezvous, a nondeterministic scheduler
fires ready send/accept pairs, and execution either completes or gets
stuck.  Stuck states are classified into runtime stalls and deadlocks
using the same coupling idea as the wave model.

Conditions are opaque in the language, so branch outcomes are drawn
from a seeded RNG unless the condition names a variable with a known
boolean value (assigned locally or bound by an ``accept m (v)``
rendezvous, whose value is copied from the sender's variable of the
same name — enough to execute the Figure 5(d) co-dependence pattern
faithfully).  ``while`` loops re-draw their condition each iteration
and are capped at ``max_loop_iters`` to guarantee termination of the
simulation itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import SimulationError
from ..lang.ast_nodes import (
    Accept,
    Assign,
    Condition,
    For,
    If,
    Null,
    Program,
    Send,
    Signal,
    Statement,
    TaskDecl,
    While,
    walk_statements,
)

__all__ = ["Request", "TaskThread", "RunResult", "run_program"]


@dataclass(frozen=True)
class Request:
    """A pending rendezvous: what a task is currently waiting on."""

    task: str
    signal: Signal
    sign: str  # "+" send, "-" accept
    stmt: Statement

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.task} waiting on ({self.signal}, {self.sign})"


class _Frame:
    """One activation frame of a task thread."""

    __slots__ = ("body", "index", "loop", "iters")

    def __init__(
        self,
        body: Sequence[Statement],
        loop: Optional[Union[While, For]] = None,
        iters: int = 0,
    ) -> None:
        self.body = body
        self.index = 0
        self.loop = loop
        self.iters = iters


class TaskThread:
    """Interprets one task up to its next rendezvous request."""

    def __init__(
        self,
        task: TaskDecl,
        rng: random.Random,
        max_loop_iters: int = 8,
    ) -> None:
        self.task = task
        self.rng = rng
        self.max_loop_iters = max_loop_iters
        self.env: Dict[str, object] = {}
        self.frames: List[_Frame] = [_Frame(task.body)]
        self.pending: Optional[Request] = None
        self.done = False
        self.steps = 0

    # -- condition / expression evaluation --------------------------------

    def _eval_condition(self, cond: Condition) -> bool:
        if cond.text == "true":
            return True
        if cond.text == "false":
            return False
        if cond.var is not None and cond.var in self.env:
            value = bool(self.env[cond.var])
            return not value if cond.negated else value
        return self.rng.random() < 0.5

    def _eval_expr(self, expr: str) -> object:
        if expr == "true":
            return True
        if expr == "false":
            return False
        if expr == "?":
            return self.rng.random() < 0.5
        try:
            return int(expr)
        except ValueError:
            return self.env.get(expr, self.rng.random() < 0.5)

    # -- stepping ---------------------------------------------------------

    def advance(self) -> Optional[Request]:
        """Run until the next rendezvous or completion.

        Returns the pending request, or None when the task finished.
        Idempotent while a request is pending.
        """
        if self.pending is not None:
            return self.pending
        while self.frames:
            frame = self.frames[-1]
            if frame.index >= len(frame.body):
                self.frames.pop()
                if frame.loop is not None and isinstance(frame.loop, While):
                    if (
                        frame.iters + 1 < self.max_loop_iters
                        and self._eval_condition(frame.loop.condition)
                    ):
                        self.frames.append(
                            _Frame(
                                frame.loop.body,
                                loop=frame.loop,
                                iters=frame.iters + 1,
                            )
                        )
                continue
            stmt = frame.body[frame.index]
            frame.index += 1
            self.steps += 1
            if isinstance(stmt, Send):
                self.pending = Request(
                    task=self.task.name,
                    signal=Signal(stmt.task, stmt.message),
                    sign="+",
                    stmt=stmt,
                )
                return self.pending
            if isinstance(stmt, Accept):
                self.pending = Request(
                    task=self.task.name,
                    signal=Signal(self.task.name, stmt.message),
                    sign="-",
                    stmt=stmt,
                )
                return self.pending
            if isinstance(stmt, Assign):
                self.env[stmt.var] = self._eval_expr(stmt.expr)
            elif isinstance(stmt, Null):
                pass
            elif isinstance(stmt, If):
                branch = (
                    stmt.then_body
                    if self._eval_condition(stmt.condition)
                    else stmt.else_body
                )
                if branch:
                    self.frames.append(_Frame(branch))
            elif isinstance(stmt, While):
                if self._eval_condition(stmt.condition) and stmt.body:
                    self.frames.append(_Frame(stmt.body, loop=stmt, iters=0))
            elif isinstance(stmt, For):
                if stmt.trip_count > 0 and stmt.body:
                    # One fresh frame per iteration; the frames hold the
                    # same body, so pop order is immaterial.
                    self.frames.extend(
                        _Frame(stmt.body) for _ in range(stmt.trip_count)
                    )
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown statement {stmt!r}")
        self.done = True
        return None

    def complete_rendezvous(self, partner: "TaskThread") -> None:
        """Resolve the pending request (called by the scheduler)."""
        if self.pending is None:
            raise SimulationError("no pending rendezvous to complete")
        stmt = self.pending.stmt
        if isinstance(stmt, Accept) and stmt.binds is not None:
            self.env[stmt.binds] = partner.env.get(
                stmt.binds, self.rng.random() < 0.5
            )
        self.pending = None

    def remaining_statements(self) -> Iterator[Statement]:
        """Over-approximation of statements this task may still execute.

        Includes the pending statement itself, everything after the
        current index in each frame (recursively, both branches of
        conditionals), and full loop bodies for loops that may iterate
        again.  Used by runtime stuck-state classification.
        """
        if self.pending is not None:
            yield self.pending.stmt
        for frame in self.frames:
            rest = frame.body[frame.index :]
            yield from rest
            yield from walk_statements(rest)
            if frame.loop is not None:
                yield from walk_statements(frame.loop.body)


@dataclass
class RunResult:
    """Outcome of one concrete execution."""

    status: str  # "completed" | "stuck"
    steps: int
    trace: List[Tuple[str, str, Signal]] = field(default_factory=list)
    waiting: Dict[str, Request] = field(default_factory=dict)
    stall_tasks: Tuple[str, ...] = ()
    deadlock_tasks: Tuple[str, ...] = ()

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def is_stall(self) -> bool:
        return bool(self.stall_tasks)

    @property
    def is_deadlock(self) -> bool:
        return bool(self.deadlock_tasks)


def _classify_stuck(threads: Dict[str, TaskThread]) -> Tuple[
    Tuple[str, ...], Tuple[str, ...]
]:
    """(stall_tasks, deadlock_tasks) among the waiting threads.

    Task ``u`` *may be helped by* task ``v`` when ``v``'s remaining
    statements contain a complement of ``u``'s pending request.  A task
    nobody can help is stalled; tasks on a cycle of the may-be-helped-by
    relation are deadlocked.
    """
    waiting = {
        name: t for name, t in threads.items() if t.pending is not None
    }
    helpers: Dict[str, List[str]] = {}
    for name, thread in waiting.items():
        req = thread.pending
        assert req is not None
        hs: List[str] = []
        for other_name, other in waiting.items():
            if other_name == name:
                continue
            for stmt in other.remaining_statements():
                if req.sign == "+" and isinstance(stmt, Accept):
                    if (
                        other_name == req.signal.task
                        and stmt.message == req.signal.message
                    ):
                        hs.append(other_name)
                        break
                elif req.sign == "-" and isinstance(stmt, Send):
                    if (
                        stmt.task == req.signal.task
                        and stmt.message == req.signal.message
                    ):
                        hs.append(other_name)
                        break
        helpers[name] = hs
    stalls = tuple(sorted(n for n, hs in helpers.items() if not hs))
    # Cycle detection over the helped-by graph (tiny: one node per task).
    deadlocked: List[str] = []
    for start in helpers:
        if start in stalls:
            continue
        seen = set()
        stack = list(helpers[start])
        found = False
        while stack:
            node = stack.pop()
            if node == start:
                found = True
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(helpers.get(node, ()))
        if found:
            deadlocked.append(start)
    return stalls, tuple(sorted(deadlocked))


def run_program(
    program: Program,
    seed: int = 0,
    max_steps: int = 100_000,
    max_loop_iters: int = 8,
) -> RunResult:
    """Execute ``program`` once under a seeded random scheduler.

    Procedures are inlined first, so ``call`` statements execute with
    exact Ada internal-call semantics (same task, same rendezvous).
    """
    from ..transforms.inline import inline_procedures

    program, _ = inline_procedures(program)
    rng = random.Random(seed)
    threads = {
        task.name: TaskThread(task, random.Random(rng.random()), max_loop_iters)
        for task in program.tasks
    }
    trace: List[Tuple[str, str, Signal]] = []
    steps = 0
    while steps < max_steps:
        requests = {
            name: thread.advance() for name, thread in threads.items()
        }
        pending = {n: r for n, r in requests.items() if r is not None}
        if not pending:
            return RunResult(status="completed", steps=steps, trace=trace)
        matches: List[Tuple[str, str]] = []
        for sname, sreq in pending.items():
            if sreq.sign != "+":
                continue
            target = pending.get(sreq.signal.task)
            if (
                target is not None
                and target.sign == "-"
                and target.signal == sreq.signal
            ):
                matches.append((sname, sreq.signal.task))
        if not matches:
            stall_tasks, deadlock_tasks = _classify_stuck(threads)
            return RunResult(
                status="stuck",
                steps=steps,
                trace=trace,
                waiting=dict(pending),
                stall_tasks=stall_tasks,
                deadlock_tasks=deadlock_tasks,
            )
        sender_name, accepter_name = rng.choice(matches)
        sender = threads[sender_name]
        accepter = threads[accepter_name]
        signal = pending[sender_name].signal
        accepter.complete_rendezvous(sender)
        sender.complete_rendezvous(accepter)
        trace.append((sender_name, accepter_name, signal))
        steps += 1
    raise SimulationError(
        f"simulation exceeded {max_steps} rendezvous steps; "
        "likely an unbounded loop"
    )

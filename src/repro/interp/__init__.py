"""Concrete rendezvous interpreter: the dynamic validation substrate."""

from .runtime import SimulationSummary, sample_runs
from .scheduler import Request, RunResult, TaskThread, run_program

__all__ = [
    "Request",
    "RunResult",
    "SimulationSummary",
    "TaskThread",
    "run_program",
    "sample_runs",
]

"""Natural-loop detection and nesting depth on task CFGs.

Used by the unroll transform's cost model (Section 3.1.4: the
double-unroll transform grows the program as
``O(statements * 2^nest_depth)``) and by tests that validate loop
structure after transformation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..lang.ast_nodes import For, Statement, TaskDecl, While
from .graph import CFGNode, TaskCFG
from .reducibility import back_edges

__all__ = ["NaturalLoop", "natural_loops", "loop_nest_depth", "ast_loop_depth"]


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop: its header and full body (header included)."""

    header: CFGNode
    body: FrozenSet[CFGNode]

    def __contains__(self, node: CFGNode) -> bool:
        return node in self.body


def natural_loops(cfg: TaskCFG) -> List[NaturalLoop]:
    """Natural loops of a (reducible) CFG, one per back edge.

    Loops sharing a header are returned separately; callers that need
    merged loops can union bodies by header.
    """
    loops: List[NaturalLoop] = []
    for tail, header in back_edges(cfg):
        body = {header, tail}
        stack = [tail]
        while stack:
            node = stack.pop()
            if node is header:
                continue
            for pred in cfg.predecessors(node):
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        loops.append(NaturalLoop(header=header, body=frozenset(body)))
    return loops


def loop_nest_depth(cfg: TaskCFG) -> int:
    """Maximum loop nesting depth of the CFG (0 for loop-free)."""
    loops = natural_loops(cfg)
    depth: Dict[CFGNode, int] = {}
    for node in cfg.nodes:
        depth[node] = sum(1 for loop in loops if node in loop)
    return max(depth.values(), default=0)


def ast_loop_depth(body: Sequence[Statement]) -> int:
    """Maximum syntactic loop nesting depth of a statement sequence."""
    best = 0
    for stmt in body:
        if isinstance(stmt, (While, For)):
            best = max(best, 1 + ast_loop_depth(stmt.body))
        elif hasattr(stmt, "then_body"):
            best = max(
                best,
                ast_loop_depth(stmt.then_body),  # type: ignore[arg-type]
                ast_loop_depth(stmt.else_body),  # type: ignore[attr-defined]
            )
    return best

"""Per-task control flow graphs.

Each task of an ADL program gets a :class:`TaskCFG`: a directed graph
over :class:`CFGNode` objects with a unique entry and exit.  Rendezvous
statements become ``send``/``accept`` nodes; conditionals contribute
``branch``/``join`` nodes; everything else is a ``stmt`` node.  The
sync-graph builder later erases non-rendezvous nodes, but dominator and
co-executability analyses work on the full CFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

import networkx as nx

from ..lang.ast_nodes import Statement

__all__ = ["CFGNode", "TaskCFG", "NodeKind"]


class NodeKind:
    """Kinds of CFG nodes (string constants for cheap comparison)."""

    ENTRY = "entry"
    EXIT = "exit"
    SEND = "send"
    ACCEPT = "accept"
    STMT = "stmt"
    BRANCH = "branch"
    JOIN = "join"

    RENDEZVOUS = frozenset({SEND, ACCEPT})


@dataclass(frozen=True)
class CFGNode:
    """One node of a task CFG.

    ``uid`` is unique within the task.  ``stmt`` points at the AST
    statement for rendezvous/assign nodes (None for structural nodes).
    ``label`` is a human-readable description used in DOT output and
    error messages.
    """

    task: str
    uid: int
    kind: str
    label: str
    stmt: Optional[Statement] = field(default=None, compare=False, repr=False)

    @property
    def is_rendezvous(self) -> bool:
        return self.kind in NodeKind.RENDEZVOUS

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.task}#{self.uid}:{self.label}"


class TaskCFG:
    """Control flow graph of a single task.

    The graph always has exactly one ``entry`` and one ``exit`` node and
    every node lies on some entry→exit path (the builder guarantees
    this; :meth:`check_connected` re-verifies it).
    """

    def __init__(self, task: str) -> None:
        self.task = task
        self._nodes: List[CFGNode] = []
        self._succ: Dict[CFGNode, List[CFGNode]] = {}
        self._pred: Dict[CFGNode, List[CFGNode]] = {}
        self.entry: CFGNode = self.add_node(NodeKind.ENTRY, "entry")
        self.exit: CFGNode = self.add_node(NodeKind.EXIT, "exit")

    # -- construction ----------------------------------------------------

    def add_node(
        self,
        kind: str,
        label: str,
        stmt: Optional[Statement] = None,
    ) -> CFGNode:
        node = CFGNode(
            task=self.task, uid=len(self._nodes), kind=kind, label=label, stmt=stmt
        )
        self._nodes.append(node)
        self._succ[node] = []
        self._pred[node] = []
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode) -> None:
        if dst not in self._succ[src]:
            self._succ[src].append(dst)
            self._pred[dst].append(src)

    # -- queries -----------------------------------------------------------

    @property
    def nodes(self) -> Tuple[CFGNode, ...]:
        return tuple(self._nodes)

    def successors(self, node: CFGNode) -> Tuple[CFGNode, ...]:
        return tuple(self._succ[node])

    def predecessors(self, node: CFGNode) -> Tuple[CFGNode, ...]:
        return tuple(self._pred[node])

    def edges(self) -> Iterator[Tuple[CFGNode, CFGNode]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    @property
    def rendezvous_nodes(self) -> Tuple[CFGNode, ...]:
        return tuple(n for n in self._nodes if n.is_rendezvous)

    def reachable_from(self, start: CFGNode) -> Set[CFGNode]:
        """All nodes reachable from ``start`` (inclusive)."""
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in self._succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def reaches(self, src: CFGNode, dst: CFGNode) -> bool:
        """True if there is a (possibly empty) control path src → dst."""
        return dst in self.reachable_from(src)

    def check_connected(self) -> None:
        """Assert every node is on an entry→exit path; raises otherwise."""
        from_entry = self.reachable_from(self.entry)
        reverse = self.to_networkx().reverse(copy=False)
        to_exit = set(nx.descendants(reverse, self.exit)) | {self.exit}
        for node in self._nodes:
            if node not in from_entry or node not in to_exit:
                raise AssertionError(
                    f"CFG node {node} is not on an entry-to-exit path"
                )

    def to_networkx(self) -> "nx.DiGraph":
        g = nx.DiGraph()
        g.add_nodes_from(self._nodes)
        g.add_edges_from(self.edges())
        return g

    def __len__(self) -> int:
        return len(self._nodes)

"""Construction of a :class:`~repro.cfg.graph.TaskCFG` from a task AST.

Structured control flow maps onto the CFG in the usual way:

* leaf statements become one node in a straight line;
* ``if`` becomes a ``branch`` node with edges into both arms and a
  ``join`` node where they reconverge (an empty arm is a direct
  branch→join edge);
* ``while`` becomes a ``branch`` loop-header with an edge into the body,
  a back edge body→header, and an exit edge header→continuation;
* ``for`` is structurally identical to ``while`` (its static bounds only
  matter to the exact unrolling transform).

Because the source language is fully structured, the resulting CFGs are
always reducible; :mod:`repro.cfg.reducibility` verifies this.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..lang.ast_nodes import (
    Accept,
    Assign,
    For,
    If,
    Null,
    Program,
    Send,
    Statement,
    TaskDecl,
    While,
)
from .graph import CFGNode, NodeKind, TaskCFG

__all__ = ["build_task_cfg", "build_cfgs"]


def build_task_cfg(task: TaskDecl) -> TaskCFG:
    """Build the control flow graph of a single task."""
    cfg = TaskCFG(task.name)
    tail = _emit_body(cfg, task.body, cfg.entry)
    cfg.add_edge(tail, cfg.exit)
    cfg.check_connected()
    return cfg


def build_cfgs(program: Program) -> Dict[str, TaskCFG]:
    """Build CFGs for every task of ``program``, keyed by task name."""
    return {task.name: build_task_cfg(task) for task in program.tasks}


def _emit_body(cfg: TaskCFG, body: Sequence[Statement], pred: CFGNode) -> CFGNode:
    """Emit ``body`` after ``pred``; return the last node of the sequence.

    The returned node is the unique fall-through point (a join node for
    compound tails), so callers can keep chaining.
    """
    current = pred
    for stmt in body:
        current = _emit_stmt(cfg, stmt, current)
    return current


def _emit_stmt(cfg: TaskCFG, stmt: Statement, pred: CFGNode) -> CFGNode:
    if isinstance(stmt, Send):
        node = cfg.add_node(
            NodeKind.SEND, f"send {stmt.task}.{stmt.message}", stmt
        )
        cfg.add_edge(pred, node)
        return node
    if isinstance(stmt, Accept):
        node = cfg.add_node(NodeKind.ACCEPT, f"accept {stmt.message}", stmt)
        cfg.add_edge(pred, node)
        return node
    if isinstance(stmt, (Assign, Null)):
        label = (
            f"{stmt.var} := {stmt.expr}" if isinstance(stmt, Assign) else "null"
        )
        node = cfg.add_node(NodeKind.STMT, label, stmt)
        cfg.add_edge(pred, node)
        return node
    if isinstance(stmt, If):
        branch = cfg.add_node(NodeKind.BRANCH, f"if {stmt.condition}", stmt)
        join = cfg.add_node(NodeKind.JOIN, "join", stmt)
        cfg.add_edge(pred, branch)
        then_tail = _emit_body(cfg, stmt.then_body, branch)
        cfg.add_edge(then_tail, join)
        else_tail = _emit_body(cfg, stmt.else_body, branch)
        cfg.add_edge(else_tail, join)
        return join
    if isinstance(stmt, (While, For)):
        label = (
            f"while {stmt.condition}"
            if isinstance(stmt, While)
            else f"for {stmt.var} in {stmt.lower}..{stmt.upper}"
        )
        header = cfg.add_node(NodeKind.BRANCH, label, stmt)
        after = cfg.add_node(NodeKind.JOIN, "loop-exit", stmt)
        cfg.add_edge(pred, header)
        body_tail = _emit_body(cfg, stmt.body, header)
        cfg.add_edge(body_tail, header)  # back edge
        cfg.add_edge(header, after)
        return after
    raise TypeError(f"unknown statement {stmt!r}")  # pragma: no cover

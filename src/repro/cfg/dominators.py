"""Dominator and postdominator computation on task CFGs.

Rule 1 of the paper's ordering framework (Section 4.1) says: *if r
dominates s in the control flow graph of their task, then r must
precede s*.  We also expose the dual — if s postdominates r, then any
execution that runs r must later run s — which together with the
paper's assumption that every rendezvous completes gives additional
safe must-precede facts.

The implementation delegates to networkx's Lengauer–Tarjan style
``immediate_dominators`` and derives full dominator sets from the
immediate-dominator tree.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

import networkx as nx

from .graph import CFGNode, TaskCFG

__all__ = [
    "immediate_dominators",
    "dominator_sets",
    "postdominator_sets",
    "dominates",
]


def immediate_dominators(cfg: TaskCFG) -> Dict[CFGNode, CFGNode]:
    """Map each reachable node to its immediate dominator.

    The entry node maps to itself (networkx convention).
    """
    return nx.immediate_dominators(cfg.to_networkx(), cfg.entry)


def _sets_from_idom(idom: Dict[CFGNode, CFGNode], root: CFGNode) -> Dict[
    CFGNode, FrozenSet[CFGNode]
]:
    memo: Dict[CFGNode, FrozenSet[CFGNode]] = {root: frozenset({root})}

    def chase(node: CFGNode) -> FrozenSet[CFGNode]:
        cached = memo.get(node)
        if cached is not None:
            return cached
        # Iterative walk up the idom tree to avoid deep recursion on
        # long straight-line CFGs.
        chain = []
        cur = node
        while cur not in memo:
            chain.append(cur)
            cur = idom[cur]
        acc: Set[CFGNode] = set(memo[cur])
        for n in reversed(chain):
            acc = set(acc)
            acc.add(n)
            memo[n] = frozenset(acc)
        return memo[node]

    for node in idom:
        chase(node)
    return memo


def dominator_sets(cfg: TaskCFG) -> Dict[CFGNode, FrozenSet[CFGNode]]:
    """Map each node to the set of nodes that dominate it (inclusive)."""
    return _sets_from_idom(immediate_dominators(cfg), cfg.entry)


def postdominator_sets(cfg: TaskCFG) -> Dict[CFGNode, FrozenSet[CFGNode]]:
    """Map each node to the set of nodes that postdominate it (inclusive).

    Computed as dominators of the reversed CFG rooted at the exit node.
    """
    reverse = cfg.to_networkx().reverse(copy=True)
    idom = nx.immediate_dominators(reverse, cfg.exit)
    return _sets_from_idom(idom, cfg.exit)


def dominates(cfg: TaskCFG, a: CFGNode, b: CFGNode) -> bool:
    """True iff ``a`` dominates ``b`` in ``cfg``."""
    return a in dominator_sets(cfg).get(b, frozenset())

"""Reducibility checking for task CFGs.

The paper (Section 1, citing Hecht 1977) assumes every analyzed
procedure has a reducible control flow graph: each loop has a single
entry point.  ADL's structured syntax guarantees this, but workload
generators and transforms re-verify it, and the check documents the
assumption in executable form.

Test used: a flow graph is reducible iff every *retreating* edge of a
depth-first search is a *back* edge, i.e. its target dominates its
source.  Equivalently, deleting all back edges leaves an acyclic graph.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import networkx as nx

from ..errors import IrreducibleFlowError
from .dominators import dominator_sets
from .graph import CFGNode, TaskCFG

__all__ = ["back_edges", "is_reducible", "ensure_reducible"]


def back_edges(cfg: TaskCFG) -> List[Tuple[CFGNode, CFGNode]]:
    """Edges ``(u, v)`` where ``v`` dominates ``u`` (natural-loop back edges)."""
    dom = dominator_sets(cfg)
    return [(u, v) for (u, v) in cfg.edges() if v in dom.get(u, frozenset())]


def is_reducible(cfg: TaskCFG) -> bool:
    """True iff the CFG is reducible."""
    backs: Set[Tuple[CFGNode, CFGNode]] = set(back_edges(cfg))
    g = nx.DiGraph()
    g.add_nodes_from(cfg.nodes)
    g.add_edges_from(e for e in cfg.edges() if e not in backs)
    return nx.is_directed_acyclic_graph(g)


def ensure_reducible(cfg: TaskCFG) -> None:
    """Raise :class:`IrreducibleFlowError` if the CFG is irreducible."""
    if not is_reducible(cfg):
        raise IrreducibleFlowError(
            f"control flow graph of task {cfg.task!r} is irreducible; "
            "the paper's analyses require single-entry loops"
        )

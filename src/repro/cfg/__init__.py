"""Per-task control flow graphs: construction and structural analyses."""

from .build import build_cfgs, build_task_cfg
from .dominators import (
    dominates,
    dominator_sets,
    immediate_dominators,
    postdominator_sets,
)
from .graph import CFGNode, NodeKind, TaskCFG
from .loops import NaturalLoop, ast_loop_depth, loop_nest_depth, natural_loops
from .reducibility import back_edges, ensure_reducible, is_reducible

__all__ = [
    "CFGNode",
    "NaturalLoop",
    "NodeKind",
    "TaskCFG",
    "ast_loop_depth",
    "back_edges",
    "build_cfgs",
    "build_task_cfg",
    "dominates",
    "dominator_sets",
    "ensure_reducible",
    "immediate_dominators",
    "is_reducible",
    "loop_nest_depth",
    "natural_loops",
    "postdominator_sets",
]

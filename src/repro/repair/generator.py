"""Candidate generation: localized edits derived from cycle evidence.

The generator walks a convicted program's deadlock evidence — the CLG
cycle components the detector reported, projected back to tasks and
signals — and enumerates small source edits that could break the
cycle:

* ``swap_adjacent`` / ``move`` — reorder rendezvous within a task.
  Circular-wait deadlocks (crossed handshakes, dining philosophers)
  are ordering bugs; reordering is the canonical fix.
* ``insert_accept`` — add a missing ``accept`` for an evidence signal
  whose sends outnumber its accepts.
* ``delete`` / ``guard`` — remove, or make conditional, a rendezvous
  on the cycle.  Guarding never helps under the paper's all-paths-
  executable assumption (the guarded node still synchronizes on some
  path), so these candidates exist to be *rejected* — they exercise
  the verifier and keep the generator honest about the model.
* ``branch_merge`` / ``codependent`` — the paper's own Lemma-4 / §5.1
  transforms (Figure 5): semantics-preserving rewrites that enlarge
  what the polynomial analysis can certify, fixing *false* alarms
  without changing behaviour.

Only top-level statements of a task are edited (rendezvous nested in
conditionals are reachable through the transform-based candidates);
every candidate is tagged with the source spans it touches so the lint
layer can emit SARIF ``fix`` replacements.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Set, Tuple

from ..lang.ast_nodes import (
    Accept,
    Condition,
    If,
    Program,
    Send,
    Signal,
    Statement,
    TaskDecl,
)
from ..lang.pretty import pretty
from ..lang.validate import collect_signals
from ..transforms.branch_merge import merge_branch_rendezvous
from ..transforms.codependent import factor_codependent
from .model import RepairCandidate

if TYPE_CHECKING:  # pragma: no cover
    from ..api import AnalysisResult

__all__ = ["generate_candidates"]

# Bound on how far a `move` candidate displaces a statement: deadlock
# fixes are reorderings of *nearby* rendezvous; long-distance moves
# explode the candidate space without adding plausible fixes.
MAX_MOVE_DISTANCE = 3


def _stmt_signal(owner: str, stmt: Statement) -> Optional[Signal]:
    if isinstance(stmt, Send):
        return Signal(stmt.task, stmt.message)
    if isinstance(stmt, Accept):
        return Signal(owner, stmt.message)
    return None


def _stmt_text(owner: str, stmt: Statement) -> str:
    if isinstance(stmt, Send):
        return f"send {stmt.task}.{stmt.message}"
    if isinstance(stmt, Accept):
        return f"accept {stmt.message}"
    return type(stmt).__name__.lower()


def _spans(*stmts: Statement) -> Tuple:
    return tuple(s.loc for s in stmts if getattr(s, "loc", None) is not None)


def _evidence_tasks_and_signals(
    result: "AnalysisResult",
) -> Tuple[List[str], Set[Signal]]:
    """Tasks and signals implicated by the deadlock evidence.

    Falls back to every task/signal when the report carries no
    evidence (e.g. the exact algorithm, which reports waves, not CLG
    components).
    """
    tasks: Set[str] = set()
    signals: Set[Signal] = set()
    for ev in result.deadlock.evidence:
        tasks |= ev.tasks
        for node in ev.component:
            if node.is_rendezvous and node.signal is not None:
                signals.add(node.signal)
    if not tasks:
        tasks = set(result.program.task_names)
    if not signals:
        signals = set(collect_signals(result.program))
    order = {name: i for i, name in enumerate(result.program.task_names)}
    return sorted(tasks, key=lambda n: order.get(n, len(order))), signals


def _replace_task(
    program: Program, task: TaskDecl, body: Sequence[Statement]
) -> Program:
    return program.with_tasks(
        tuple(
            t.with_body(body) if t.name == task.name else t
            for t in program.tasks
        )
    )


def _reorder_candidates(
    program: Program,
    task: TaskDecl,
    relevant: Sequence[int],
) -> List[RepairCandidate]:
    body = task.body
    out: List[RepairCandidate] = []
    # swap_adjacent: both neighbours must be statements (any kind), at
    # least one a rendezvous on the cycle.
    for i in relevant:
        for j in (i - 1, i + 1):
            if not 0 <= j < len(body) or j < i:
                continue
            swapped = list(body)
            swapped[i], swapped[j] = swapped[j], swapped[i]
            out.append(
                RepairCandidate(
                    kind="swap_adjacent",
                    description=(
                        f"swap `{_stmt_text(task.name, body[i])}` with "
                        f"`{_stmt_text(task.name, body[j])}` in task "
                        f"{task.name}"
                    ),
                    program=_replace_task(program, task, swapped),
                    task=task.name,
                    spans=_spans(body[i], body[j]),
                    edit_size=2,
                )
            )
    # move: displace one cycle rendezvous up to MAX_MOVE_DISTANCE slots.
    for i in relevant:
        for j in range(
            max(0, i - MAX_MOVE_DISTANCE),
            min(len(body), i + MAX_MOVE_DISTANCE + 1),
        ):
            if abs(i - j) < 2:  # 0 = no-op, 1 = swap_adjacent already
                continue
            moved = list(body)
            stmt = moved.pop(i)
            moved.insert(j, stmt)
            out.append(
                RepairCandidate(
                    kind="move",
                    description=(
                        f"move `{_stmt_text(task.name, stmt)}` from "
                        f"position {i + 1} to {j + 1} in task {task.name}"
                    ),
                    program=_replace_task(program, task, moved),
                    task=task.name,
                    spans=_spans(stmt),
                    edit_size=abs(i - j) + 1,
                )
            )
    return out


def _insert_accept_candidates(
    program: Program, signals: Set[Signal]
) -> List[RepairCandidate]:
    counts = collect_signals(program)
    tasks = {t.name: t for t in program.tasks}
    out: List[RepairCandidate] = []
    for signal in sorted(signals, key=lambda s: (s.task, s.message)):
        sends, accepts = counts.get(signal, (0, 0))
        if sends <= accepts or signal.task not in tasks:
            continue
        task = tasks[signal.task]
        for pos in range(len(task.body) + 1):
            body = list(task.body)
            body.insert(pos, Accept(message=signal.message))
            anchor = task.body[pos] if pos < len(task.body) else None
            out.append(
                RepairCandidate(
                    kind="insert_accept",
                    description=(
                        f"insert `accept {signal.message}` at position "
                        f"{pos + 1} of task {task.name} "
                        f"({sends} send(s) vs {accepts} accept(s))"
                    ),
                    program=_replace_task(program, task, body),
                    task=task.name,
                    spans=_spans(anchor) if anchor is not None else (),
                    edit_size=1,
                )
            )
    return out


def _delete_and_guard_candidates(
    program: Program,
    task: TaskDecl,
    relevant: Sequence[int],
) -> List[RepairCandidate]:
    body = task.body
    out: List[RepairCandidate] = []
    for i in relevant:
        stmt = body[i]
        deleted = list(body)
        del deleted[i]
        out.append(
            RepairCandidate(
                kind="delete",
                description=(
                    f"delete `{_stmt_text(task.name, stmt)}` from task "
                    f"{task.name}"
                ),
                program=_replace_task(program, task, deleted),
                task=task.name,
                spans=_spans(stmt),
                edit_size=1,
            )
        )
        guarded = list(body)
        guarded[i] = If(condition=Condition.unknown(), then_body=(stmt,))
        out.append(
            RepairCandidate(
                kind="guard",
                description=(
                    f"guard `{_stmt_text(task.name, stmt)}` behind a "
                    f"conditional in task {task.name}"
                ),
                program=_replace_task(program, task, guarded),
                task=task.name,
                spans=_spans(stmt),
                edit_size=2,
            )
        )
    return out


def _transform_candidates(program: Program) -> List[RepairCandidate]:
    out: List[RepairCandidate] = []
    merged, merges = merge_branch_rendezvous(program)
    if merges:
        out.append(
            RepairCandidate(
                kind="branch_merge",
                description=(
                    f"merge {merges} both-branches rendezvous pair(s) "
                    "(Figure 5 b/c; semantics-preserving)"
                ),
                program=merged,
                spans=(),
                edit_size=2 * merges,
            )
        )
    factored, pairs = factor_codependent(program)
    if pairs:
        out.append(
            RepairCandidate(
                kind="codependent",
                description=(
                    f"hoist {len(pairs)} co-dependent conditional "
                    "rendezvous pair(s) (Figure 5 d; "
                    "semantics-preserving)"
                ),
                program=factored,
                spans=(),
                edit_size=2 * len(pairs),
            )
        )
    return out


def generate_candidates(
    result: "AnalysisResult", max_candidates: int = 64
) -> List[RepairCandidate]:
    """Enumerate repair candidates for one convicted analysis result.

    Candidates are generated in a deterministic order (reorderings
    first — the likeliest real fixes — then transforms, insertions,
    guards, deletions), de-duplicated by their canonical source text,
    and capped at ``max_candidates``.
    """
    program = result.program
    tasks, signals = _evidence_tasks_and_signals(result)
    by_name = {t.name: t for t in program.tasks}

    candidates: List[RepairCandidate] = []
    for name in tasks:
        task = by_name.get(name)
        if task is None:
            continue
        relevant = [
            i
            for i, stmt in enumerate(task.body)
            if _stmt_signal(task.name, stmt) in signals
        ]
        candidates.extend(_reorder_candidates(program, task, relevant))
    candidates.extend(_transform_candidates(program))
    candidates.extend(_insert_accept_candidates(program, signals))
    for name in tasks:
        task = by_name.get(name)
        if task is None:
            continue
        relevant = [
            i
            for i, stmt in enumerate(task.body)
            if _stmt_signal(task.name, stmt) in signals
        ]
        candidates.extend(
            _delete_and_guard_candidates(program, task, relevant)
        )

    original = pretty(program)
    seen = {original}
    unique: List[RepairCandidate] = []
    for cand in candidates:
        text = pretty(cand.program)
        if text in seen:
            continue
        seen.add(text)
        unique.append(cand)
        if len(unique) >= max_candidates:
            break
    return unique

"""Data model of the repair pipeline.

A :class:`RepairCandidate` is a *proposed* localized edit: a whole
repaired program plus the provenance of the edit (kind, task, source
spans touched, edit size).  The verifier re-analyzes every candidate
and promotes the survivors to :class:`CertifiedFix` — a candidate whose
repaired program the analysis pipeline certifies deadlock-free.  A
:class:`RepairReport` collects the ranked fixes for one convicted
program together with the generation/verification counters that make
the certification contract auditable (``candidates_rejected`` > 0 is
the proof that the verifier filters rather than rubber-stamps).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang.ast_nodes import Program
from ..lang.pretty import pretty
from ..lang.source import Span

__all__ = [
    "RepairCandidate",
    "CertifiedFix",
    "RepairReport",
    "changed_tasks",
    "unified_fix_diff",
]


@dataclass(frozen=True)
class RepairCandidate:
    """One proposed edit, carried as the fully repaired program.

    ``kind`` names the edit operator (``swap_adjacent``, ``move``,
    ``insert_accept``, ``delete``, ``guard``, ``branch_merge``,
    ``codependent``).  ``task`` is the edited task, or ``None`` for
    whole-program transforms.  ``spans`` are the source spans of the
    statements the edit touches in the *original* program (empty when
    the program was built programmatically and carries no locations).
    ``edit_size`` is the number of statements moved/added/removed —
    the ranking's primary locality measure.
    """

    kind: str
    description: str
    program: Program
    task: Optional[str] = None
    spans: Tuple[Span, ...] = ()
    edit_size: int = 1

    @property
    def source(self) -> str:
        """The repaired program as canonical ADL text."""
        return pretty(self.program)


@dataclass(frozen=True)
class CertifiedFix:
    """A candidate that re-analyzed deadlock-free.

    ``certified_by`` records which pass certified it: the polynomial
    detector (its algorithm name) or ``"exact-waves"`` when only the
    exhaustive search could discharge a residual false alarm.
    ``introduced_stall`` marks fixes that trade the deadlock for a
    stall the original did not have — still certified (the deadlock is
    gone) but ranked last.
    """

    candidate: RepairCandidate
    certified_by: str
    stall_verdict: str
    introduced_stall: bool = False

    @property
    def kind(self) -> str:
        return self.candidate.kind

    @property
    def description(self) -> str:
        return self.candidate.description

    @property
    def source(self) -> str:
        return self.candidate.source


@dataclass
class RepairReport:
    """Everything one :func:`repro.repair.suggest_repairs` call produced."""

    program_name: str
    original_verdict: str
    original_stall_verdict: str
    algorithm: str
    candidates_generated: int = 0
    candidates_rejected: int = 0
    fixes: List[CertifiedFix] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    wall_time_s: float = 0.0

    @property
    def fixed(self) -> bool:
        """True when at least one certified fix was found."""
        return bool(self.fixes)

    def describe(self) -> str:
        lines = [
            f"repair {self.program_name}: {self.original_verdict} -> "
            f"{len(self.fixes)} certified fix(es) "
            f"({self.candidates_generated} candidate(s), "
            f"{self.candidates_rejected} rejected)"
        ]
        for i, fix in enumerate(self.fixes, 1):
            stall = " [introduces a stall]" if fix.introduced_stall else ""
            lines.append(
                f"  fix {i} [{fix.kind}, certified by "
                f"{fix.certified_by}]: {fix.description}{stall}"
            )
        return "\n".join(lines)


def changed_tasks(original: Program, repaired: Program) -> List[str]:
    """Names of tasks whose bodies differ between the two programs."""
    before = {t.name: t.body for t in original.tasks}
    changed = [
        t.name
        for t in repaired.tasks
        if before.get(t.name) != t.body
    ]
    changed.extend(
        name for name in before if name not in repaired.task_names
    )
    return changed


def unified_fix_diff(
    original: Program, fix: CertifiedFix, path: str = "<source>"
) -> str:
    """Unified diff from the canonical original to the repaired program.

    Both sides are pretty-printed, so the diff shows exactly the edit
    (never formatting noise from the input file).
    """
    before = pretty(original).splitlines(keepends=True)
    after = fix.source.splitlines(keepends=True)
    return "".join(
        difflib.unified_diff(
            before,
            after,
            fromfile=path,
            tofile=f"{path} (fix: {fix.kind})",
        )
    )

"""Fix ranking: smallest, safest, most idiomatic edits first.

The ordering encodes three judgments:

1. Fixes that trade the deadlock for a *new* stall rank strictly last —
   they are still certified deadlock-free, but a user applying the top
   suggestion should never pick up a fresh anomaly.
2. Edit kinds rank by how faithfully they preserve intent: reorderings
   keep every rendezvous (the classic lock-ordering fix), the paper's
   Figure-5 transforms are semantics-preserving by construction,
   insertions add behaviour, and guards/deletions *remove* behaviour —
   last resorts.
3. Within a kind, smaller edits win (``edit_size``), with the
   human-readable description as the deterministic tiebreak.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .model import CertifiedFix

__all__ = ["KIND_PRIORITY", "rank_fixes"]

KIND_PRIORITY = {
    "swap_adjacent": 0,
    "move": 1,
    "branch_merge": 2,
    "codependent": 2,
    "insert_accept": 3,
    "guard": 4,
    "delete": 5,
}

# Unknown kinds (future operators) slot between insertions and guards.
_DEFAULT_PRIORITY = 4


def _sort_key(fix: CertifiedFix) -> Tuple[bool, int, int, str]:
    return (
        fix.introduced_stall,
        KIND_PRIORITY.get(fix.kind, _DEFAULT_PRIORITY),
        fix.candidate.edit_size,
        fix.description,
    )


def rank_fixes(fixes: Sequence[CertifiedFix]) -> List[CertifiedFix]:
    """Stable-sort certified fixes, best suggestion first."""
    return sorted(fixes, key=_sort_key)

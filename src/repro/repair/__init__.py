"""Counterexample-driven deadlock repair (``repro.repair``).

Given a program the static pipeline convicts, synthesize candidate
edits from the deadlock evidence (:mod:`.generator`), certify each one
by re-running the analysis pipeline — farm-batched polynomial
re-analysis with exact WaveIndex escalation (:mod:`.verifier`) — and
rank the certified fixes by locality and safety (:mod:`.ranking`).

One-call entry point::

    import repro
    from repro.repair import suggest_repairs

    report = suggest_repairs('''
        program crossed;
        task a is begin send b.x; accept y; end;
        task b is begin send a.y; accept x; end;
    ''')
    assert report.fixed
    print(report.fixes[0].description)

Certified fixes flow out three ways: SARIF ``fix`` objects on the lint
diagnostics (:func:`repro.lint.output.sarif_report`), unified diffs via
the CLI's ``--suggest-fixes``, and the JSON ``RepairReport``
serialisation (:func:`repro.reporting.repair_report_to_dict`).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from .. import obs
from ..api import analyze
from ..lang.ast_nodes import Program
from .generator import generate_candidates
from .model import (
    CertifiedFix,
    RepairCandidate,
    RepairReport,
    changed_tasks,
    unified_fix_diff,
)
from .ranking import rank_fixes
from .verifier import verify_candidates

if TYPE_CHECKING:  # pragma: no cover
    from ..api import AnalysisResult
    from ..farm.cache import ResultCache

__all__ = [
    "CertifiedFix",
    "RepairCandidate",
    "RepairReport",
    "changed_tasks",
    "generate_candidates",
    "rank_fixes",
    "suggest_repairs",
    "unified_fix_diff",
    "verify_candidates",
]


def suggest_repairs(
    program: Union[str, Program, None] = None,
    algorithm: str = "refined",
    backend: str = "index",
    state_limit: int = 200_000,
    exact_budget: int = 50_000,
    max_candidates: int = 64,
    max_fixes: int = 5,
    jobs: int = 1,
    timeout: Optional[float] = None,
    cache: Union["ResultCache", str, Path, bool, None] = None,
    result: Optional["AnalysisResult"] = None,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> RepairReport:
    """Synthesize and certify deadlock fixes for one convicted program.

    Pass either ``program`` (source text or AST; it is analyzed first
    with ``algorithm``) or a ready ``result`` from a previous
    :func:`repro.analyze` call.  Returns a :class:`RepairReport`; when
    the program is already certified deadlock-free the report is empty
    with ``original_verdict`` recording the clean verdict.

    ``max_candidates`` bounds generation, ``max_fixes`` bounds how many
    ranked certified fixes the report keeps, ``exact_budget`` is the
    WaveIndex state budget for the exact escalation pass (0 disables
    it).  ``jobs``/``timeout``/``cache`` configure the verification
    farm batch exactly as in :func:`repro.analyze_many`.
    ``strategy``/``beam_width`` steer the exact escalation's expansion
    order (see :mod:`repro.waves.guide`): a guided escalation can
    rescue — or reject with a concrete deadlock wave — candidates the
    same budget leaves inconclusive under BFS.
    """
    if result is None:
        if program is None:
            raise TypeError("suggest_repairs needs a program or a result")
        result = analyze(
            program,
            algorithm=algorithm,
            state_limit=state_limit,
            backend=backend,
        )

    started = time.perf_counter()
    with obs.span("repair.suggest", algorithm=algorithm):
        report = RepairReport(
            program_name=result.program.name,
            original_verdict=result.deadlock.verdict,
            original_stall_verdict=result.stall.verdict,
            algorithm=algorithm,
        )
        if result.deadlock.deadlock_free:
            report.wall_time_s = time.perf_counter() - started
            return report

        candidates = generate_candidates(
            result, max_candidates=max_candidates
        )
        report.candidates_generated = len(candidates)
        fixes, stats = verify_candidates(
            result,
            candidates,
            algorithm=algorithm,
            backend=backend,
            state_limit=state_limit,
            exact_budget=exact_budget,
            jobs=jobs,
            timeout=timeout,
            cache=cache,
            strategy=strategy,
            beam_width=beam_width,
        )
        report.candidates_rejected = (
            stats["rejected_failed"]
            + stats["rejected_still_convicted"]
            + stats["rejected_confirmed_deadlock"]
        )
        report.stats = stats
        report.fixes = rank_fixes(fixes)[:max_fixes]
        report.wall_time_s = time.perf_counter() - started
        if obs.is_enabled():
            obs.counter("repair.runs").inc()
    return report

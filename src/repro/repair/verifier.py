"""Candidate verification: re-analyze every candidate, keep the free ones.

Verification is the certification step of the repair pipeline and it
reuses the production analysis stack wholesale:

1. Every candidate is pretty-printed and dispatched as one farm batch
   (:func:`repro.farm.runner.run_batch`) — content-addressed caching
   means re-running repair on an unchanged program re-verifies nothing,
   and the crash-quarantined pool keeps one pathological candidate from
   killing the sweep.
2. A candidate whose batch item comes back ``certified-deadlock-free``
   under the requested polynomial detector is certified by that
   detector.
3. A candidate the detector still convicts gets one escalation: exact
   wave exploration (``repro.analyze(..., exact=True)``, WaveIndex
   backend) under ``exact_budget`` states, optionally guided
   (``strategy="astar"``/``"beam"`` — see :mod:`repro.waves.guide`).
   The polynomial analyses are conservative, so this rescues
   candidates that are actually free but trip a residual false alarm.
   The escalation grades three ways: an exhaustive run with no
   deadlock wave *rescues* the candidate (``certified_exact``); a run
   that found a concrete deadlock wave — guided search reaches these
   under budgets where BFS drowns — rejects it with proof
   (``rejected_confirmed_deadlock``); a budget-limited witnessless run
   proves nothing and the candidate stays rejected
   (``rejected_still_convicted``).

Every rejection bumps the ``repair.candidates_rejected`` observability
counter — a nonzero count is the audit trail showing the verifier
filters rather than rubber-stamps.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..api import analyze
from ..farm.runner import run_batch
from .model import CertifiedFix, RepairCandidate

if TYPE_CHECKING:  # pragma: no cover
    from ..api import AnalysisResult
    from ..farm.cache import ResultCache

__all__ = ["verify_candidates"]

_EMPTY_STATS = {
    "certified_static": 0,
    "certified_exact": 0,
    "rejected_failed": 0,
    "rejected_still_convicted": 0,
    "rejected_confirmed_deadlock": 0,
}


# Escalation dispositions (internal; surfaced through the stats dict).
_RESCUED = "rescued"
_CONFIRMED = "confirmed"
_INCONCLUSIVE = "inconclusive"


def _exact_escalation(
    candidate: RepairCandidate,
    exact_budget: int,
    backend: str,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> Tuple[Optional["AnalysisResult"], str]:
    """Exact-search a still-convicted candidate: ``(result, outcome)``.

    ``analyze`` folds budget exhaustion into a conservative
    possible-deadlock verdict, so the grading reads the stats: a clean
    unlimited run rescues (result returned), a run whose search
    *found* a deadlock wave confirms the conviction (no rescue, and no
    point retrying with a bigger budget), and a limited witnessless
    run stays inconclusive.  A guided ``strategy`` changes only which
    of those a given budget lands on — typically turning inconclusive
    into rescued or confirmed.
    """
    if exact_budget <= 0:
        return None, _INCONCLUSIVE
    try:
        result = analyze(
            candidate.program,
            exact=True,
            state_limit=exact_budget,
            backend=backend,
            strategy=strategy,
            beam_width=beam_width,
        )
    except Exception:
        return None, _INCONCLUSIVE
    if result.deadlock.deadlock_free:
        return result, _RESCUED
    if result.deadlock.stats.get("deadlock_waves", 0) > 0:
        # A reachable deadlock wave is in hand — definite even when
        # the run was budget-limited (budget-faithful partial result).
        return None, _CONFIRMED
    return None, _INCONCLUSIVE


def verify_candidates(
    original: "AnalysisResult",
    candidates: Sequence[RepairCandidate],
    algorithm: str = "refined",
    backend: str = "index",
    state_limit: int = 200_000,
    exact_budget: int = 50_000,
    jobs: int = 1,
    timeout: Optional[float] = None,
    cache: Union["ResultCache", str, Path, bool, None] = None,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> Tuple[List[CertifiedFix], Dict[str, int]]:
    """Certify or reject every candidate; returns (fixes, stats).

    ``stats`` breaks the rejections down: ``rejected_failed`` (candidate
    did not survive the pipeline at all — parse/validation/crash),
    ``rejected_confirmed_deadlock`` (the exact escalation *found* a
    deadlock wave in the candidate — rejection with proof),
    ``rejected_still_convicted`` (analyzed fine but the conviction
    stands unsettled), plus ``certified_static`` / ``certified_exact``
    for the survivors.  ``strategy``/``beam_width`` steer the exact
    escalation's expansion order only — the static batch is
    strategy-independent, so its cache entries stay shared.
    """
    if not candidates:
        return [], dict(_EMPTY_STATS)

    batch = run_batch(
        [
            (f"candidate-{i}-{cand.kind}", cand.source)
            for i, cand in enumerate(candidates)
        ],
        algorithm=algorithm,
        state_limit=state_limit,
        jobs=jobs,
        timeout=timeout,
        cache=cache,
        backend=backend,
    )

    original_stall_free = original.stall.stall_free
    fixes: List[CertifiedFix] = []
    stats = dict(_EMPTY_STATS)
    for cand, item in zip(candidates, batch.items):
        if not item.ok or item.result is None:
            stats["rejected_failed"] += 1
            continue
        result = item.result
        certified_by: Optional[str] = None
        if result.deadlock.deadlock_free:
            certified_by = algorithm
            stats["certified_static"] += 1
        else:
            rescued, disposition = _exact_escalation(
                cand, exact_budget, backend,
                strategy=strategy, beam_width=beam_width,
            )
            if rescued is not None:
                result = rescued
                certified_by = "exact-waves"
                stats["certified_exact"] += 1
        if certified_by is None:
            if disposition == _CONFIRMED:
                stats["rejected_confirmed_deadlock"] += 1
            else:
                stats["rejected_still_convicted"] += 1
            continue
        fixes.append(
            CertifiedFix(
                candidate=cand,
                certified_by=certified_by,
                stall_verdict=result.stall.verdict,
                introduced_stall=(
                    original_stall_free and not result.stall.stall_free
                ),
            )
        )

    rejected = (
        stats["rejected_failed"]
        + stats["rejected_still_convicted"]
        + stats["rejected_confirmed_deadlock"]
    )
    if rejected:
        obs.counter("repair.candidates_rejected").inc(rejected)
    if fixes:
        obs.counter("repair.fixes_certified").inc(len(fixes))
    return fixes, stats

"""Candidate verification: re-analyze every candidate, keep the free ones.

Verification is the certification step of the repair pipeline and it
reuses the production analysis stack wholesale:

1. Every candidate is pretty-printed and dispatched as one farm batch
   (:func:`repro.farm.runner.run_batch`) — content-addressed caching
   means re-running repair on an unchanged program re-verifies nothing,
   and the crash-quarantined pool keeps one pathological candidate from
   killing the sweep.
2. A candidate whose batch item comes back ``certified-deadlock-free``
   under the requested polynomial detector is certified by that
   detector.
3. A candidate the detector still convicts gets one escalation: exact
   wave exploration (``repro.analyze(..., exact=True)``, WaveIndex
   backend) under ``exact_budget`` states.  The polynomial analyses
   are conservative, so this rescues candidates that are actually free
   but trip a residual false alarm.  A budget-limited exact run proves
   nothing and the candidate stays rejected.

Every rejection bumps the ``repair.candidates_rejected`` observability
counter — a nonzero count is the audit trail showing the verifier
filters rather than rubber-stamps.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..api import analyze
from ..farm.runner import run_batch
from .model import CertifiedFix, RepairCandidate

if TYPE_CHECKING:  # pragma: no cover
    from ..api import AnalysisResult
    from ..farm.cache import ResultCache

__all__ = ["verify_candidates"]


def _exact_escalation(
    candidate: RepairCandidate,
    exact_budget: int,
    backend: str,
) -> Optional["AnalysisResult"]:
    """Exact-search a still-convicted candidate; None unless certified.

    Only an *unlimited* exact run that found no deadlock wave counts —
    ``analyze`` already folds budget exhaustion into a conservative
    possible-deadlock verdict, so checking ``deadlock_free`` suffices.
    """
    if exact_budget <= 0:
        return None
    try:
        result = analyze(
            candidate.program,
            exact=True,
            state_limit=exact_budget,
            backend=backend,
        )
    except Exception:
        return None
    return result if result.deadlock.deadlock_free else None


def verify_candidates(
    original: "AnalysisResult",
    candidates: Sequence[RepairCandidate],
    algorithm: str = "refined",
    backend: str = "index",
    state_limit: int = 200_000,
    exact_budget: int = 50_000,
    jobs: int = 1,
    timeout: Optional[float] = None,
    cache: Union["ResultCache", str, Path, bool, None] = None,
) -> Tuple[List[CertifiedFix], Dict[str, int]]:
    """Certify or reject every candidate; returns (fixes, stats).

    ``stats`` breaks the rejections down: ``rejected_failed`` (candidate
    did not survive the pipeline at all — parse/validation/crash),
    ``rejected_still_convicted`` (analyzed fine but the deadlock
    remains), plus ``certified_static`` / ``certified_exact`` for the
    survivors.
    """
    if not candidates:
        return [], {
            "certified_static": 0,
            "certified_exact": 0,
            "rejected_failed": 0,
            "rejected_still_convicted": 0,
        }

    batch = run_batch(
        [
            (f"candidate-{i}-{cand.kind}", cand.source)
            for i, cand in enumerate(candidates)
        ],
        algorithm=algorithm,
        state_limit=state_limit,
        jobs=jobs,
        timeout=timeout,
        cache=cache,
        backend=backend,
    )

    original_stall_free = original.stall.stall_free
    fixes: List[CertifiedFix] = []
    stats = {
        "certified_static": 0,
        "certified_exact": 0,
        "rejected_failed": 0,
        "rejected_still_convicted": 0,
    }
    for cand, item in zip(candidates, batch.items):
        if not item.ok or item.result is None:
            stats["rejected_failed"] += 1
            continue
        result = item.result
        certified_by: Optional[str] = None
        if result.deadlock.deadlock_free:
            certified_by = algorithm
            stats["certified_static"] += 1
        else:
            rescued = _exact_escalation(cand, exact_budget, backend)
            if rescued is not None:
                result = rescued
                certified_by = "exact-waves"
                stats["certified_exact"] += 1
        if certified_by is None:
            stats["rejected_still_convicted"] += 1
            continue
        fixes.append(
            CertifiedFix(
                candidate=cand,
                certified_by=certified_by,
                stall_verdict=result.stall.verdict,
                introduced_stall=(
                    original_stall_free and not result.stall.stall_free
                ),
            )
        )

    rejected = (
        stats["rejected_failed"] + stats["rejected_still_convicted"]
    )
    if rejected:
        obs.counter("repair.candidates_rejected").inc(rejected)
    if fixes:
        obs.counter("repair.fixes_certified").inc(len(fixes))
    return fixes, stats

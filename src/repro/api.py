"""High-level public API: one-call certification pipelines.

Typical use::

    import repro

    result = repro.analyze('''
        program handshake;
        task t1 is begin send t2.hello; accept world; end;
        task t2 is begin accept hello; send t1.world; end;
    ''')
    assert result.deadlock.deadlock_free
    assert result.stall.stall_free

``analyze`` accepts source text or a parsed
:class:`~repro.lang.ast_nodes.Program`, validates it, removes loops
with the Lemma-1 transform when needed, builds the sync graph, and runs
the requested deadlock algorithm plus the stall pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Tuple, Union

from . import obs
from .analysis.constraint4 import constraint4_deadlock_analysis
from .analysis.extensions import (
    combined_pairs_analysis,
    head_pairs_analysis,
    head_tail_analysis,
    k_pairs_3_analysis,
)
from .analysis.naive import naive_deadlock_analysis
from .analysis.refined import refined_deadlock_analysis
from .analysis.results import DeadlockReport, StallReport, Verdict
from .analysis.stalls import stall_analysis
from .errors import AnalysisError
from .lang.ast_nodes import Program
from .lang.parser import parse_program
from .lang.validate import ValidationReport, validate_program
from .syncgraph.build import build_sync_graph
from .syncgraph.model import SyncGraph
from .transforms.inline import inline_procedures
from .transforms.unroll import has_approximated_loops, remove_loops
from .waves.explore import explore
from .waves.guide import DEFAULT_BEAM_WIDTH, validate_strategy

if TYPE_CHECKING:  # pragma: no cover - farm imports api at runtime
    from .farm.cache import ResultCache
    from .farm.runner import BatchReport

__all__ = [
    "ALGORITHMS",
    "BACKEND_AWARE",
    "INDEX_AWARE",
    "AnalysisResult",
    "PreparedProgram",
    "analyze",
    "analyze_many",
    "analyze_prepared",
    "certify_deadlock_free",
    "certify_stall_free",
    "prepare",
]

# Every value is a named module-level callable so the registry (and
# anything that captures an entry) stays picklable for farm workers.
ALGORITHMS: Dict[str, Callable[[SyncGraph], DeadlockReport]] = {
    "naive": naive_deadlock_analysis,
    "refined": refined_deadlock_analysis,
    "refined+constraint4": constraint4_deadlock_analysis,
    "head-pairs": head_pairs_analysis,
    "head-tail": head_tail_analysis,
    "combined-pairs": combined_pairs_analysis,
    "k-pairs-3": k_pairs_3_analysis,
}

# Algorithms whose runner accepts the backend= kernel selector (the
# bitset "index" backend vs the set-based "reference" oracle; see
# docs/PERFORMANCE.md).  "naive" and "exact" have a single
# implementation each.
BACKEND_AWARE = frozenset(ALGORITHMS) - {"naive"}

# Algorithms whose runner additionally accepts a prebuilt
# AnalysisIndex via index= ("k-pairs-3" builds its own per k).  Long-
# lived callers (repro.server) share one index per program across
# repeated analyses instead of rebuilding the bitset mirrors each run.
INDEX_AWARE = BACKEND_AWARE - {"k-pairs-3"}


@dataclass
class AnalysisResult:
    """Everything one ``analyze`` call produced."""

    program: Program
    analyzed_program: Program  # after loop removal/inlining, if it differed
    validation: ValidationReport
    sync_graph: SyncGraph
    deadlock: DeadlockReport
    stall: StallReport
    # Whether the Lemma-1 unroll actually fired.  Not derivable from
    # `analyzed_program is not program`: procedure inlining alone also
    # swaps the program object.
    loops_transformed: bool = False
    # Where the source came from: a file path, or a synthetic URI for
    # in-memory buffers (e.g. "untitled:scratch-1" from an editor via
    # repro.server).  Provenance only — never part of the JSON report
    # payload, so CLI and server output stay byte-identical.
    uri: Optional[str] = None

    def describe(self) -> str:
        lines = [f"program {self.program.name}:"]
        lines.append(self.deadlock.describe())
        lines.append(self.stall.describe())
        for diag in self.validation.diagnostics:
            where = f" (line {diag.line})" if diag.span is not None else ""
            lines.append(
                f"  {diag.severity}: {diag.message}{where} [{diag.rule_id}]"
            )
        return "\n".join(lines)


def _coerce(program: Union[str, Program]) -> Program:
    if isinstance(program, str):
        return parse_program(program)
    return program


@dataclass
class PreparedProgram:
    """Everything ``analyze`` computes *before* picking a detector.

    The front half of the pipeline — parse, inline, validate, Lemma-1
    unroll, sync-graph build — depends only on the program, not on the
    algorithm/backend/budget of a particular request.  Long-lived
    callers (:mod:`repro.server`) prepare once per document and run
    :func:`analyze_prepared` per request, so repeated analyses of the
    same source never re-pay the front half.
    """

    source_program: Program
    inlined: Program
    validation: ValidationReport
    analyzed: Program  # after the Lemma-1 unroll, if it fired
    transformed: bool
    procedures_inlined: bool
    sync_graph: SyncGraph
    # True when the unroll only approximated loop behaviour (guarded
    # copies bound iterations at two) — exact search must then walk the
    # pre-unroll graph.
    approximated: bool
    _exact_graph: Optional[SyncGraph] = None

    @property
    def exact_graph(self) -> SyncGraph:
        """The graph exact wave exploration must search.

        The Lemma-1 guarded copies bound while-loop iterations at two,
        which preserves the static CLG analysis but not exact wave
        semantics (a deadlock needing a third iteration exists only in
        the original graph), so when the unroll was approximate this is
        the pre-unroll graph — built lazily and cached.
        """
        if not self.approximated:
            return self.sync_graph
        if self._exact_graph is None:
            self._exact_graph = build_sync_graph(self.inlined)
        return self._exact_graph


def prepare(program: Union[str, Program]) -> PreparedProgram:
    """Run the algorithm-independent front half of the pipeline."""
    with obs.span("analyze.parse"):
        source_program = _coerce(program)
    with obs.span("analyze.inline"):
        inlined, procedures_inlined = inline_procedures(source_program)
    with obs.span("analyze.validate"):
        validation = validate_program(inlined)
    with obs.span("analyze.unroll") as unroll_span:
        analyzed, transformed = remove_loops(inlined)
        unroll_span.set_attribute("transformed", transformed)
    with obs.span("analyze.sync_graph") as sg_span:
        graph = build_sync_graph(analyzed)
        sg_span.set_attribute("nodes", len(graph.rendezvous_nodes))
    return PreparedProgram(
        source_program=source_program,
        inlined=inlined,
        validation=validation,
        analyzed=analyzed,
        transformed=transformed,
        procedures_inlined=procedures_inlined,
        sync_graph=graph,
        approximated=transformed and has_approximated_loops(inlined),
    )


def _finish(
    prep: PreparedProgram,
    algorithm: str,
    exact: bool,
    state_limit: int,
    backend: str,
    index=None,
    engine=None,
    uri: Optional[str] = None,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> AnalysisResult:
    """Back half of the pipeline: detector + stall analysis + assembly."""
    graph = prep.sync_graph
    with obs.span("analyze.deadlock", algorithm=algorithm):
        if exact or algorithm == "exact":
            result = explore(
                prep.exact_graph,
                state_limit=state_limit,
                backend=backend,
                engine=engine,
                on_limit="partial",
                strategy=strategy,
                beam_width=beam_width,
            )
            # A limited run that found no deadlock proves nothing:
            # stay conservative instead of certifying blind.  Beam
            # truncation is folded into `limited` by explore(), so a
            # truncated witnessless beam also stays POSSIBLE.
            deadlock = DeadlockReport(
                verdict=(
                    Verdict.POSSIBLE_DEADLOCK
                    if result.has_deadlock or result.limited
                    else Verdict.CERTIFIED_FREE
                ),
                algorithm="exact-waves",
                stats={
                    "feasible_waves": result.visited_count,
                    "exploration_limited": result.limited,
                    "explored_pre_unroll_graph": prep.approximated,
                    "strategy": result.strategy,
                    # Budget-faithful partial finding: a deadlock wave
                    # discovered before exhaustion is definite even
                    # when the run was limited.
                    "deadlock_waves": len(result.deadlock_waves),
                },
            )
            if strategy == "beam":
                deadlock.stats["beam_width"] = (
                    beam_width
                    if beam_width is not None
                    else DEFAULT_BEAM_WIDTH
                )
                deadlock.stats["beam_truncated"] = result.truncated
        else:
            # Strategy only steers exact search; still validate it so a
            # typo'd knob fails loudly instead of silently meaning bfs.
            validate_strategy(strategy, beam_width)
            try:
                runner = ALGORITHMS[algorithm]
            except KeyError:
                raise AnalysisError(
                    f"unknown algorithm {algorithm!r}; choose one of "
                    f"{sorted(ALGORITHMS)} or 'exact'"
                ) from None
            if algorithm in INDEX_AWARE and index is not None:
                deadlock = runner(graph, backend=backend, index=index)
            elif algorithm in BACKEND_AWARE:
                deadlock = runner(graph, backend=backend)
            else:
                deadlock = runner(graph)
    deadlock.loops_transformed = prep.transformed
    if prep.approximated and not (exact or algorithm == "exact"):
        # Static verdicts on a guarded-copy unroll are conservative
        # but exact *refutation* on that graph would not be: flag it
        # so confirmation (repro.analysis.confirm) knows the graph
        # under-approximates loop behaviours.
        deadlock.stats["unroll_approximated"] = True
    if prep.procedures_inlined:
        deadlock.stats["procedures_inlined"] = len(
            prep.source_program.procedures
        )

    with obs.span("analyze.stall"):
        stall = stall_analysis(prep.inlined)
    if obs.is_enabled():
        obs.counter("analyze.runs").inc()
        obs.gauge("syncgraph.rendezvous_nodes").set(
            len(graph.rendezvous_nodes)
        )
        obs.gauge("syncgraph.tasks").set(len(graph.tasks))
    return AnalysisResult(
        program=prep.source_program,
        analyzed_program=prep.analyzed
        if (prep.transformed or prep.procedures_inlined)
        else prep.source_program,
        validation=prep.validation,
        sync_graph=graph,
        deadlock=deadlock,
        stall=stall,
        loops_transformed=prep.transformed,
        uri=uri,
    )


def analyze_prepared(
    prep: PreparedProgram,
    algorithm: str = "refined",
    exact: bool = False,
    state_limit: int = 200_000,
    backend: str = "index",
    index=None,
    engine=None,
    uri: Optional[str] = None,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> AnalysisResult:
    """Run the detector half of :func:`analyze` on a prepared program.

    Verdicts, evidence, stats, and the serialized report are identical
    to a fresh :func:`analyze` of the same source — the split only
    skips re-computing the front half.  ``index`` optionally shares a
    prebuilt :class:`~repro.analysis.index.AnalysisIndex` with the
    :data:`INDEX_AWARE` algorithms; ``engine`` shares a prebuilt
    :class:`~repro.waves.engine.WaveIndex` with exact exploration (it
    must have been built over ``prep.exact_graph``).  ``strategy`` /
    ``beam_width`` steer exact exploration exactly as in
    :func:`analyze`.
    """
    with obs.span("analyze", algorithm=algorithm):
        return _finish(
            prep,
            algorithm=algorithm,
            exact=exact,
            state_limit=state_limit,
            backend=backend,
            index=index,
            engine=engine,
            uri=uri,
            strategy=strategy,
            beam_width=beam_width,
        )


def analyze(
    program: Union[str, Program],
    algorithm: str = "refined",
    exact: bool = False,
    state_limit: int = 200_000,
    backend: str = "index",
    uri: Optional[str] = None,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> AnalysisResult:
    """Run the full static pipeline on ``program``.

    ``algorithm`` selects the deadlock detector (see :data:`ALGORITHMS`;
    ``"exact"`` or ``exact=True`` uses exhaustive wave exploration —
    exponential, for small programs only).  Loops are removed by the
    Lemma-1 double-unroll transform automatically; the report records
    whether that happened.

    ``backend`` selects the analysis kernel for the refined algorithm
    family (:data:`BACKEND_AWARE`) **and** for exact exploration:
    ``"index"`` (default) runs the integer bitset / packed-wave
    kernels, ``"reference"`` the original set-based oracles.  Verdicts,
    evidence and stats are identical; it is ignored for ``"naive"``.

    The exact path is budget-faithful: exhausting ``state_limit`` no
    longer raises — the report conservatively stays
    ``possible-deadlock`` with ``stats["exploration_limited"]`` set,
    and any deadlock wave found before exhaustion still counts.

    ``strategy`` selects the exact-search expansion order: ``"bfs"``
    (default), ``"astar"`` guided by the admissible future-cost table
    of :mod:`repro.waves.guide`, or ``"beam"`` with ``beam_width``.
    Strategy never changes an exhaustive verdict — it only changes
    which states are in hand when ``state_limit`` trips, so a guided
    run can settle programs whose budget-limited BFS verdict was
    inconclusive.  ``stats["strategy"]`` records the order used.

    ``uri`` records where the source came from (file path or a
    synthetic editor-buffer URI) on the result; it never changes the
    analysis or the serialized report.
    """
    with obs.span("analyze", algorithm=algorithm):
        prep = prepare(program)
        return _finish(
            prep,
            algorithm=algorithm,
            exact=exact,
            state_limit=state_limit,
            backend=backend,
            uri=uri,
            strategy=strategy,
            beam_width=beam_width,
        )


def analyze_many(
    programs: Iterable[Union[str, Program, Tuple[str, str]]],
    algorithm: str = "refined",
    exact: bool = False,
    state_limit: int = 200_000,
    jobs: int = 1,
    timeout: Optional[float] = None,
    cache: Union["ResultCache", str, Path, bool, None] = None,
    backend: str = "index",
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> "BatchReport":
    """Analyze many programs through the batch farm.

    The library-level entry to :mod:`repro.farm`: parallel workers
    (``jobs``), per-item timeouts (pool mode only), and content-
    addressed result caching — ``cache`` accepts a
    :class:`~repro.farm.cache.ResultCache`, a directory, ``True`` for
    the default directory (``~/.cache/repro``), or ``None`` to disable.

    ``programs`` may mix source strings, parsed
    :class:`~repro.lang.ast_nodes.Program` objects, and ``(label,
    source)`` pairs.  Returns a
    :class:`~repro.farm.runner.BatchReport`; ``report.results`` is the
    per-program :class:`AnalysisResult` list in input order (``None``
    where an item failed), and verdicts match per-program
    :func:`analyze` calls exactly.
    """
    from .farm.runner import run_batch

    return run_batch(
        programs,
        algorithm=algorithm,
        exact=exact,
        state_limit=state_limit,
        jobs=jobs,
        timeout=timeout,
        cache=cache,
        backend=backend,
        strategy=strategy,
        beam_width=beam_width,
    )


def certify_deadlock_free(
    program: Union[str, Program],
    algorithm: str = "refined",
    backend: str = "index",
) -> bool:
    """True iff the chosen algorithm certifies the program deadlock-free.

    False means *possible* deadlock (the analyses are conservative:
    real deadlocks are never missed, but false alarms can occur).
    """
    return analyze(
        program, algorithm=algorithm, backend=backend
    ).deadlock.deadlock_free


def certify_stall_free(program: Union[str, Program]) -> bool:
    """True iff the stall pipeline (Lemma 3 + §5.1 transforms) certifies
    the program stall-free; False covers both possible-stall and
    unknown."""
    return analyze(program).stall.stall_free

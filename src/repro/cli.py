"""Command-line interface: ``repro-analyze`` (or ``python -m repro.cli``).

Examples::

    repro-analyze program.adl
    repro-analyze program.adl --algorithm naive
    repro-analyze program.adl --algorithm exact --json
    repro-analyze program.adl --dot sync.dot --clg-dot clg.dot
    repro-analyze program.adl --simulate 100
    repro-analyze program.adl --trace
    repro-analyze program.adl --json --metrics-out metrics.json
    repro-analyze program.adl --metrics-out metrics.prom
    repro-analyze program.adl --lint
    repro-analyze program.adl --lint --fail-on warning
    repro-analyze program.adl --lint --json
    repro-analyze program.adl --lint --sarif lint.sarif
    repro-analyze program.adl --lint --disable ADL009,coupling-cycle
    repro-analyze program.adl --suggest-fixes
    repro-analyze program.adl --suggest-fixes --json
    repro-analyze program.adl --suggest-fixes --sarif fixes.sarif
    repro-analyze --batch corpus/ --jobs 8
    repro-analyze --batch corpus/ 'extra/*.adl' --jsonl-out report.jsonl
    repro-analyze --batch corpus/ --no-cache --timeout 30
    repro-analyze serve
    repro-analyze serve --http 127.0.0.1:8171

Under ``--json`` (and ``--jsonl-out``) stdout carries *only* the JSON
payload — one parseable document (or one per line) and nothing else.
Human-readable chatter — trace renders, progress, warnings — always
goes to stderr in JSON mode, so ``repro-analyze f.adl --json | jq .``
can never choke on interleaved text.  :func:`_chatter` is the single
routing point enforcing this.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from . import obs
from .analysis.confirm import confirm_analysis
from .api import ALGORITHMS, analyze
from .errors import ReproError
from .interp.runtime import sample_runs
from .reporting import render_json
from .syncgraph.clg import build_clg
from .syncgraph.dot import clg_to_dot, sync_graph_to_dot
from .waves.guide import validate_strategy

__all__ = ["main", "build_arg_parser"]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Static infinite-wait anomaly detection for Ada-like "
            "rendezvous programs (Masticola & Ryder, ICPP 1990)."
        ),
    )
    parser.add_argument(
        "sources",
        nargs="+",
        metavar="source",
        help=(
            "path to an ADL source file, or '-' for stdin; with "
            "--batch, any mix of files, directories (searched "
            "recursively for *.adl), and glob patterns"
        ),
    )
    parser.add_argument(
        "--algorithm",
        default="refined",
        choices=sorted(ALGORITHMS) + ["exact"],
        help="deadlock detection algorithm (default: refined)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a machine-readable report"
    )
    parser.add_argument(
        "--dot", metavar="FILE", help="write the sync graph as Graphviz DOT"
    )
    parser.add_argument(
        "--clg-dot", metavar="FILE", help="write the CLG as Graphviz DOT"
    )
    parser.add_argument(
        "--simulate",
        type=int,
        metavar="RUNS",
        help="additionally run RUNS seeded concrete executions",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print sync graph / CLG size metrics and cost bounds",
    )
    parser.add_argument(
        "--confirm",
        action="store_true",
        help=(
            "escalate possible-deadlock reports to a bounded exact "
            "search: confirm with a concrete schedule or refute"
        ),
    )
    parser.add_argument(
        "--suggest-fixes",
        action="store_true",
        help=(
            "on a possible-deadlock verdict, synthesize candidate "
            "edits from the cycle evidence, certify each by "
            "re-analysis (with bounded exact escalation), and print "
            "the ranked fixes as unified diffs; with --json the "
            "report gains a 'repair' key, with --sarif the certified "
            "fixes are attached to the deadlock diagnostics as SARIF "
            "fix objects"
        ),
    )
    parser.add_argument(
        "--max-fixes",
        type=int,
        default=5,
        metavar="N",
        help=(
            "with --suggest-fixes, keep at most N ranked certified "
            "fixes (default: 5)"
        ),
    )
    parser.add_argument(
        "--state-limit",
        type=int,
        default=200_000,
        help=(
            "state budget for bounded exact searches — both "
            "--algorithm exact and --confirm (default: 200000)"
        ),
    )
    parser.add_argument(
        "--backend",
        default="index",
        choices=["index", "reference"],
        help=(
            "analysis kernel: the indexed bitset/packed-wave engines "
            "(default) or the set-based reference oracles; verdicts "
            "are bit-exact either way"
        ),
    )
    parser.add_argument(
        "--strategy",
        default="bfs",
        choices=["bfs", "astar", "beam"],
        help=(
            "expansion order for bounded exact searches (--algorithm "
            "exact, --confirm, --suggest-fixes escalation): bfs "
            "(default), astar guided by the admissible future-cost "
            "table, or beam (see --beam-width); guided strategies "
            "never change exhaustive verdicts, only how far a state "
            "budget reaches (needs --backend index)"
        ),
    )
    parser.add_argument(
        "--beam-width",
        type=int,
        metavar="N",
        help=(
            "with --strategy beam, states kept per depth layer "
            "(default: 1024); a truncated beam counts as a limited "
            "search"
        ),
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help=(
            "run the lint rules instead of the analysis pipeline: "
            "source-located diagnostics, no verdict; with --batch, "
            "lint every item alongside the analysis and report "
            "per-rule diagnostic counts"
        ),
    )
    parser.add_argument(
        "--fail-on",
        default="error",
        choices=["error", "warning", "note"],
        help=(
            "lint severity threshold for a non-zero exit code "
            "(default: error)"
        ),
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help=(
            "write a SARIF 2.1.0 report to FILE (lint diagnostics; "
            "with --suggest-fixes, certified fixes are attached to "
            "the deadlock diagnostics)"
        ),
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        default="",
        help=(
            "with --lint, comma-separated rule ids or names to skip "
            "(e.g. ADL009,coupling-cycle)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default="",
        help="with --lint, run only these comma-separated rules",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help=(
            "batch mode: analyze every matched source through the "
            "parallel farm with content-addressed result caching"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=os.cpu_count() or 1,
        metavar="N",
        help=(
            "with --batch, worker processes to run (default: CPU "
            "count; 1 = serial in-process fallback)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "with --batch, result cache directory (default: "
            "$REPRO_CACHE_DIR or ~/.cache/repro)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="with --batch, disable the result cache entirely",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help=(
            "with --batch, per-item wall-clock budget; overruns are "
            "reported as timeout without aborting the run (needs "
            "--jobs > 1)"
        ),
    )
    parser.add_argument(
        "--jsonl-out",
        metavar="FILE",
        help=(
            "with --batch, stream the report to FILE as JSON lines: "
            "one record per item plus a final summary record"
        ),
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "enable observability and print the timed span tree of the "
            "run (to stderr when combined with --json)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help=(
            "enable observability and write the metrics snapshot to "
            "FILE: Prometheus text format if FILE ends in .prom, "
            "JSON otherwise"
        ),
    )
    return parser


def _report_json(
    result, simulation, confirmation=None, stats=False, metrics=None,
    repair=None,
) -> str:
    from .reporting import analysis_result_to_dict

    payload = analysis_result_to_dict(
        result, simulation, confirmation, metrics, repair
    )
    if stats:
        from .syncgraph.metrics import compute_metrics

        # Graph size metrics share the "metrics" key with the obs
        # snapshot; key sets are disjoint, so merge rather than replace.
        payload.setdefault("metrics", {}).update(
            compute_metrics(result.sync_graph).to_dict()
        )
    return render_json(payload)


def _check_strategy(args) -> Optional[str]:
    """Strategy/beam-width/backend combo error, or None when valid.

    Checked once up front so every mode (one-shot, --confirm, batch)
    rejects a bad combination with exit code 2 before any work runs.
    """
    try:
        validate_strategy(args.strategy, args.beam_width, args.backend)
    except ValueError as exc:
        return str(exc)
    return None


def _chatter(args, *values, **kwargs) -> None:
    """Print human-readable chatter without dirtying JSON stdout.

    The single routing point for anything that is not the machine
    payload: in ``--json`` mode it goes to stderr (stdout carries
    exactly one parseable document), otherwise to stdout.  New
    informational output must go through here, never bare ``print``.
    """
    stream = sys.stderr if getattr(args, "json", False) else sys.stdout
    print(*values, file=stream, **kwargs)


def _split_rules(spec: str) -> List[str]:
    return [token.strip() for token in spec.split(",") if token.strip()]


def _suggest_fixes(args, source: str, result=None):
    """Run the repair pipeline; ``None`` when the program never reaches
    a verdict (the caller's lint diagnostics already explain why)."""
    from .repair import suggest_repairs

    try:
        return suggest_repairs(
            source if result is None else None,
            algorithm=(
                args.algorithm if args.algorithm != "exact" else "refined"
            ),
            backend=args.backend,
            state_limit=args.state_limit,
            max_fixes=args.max_fixes,
            result=result,
            strategy=args.strategy,
            beam_width=args.beam_width,
        )
    except ReproError:
        return None


def _lint_main(args, source: str, source_path: str) -> int:
    from .lint import (
        RepairAttachment,
        lint_source,
        lint_to_dict,
        render_text,
        sarif_report,
    )

    session = obs.enable() if (args.trace or args.metrics_out) else None
    try:
        result = lint_source(
            source,
            path=source_path if source_path != "-" else "stdin",
            disable=_split_rules(args.disable),
            select=_split_rules(args.select) or None,
        )
        repair = (
            _suggest_fixes(args, source) if args.suggest_fixes else None
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # unknown rule name in --disable/--select
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    finally:
        if session is not None:
            obs.disable()

    if args.sarif:
        repairs = None
        if repair is not None and repair.fixed:
            from .lang.parser import parse_program

            repairs = {
                result.path: RepairAttachment(
                    program=parse_program(source),
                    report=repair,
                    source=source,
                )
            }
        doc = sarif_report([result], repairs=repairs)
        Path(args.sarif).write_text(json.dumps(doc, indent=2) + "\n")

    snapshot = None
    if session is not None:
        from .obs.export import session_to_dict, session_to_prometheus

        snapshot = session_to_dict(session)
        if args.metrics_out:
            out = Path(args.metrics_out)
            if out.suffix.lower() == ".prom":
                out.write_text(session_to_prometheus(session))
            else:
                out.write_text(json.dumps(snapshot, indent=2) + "\n")

    if args.json:
        payload = lint_to_dict(result)
        if repair is not None:
            from .lang.parser import parse_program
            from .reporting import repair_report_to_dict

            payload["repair"] = repair_report_to_dict(
                repair, original=parse_program(source)
            )
        if snapshot is not None:
            payload["metrics"] = snapshot
        print(render_json(payload))
    else:
        print(render_text(result))
        if repair is not None:
            print(repair.describe())
    if args.trace and session is not None:
        _chatter(args, session.tracer.render())

    return 1 if result.fails(args.fail_on) else 0


def _batch_main(args) -> int:
    from .errors import ReproError as _ReproError
    from .farm.runner import collect_sources, run_batch

    session = obs.enable() if (args.trace or args.metrics_out) else None
    try:
        pairs = collect_sources(args.sources)
        report = run_batch(
            pairs,
            algorithm=args.algorithm,
            state_limit=args.state_limit,
            jobs=args.jobs,
            timeout=args.timeout,
            cache=False if args.no_cache else (args.cache_dir or True),
            backend=args.backend,
            lint=args.lint,
            strategy=args.strategy,
            beam_width=args.beam_width,
        )
    except _ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if session is not None:
            obs.disable()

    if args.jsonl_out:
        Path(args.jsonl_out).write_text(report.to_jsonl())

    snapshot = None
    if session is not None:
        from .obs.export import session_to_dict, session_to_prometheus

        snapshot = session_to_dict(session)
        if args.metrics_out:
            out = Path(args.metrics_out)
            if out.suffix.lower() == ".prom":
                out.write_text(session_to_prometheus(session))
            else:
                out.write_text(json.dumps(snapshot, indent=2) + "\n")

    if args.json:
        payload = report.to_dict()
        if snapshot is not None:
            payload["metrics"] = snapshot
        print(render_json(payload))
    else:
        print(report.describe())
    if args.trace and session is not None:
        _chatter(args, session.tracer.render())

    return 0 if report.deadlock_free else 1


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        # The daemon has its own option surface; hand off before the
        # one-shot parser can reject its flags.  ``repro serve`` ==
        # ``python -m repro.server``.
        from .server.__main__ import main as serve_main

        return serve_main(argv[1:])
    args = build_arg_parser().parse_args(argv)
    strategy_error = _check_strategy(args)
    if strategy_error is not None:
        print(f"error: {strategy_error}", file=sys.stderr)
        return 2
    if args.batch:
        return _batch_main(args)
    if len(args.sources) > 1:
        print(
            "error: multiple sources require --batch", file=sys.stderr
        )
        return 2
    source_path = args.sources[0]
    if source_path == "-":
        source = sys.stdin.read()
    else:
        path = Path(source_path)
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
        source = path.read_text()

    if args.lint:
        return _lint_main(args, source, source_path)

    session = (
        obs.enable() if (args.trace or args.metrics_out) else None
    )
    try:
        result = analyze(
            source,
            algorithm=args.algorithm,
            state_limit=args.state_limit,
            backend=args.backend,
            strategy=args.strategy,
            beam_width=args.beam_width,
        )
        simulation = (
            sample_runs(result.program, runs=args.simulate)
            if args.simulate
            else None
        )
        confirmation = (
            confirm_analysis(
                result,
                state_limit=args.state_limit,
                backend=args.backend,
                strategy=args.strategy,
                beam_width=args.beam_width,
            )
            if args.confirm
            else None
        )
        repair = (
            _suggest_fixes(args, source, result=result)
            if args.suggest_fixes
            else None
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if session is not None:
            obs.disable()

    if args.dot:
        Path(args.dot).write_text(sync_graph_to_dot(result.sync_graph))
    if args.clg_dot:
        clg = build_clg(result.sync_graph)
        Path(args.clg_dot).write_text(clg_to_dot(clg))
    if args.sarif:
        from .lint import RepairAttachment, lint_source, sarif_report

        lint_result = lint_source(
            source, path=source_path if source_path != "-" else "stdin"
        )
        repairs = None
        if repair is not None and repair.fixed:
            repairs = {
                lint_result.path: RepairAttachment(
                    program=result.program, report=repair, source=source
                )
            }
        doc = sarif_report([lint_result], repairs=repairs)
        Path(args.sarif).write_text(json.dumps(doc, indent=2) + "\n")

    snapshot = None
    if session is not None:
        from .obs.export import session_to_dict, session_to_prometheus

        snapshot = session_to_dict(session)
        if args.metrics_out:
            out = Path(args.metrics_out)
            if out.suffix.lower() == ".prom":
                out.write_text(session_to_prometheus(session))
            else:
                out.write_text(json.dumps(snapshot, indent=2) + "\n")

    if args.json:
        print(
            _report_json(
                result, simulation, confirmation, args.stats, snapshot,
                repair,
            )
        )
    else:
        print(result.describe())
        if args.stats:
            from .syncgraph.metrics import compute_metrics

            print(compute_metrics(result.sync_graph).describe())
        if simulation is not None:
            print(f"simulation: {simulation.describe()}")
        if confirmation is not None:
            print(f"confirmation: {confirmation.outcome}")
            if confirmation.witness is not None:
                print(confirmation.witness.describe())
        if repair is not None:
            from .repair import unified_fix_diff

            print(repair.describe())
            for fix in repair.fixes:
                print()
                diff = unified_fix_diff(
                    result.program, fix, path=source_path
                )
                print(diff, end="" if diff.endswith("\n") else "\n")
    if args.trace and session is not None:
        _chatter(args, session.tracer.render())

    certified = (
        confirmation.final_verdict == "certified-deadlock-free"
        if confirmation is not None
        else result.deadlock.deadlock_free
    )
    return 0 if certified else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

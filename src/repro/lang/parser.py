"""Recursive-descent parser for ADL source text.

Grammar (EBNF; ``[]`` optional, ``{}`` repeated, terminals quoted)::

    program  = "program" IDENT ";" (task | procedure) {task | procedure}
    task     = "task" IDENT "is" "begin" {stmt} "end" ";"
    procedure= "procedure" IDENT "is" "begin" {stmt} "end" ";"
    stmt     = "send" IDENT "." IDENT ";"
             | "accept" IDENT ["(" IDENT ")"] ";"
             | "call" IDENT ";"
             | IDENT ":=" expr ";"
             | "if" cond "then" {stmt}
               {"elsif" cond "then" {stmt}}
               ["else" {stmt}] "end" "if" ";"
             | "while" cond "loop" {stmt} "end" "loop" ";"
             | "for" IDENT "in" INT ".." INT "loop" {stmt} "end" "loop" ";"
             | "null" ";"
    cond     = "?" | ["not"] (IDENT | "true" | "false")
    expr     = "?" | IDENT | INT | "true" | "false"

``elsif`` chains desugar into nested :class:`~repro.lang.ast_nodes.If`
nodes, so the AST only ever has two-way branches.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from ..errors import ParseError
from .ast_nodes import (
    Accept,
    Call,
    Assign,
    Condition,
    For,
    If,
    Null,
    ProcDecl,
    Program,
    Send,
    Statement,
    TaskDecl,
    While,
)
from .lexer import Token, TokenType, tokenize
from .source import Span

__all__ = ["parse_program", "parse_task_body"]


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.type != TokenType.EOF:
            self._pos += 1
        return tok

    def _check(self, type_: str, value: str | None = None) -> bool:
        tok = self._cur
        return tok.type == type_ and (value is None or tok.value == value)

    def _accept(self, type_: str, value: str | None = None) -> Token | None:
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: str, value: str | None = None) -> Token:
        tok = self._accept(type_, value)
        if tok is None:
            want = value if value is not None else type_
            got = self._cur.value or self._cur.type
            raise ParseError(
                f"expected {want!r}, found {got!r}",
                self._cur.line,
                self._cur.column,
            )
        return tok

    def _expect_kw(self, kw: str) -> Token:
        return self._expect(TokenType.KEYWORD, kw)

    def _span_from(self, start: Token) -> Span:
        """Span from ``start`` through the most recently consumed token."""
        end = self._tokens[self._pos - 1] if self._pos > 0 else start
        return Span.from_tokens(start, end)

    # -- grammar productions --------------------------------------------

    def parse_program(self) -> Program:
        self._expect_kw("program")
        name_tok = self._expect(TokenType.IDENT)
        name = name_tok.value
        self._expect(TokenType.SEMI)
        tasks: List[TaskDecl] = []
        procedures: List[ProcDecl] = []
        while True:
            if self._check(TokenType.KEYWORD, "task"):
                tasks.append(self._parse_task())
            elif self._check(TokenType.KEYWORD, "procedure"):
                procedures.append(self._parse_procedure())
            else:
                break
        self._expect(TokenType.EOF)
        if not tasks:
            raise ParseError("program has no tasks")
        return Program(
            name=name,
            tasks=tuple(tasks),
            procedures=tuple(procedures),
            loc=Span.of_token(name_tok),
        )

    def _parse_task(self) -> TaskDecl:
        start_tok = self._expect_kw("task")
        name_tok = self._expect(TokenType.IDENT)
        self._expect_kw("is")
        self._expect_kw("begin")
        body = self._parse_stmts()
        self._expect_kw("end")
        self._expect(TokenType.SEMI)
        return TaskDecl(
            name=name_tok.value,
            body=tuple(body),
            loc=Span.of_token(name_tok),
            decl_loc=self._span_from(start_tok),
        )

    def _parse_procedure(self) -> ProcDecl:
        self._expect_kw("procedure")
        name_tok = self._expect(TokenType.IDENT)
        self._expect_kw("is")
        self._expect_kw("begin")
        body = self._parse_stmts()
        self._expect_kw("end")
        self._expect(TokenType.SEMI)
        return ProcDecl(
            name=name_tok.value,
            body=tuple(body),
            loc=Span.of_token(name_tok),
        )

    def _parse_stmts(self) -> List[Statement]:
        stmts: List[Statement] = []
        while True:
            tok = self._cur
            if tok.type == TokenType.KEYWORD and tok.value in (
                "end",
                "elsif",
                "else",
            ):
                return stmts
            if tok.type == TokenType.EOF:
                return stmts
            stmts.append(self._parse_stmt())

    def _parse_stmt(self) -> Statement:
        tok = self._cur
        if tok.type == TokenType.KEYWORD:
            handler = {
                "send": self._parse_send,
                "accept": self._parse_accept,
                "if": self._parse_if,
                "while": self._parse_while,
                "for": self._parse_for,
                "null": self._parse_null,
                "call": self._parse_call,
            }.get(tok.value)
            if handler is None:
                raise ParseError(
                    f"unexpected keyword {tok.value!r}", tok.line, tok.column
                )
            stmt = handler()
        elif tok.type == TokenType.IDENT:
            stmt = self._parse_assign()
        else:
            raise ParseError(
                f"unexpected token {tok.value or tok.type!r}",
                tok.line,
                tok.column,
            )
        return replace(stmt, loc=self._span_from(tok))

    def _parse_send(self) -> Send:
        self._expect_kw("send")
        task = self._expect(TokenType.IDENT).value
        self._expect(TokenType.DOT)
        message = self._expect(TokenType.IDENT).value
        self._expect(TokenType.SEMI)
        return Send(task=task, message=message)

    def _parse_accept(self) -> Accept:
        self._expect_kw("accept")
        message = self._expect(TokenType.IDENT).value
        binds = None
        if self._accept(TokenType.LPAREN):
            binds = self._expect(TokenType.IDENT).value
            self._expect(TokenType.RPAREN)
        self._expect(TokenType.SEMI)
        return Accept(message=message, binds=binds)

    def _parse_assign(self) -> Assign:
        var = self._expect(TokenType.IDENT).value
        self._expect(TokenType.ASSIGN)
        tok = self._cur
        if tok.type in (TokenType.IDENT, TokenType.INT, TokenType.QUESTION):
            expr = self._advance().value
        elif tok.type == TokenType.KEYWORD and tok.value in ("true", "false"):
            expr = self._advance().value
        else:
            raise ParseError(
                f"expected expression, found {tok.value!r}",
                tok.line,
                tok.column,
            )
        self._expect(TokenType.SEMI)
        return Assign(var=var, expr=expr)

    def _parse_cond(self) -> Condition:
        if self._accept(TokenType.QUESTION):
            return Condition.unknown()
        negated = self._accept(TokenType.KEYWORD, "not") is not None
        tok = self._cur
        if tok.type == TokenType.IDENT:
            self._advance()
            return Condition.of_var(tok.value, negated)
        if tok.type == TokenType.KEYWORD and tok.value in ("true", "false"):
            self._advance()
            text = f"not {tok.value}" if negated else tok.value
            return Condition(text=text)
        raise ParseError(
            f"expected condition, found {tok.value or tok.type!r}",
            tok.line,
            tok.column,
        )

    def _parse_if(self) -> If:
        self._expect_kw("if")
        return self._parse_if_tail()

    def _parse_if_tail(self) -> If:
        # An elsif chain shares the single trailing "end if;": the
        # innermost recursive call consumes it on behalf of the chain.
        start = self._cur
        condition = self._parse_cond()
        self._expect_kw("then")
        then_body = self._parse_stmts()
        if self._accept(TokenType.KEYWORD, "elsif"):
            return If(
                condition=condition,
                then_body=tuple(then_body),
                else_body=(self._parse_if_tail(),),
                loc=self._span_from(start),
            )
        else_body: Tuple[Statement, ...] = ()
        if self._accept(TokenType.KEYWORD, "else"):
            else_body = tuple(self._parse_stmts())
        self._expect_kw("end")
        self._expect_kw("if")
        self._expect(TokenType.SEMI)
        return If(
            condition=condition,
            then_body=tuple(then_body),
            else_body=else_body,
            loc=self._span_from(start),
        )

    def _parse_while(self) -> While:
        self._expect_kw("while")
        condition = self._parse_cond()
        self._expect_kw("loop")
        body = self._parse_stmts()
        self._expect_kw("end")
        self._expect_kw("loop")
        self._expect(TokenType.SEMI)
        return While(condition=condition, body=tuple(body))

    def _parse_for(self) -> For:
        self._expect_kw("for")
        var = self._expect(TokenType.IDENT).value
        self._expect_kw("in")
        lower = int(self._expect(TokenType.INT).value)
        self._expect(TokenType.DOTDOT)
        upper = int(self._expect(TokenType.INT).value)
        self._expect_kw("loop")
        body = self._parse_stmts()
        self._expect_kw("end")
        self._expect_kw("loop")
        self._expect(TokenType.SEMI)
        return For(var=var, lower=lower, upper=upper, body=tuple(body))

    def _parse_null(self) -> Null:
        self._expect_kw("null")
        self._expect(TokenType.SEMI)
        return Null()

    def _parse_call(self) -> Call:
        self._expect_kw("call")
        name = self._expect(TokenType.IDENT).value
        self._expect(TokenType.SEMI)
        return Call(name=name)


def parse_program(source: str) -> Program:
    """Parse ADL source text into a :class:`Program` AST.

    Raises :class:`~repro.errors.LexError` or
    :class:`~repro.errors.ParseError` on malformed input.  The result is
    *not* semantically validated; see :mod:`repro.lang.validate`.
    """
    return _Parser(tokenize(source)).parse_program()


def parse_task_body(source: str) -> Tuple[Statement, ...]:
    """Parse a bare statement sequence (convenience for tests)."""
    parser = _Parser(tokenize(source))
    stmts = parser._parse_stmts()
    parser._expect(TokenType.EOF)
    return tuple(stmts)

"""Tokenizer for ADL source text.

ADL (Ada-like Definition Language) is the concrete syntax for the
paper's program model.  A small example::

    program handshake;

    task t1 is
    begin
        send t2.sig1;
        accept sig2;
    end;

    task t2 is
    begin
        accept sig1;
        send t1.sig2;
    end;

Tokens are keywords, identifiers, integers, punctuation
(``; . , := .. ?``) and comments (``-- to end of line``, discarded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import LexError

__all__ = ["Token", "TokenType", "tokenize", "KEYWORDS"]


KEYWORDS = frozenset(
    {
        "program",
        "task",
        "procedure",
        "call",
        "is",
        "begin",
        "end",
        "send",
        "accept",
        "if",
        "then",
        "elsif",
        "else",
        "while",
        "for",
        "in",
        "loop",
        "null",
        "not",
        "true",
        "false",
    }
)


class TokenType:
    """Token kinds; plain string constants keep tokens easy to debug."""

    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    INT = "INT"
    SEMI = "SEMI"
    DOT = "DOT"
    DOTDOT = "DOTDOT"
    ASSIGN = "ASSIGN"
    QUESTION = "QUESTION"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.type}({self.value!r})@{self.line}:{self.column}"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> List[Token]:
    """Tokenize ADL source text; raises :class:`LexError` on bad input."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_col = col
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(source[j]):
                j += 1
            word = source[i:j]
            kind = (
                TokenType.KEYWORD if word.lower() in KEYWORDS else TokenType.IDENT
            )
            value = word.lower() if kind == TokenType.KEYWORD else word
            yield Token(kind, value, line, start_col)
            col += j - i
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            yield Token(TokenType.INT, source[i:j], line, start_col)
            col += j - i
            i = j
            continue
        if source.startswith(":=", i):
            yield Token(TokenType.ASSIGN, ":=", line, start_col)
            i += 2
            col += 2
            continue
        if source.startswith("..", i):
            yield Token(TokenType.DOTDOT, "..", line, start_col)
            i += 2
            col += 2
            continue
        simple = {
            ";": TokenType.SEMI,
            ".": TokenType.DOT,
            "?": TokenType.QUESTION,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
        }
        if ch in simple:
            yield Token(simple[ch], ch, line, start_col)
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    yield Token(TokenType.EOF, "", line, col)

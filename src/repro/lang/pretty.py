"""Pretty-printer (unparser) for ADL ASTs.

``parse_program(pretty(p))`` reproduces ``p`` up to ``origin``
provenance pointers — this round-trip is enforced by a hypothesis
property test.
"""

from __future__ import annotations

from typing import List, Sequence

from .ast_nodes import (
    Accept,
    Assign,
    Call,
    Condition,
    For,
    If,
    Null,
    ProcDecl,
    Program,
    Send,
    Statement,
    TaskDecl,
    While,
)

__all__ = ["pretty", "pretty_body", "pretty_task"]

_INDENT = "    "


def pretty(program: Program) -> str:
    """Render a full program back to ADL source text."""
    lines: List[str] = [f"program {program.name};", ""]
    for proc in program.procedures:
        lines.append(f"procedure {proc.name} is")
        lines.append("begin")
        lines.extend(_stmt_lines(proc.body, 1))
        lines.append("end;")
        lines.append("")
    for task in program.tasks:
        lines.extend(_task_lines(task))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def pretty_body(body: Sequence[Statement], indent: int = 0) -> str:
    """Render a statement sequence (convenience for tests and docs)."""
    return "\n".join(_stmt_lines(body, indent))


def pretty_task(task: TaskDecl) -> str:
    """Render one task declaration (``task … end;``, no trailing newline).

    Exactly the text :func:`pretty` emits for the task — used by the
    SARIF backend to build whole-task ``fix`` replacements.
    """
    return "\n".join(_task_lines(task))


def _task_lines(task: TaskDecl) -> List[str]:
    lines = [f"task {task.name} is", "begin"]
    lines.extend(_stmt_lines(task.body, 1))
    lines.append("end;")
    return lines


def _cond_text(cond: Condition) -> str:
    return cond.text


def _stmt_lines(body: Sequence[Statement], indent: int) -> List[str]:
    pad = _INDENT * indent
    lines: List[str] = []
    for stmt in body:
        if isinstance(stmt, Send):
            lines.append(f"{pad}send {stmt.task}.{stmt.message};")
        elif isinstance(stmt, Accept):
            binds = f" ({stmt.binds})" if stmt.binds else ""
            lines.append(f"{pad}accept {stmt.message}{binds};")
        elif isinstance(stmt, Assign):
            lines.append(f"{pad}{stmt.var} := {stmt.expr};")
        elif isinstance(stmt, Null):
            lines.append(f"{pad}null;")
        elif isinstance(stmt, Call):
            lines.append(f"{pad}call {stmt.name};")
        elif isinstance(stmt, If):
            lines.append(f"{pad}if {_cond_text(stmt.condition)} then")
            lines.extend(_stmt_lines(stmt.then_body, indent + 1))
            if stmt.else_body:
                lines.append(f"{pad}else")
                lines.extend(_stmt_lines(stmt.else_body, indent + 1))
            lines.append(f"{pad}end if;")
        elif isinstance(stmt, While):
            lines.append(f"{pad}while {_cond_text(stmt.condition)} loop")
            lines.extend(_stmt_lines(stmt.body, indent + 1))
            lines.append(f"{pad}end loop;")
        elif isinstance(stmt, For):
            lines.append(
                f"{pad}for {stmt.var} in {stmt.lower} .. {stmt.upper} loop"
            )
            lines.extend(_stmt_lines(stmt.body, indent + 1))
            lines.append(f"{pad}end loop;")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {stmt!r}")
    return lines

"""Source locations for ADL syntax trees.

A :class:`Span` is a half-open region of source text identified by
1-based line and column numbers; ``end_column`` points one past the
last character, matching the convention of most editors and of SARIF
``region`` objects.  Spans are attached to AST nodes by the parser (the
optional ``loc`` field) and travel with statements through the
transform pipeline: leaf statements are shared, not copied, so a
rendezvous point in an unrolled or inlined program still knows where it
was written.

Nodes built programmatically (:class:`~repro.lang.builder.ProgramBuilder`,
the random workload generators) have ``loc = None``; every consumer of
spans treats them as optional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .lexer import Token

__all__ = ["Span"]


@dataclass(frozen=True)
class Span:
    """A contiguous region of ADL source text (1-based, end-exclusive)."""

    line: int
    column: int
    end_line: int
    end_column: int

    @staticmethod
    def from_tokens(start: "Token", end: "Token") -> "Span":
        """The span covering ``start`` through ``end`` inclusive."""
        return Span(
            line=start.line,
            column=start.column,
            end_line=end.line,
            end_column=end.column + max(1, len(end.value)),
        )

    @staticmethod
    def of_token(token: "Token") -> "Span":
        return Span.from_tokens(token, token)

    def cover(self, other: Optional["Span"]) -> "Span":
        """The smallest span containing both ``self`` and ``other``."""
        if other is None:
            return self
        start = min(
            (self.line, self.column), (other.line, other.column)
        )
        end = max(
            (self.end_line, self.end_column),
            (other.end_line, other.end_column),
        )
        return Span(start[0], start[1], end[0], end[1])

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.column}"

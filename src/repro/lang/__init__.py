"""ADL: the Ada-like tasking language substrate.

This subpackage provides everything needed to express the programs the
paper analyzes: the AST (:mod:`.ast_nodes`), a concrete syntax with
lexer and parser (:mod:`.lexer`, :mod:`.parser`), a pretty-printer
(:mod:`.pretty`), semantic validation (:mod:`.validate`) and a fluent
builder API (:mod:`.builder`).
"""

from .ast_nodes import (
    Accept,
    Assign,
    Call,
    Condition,
    For,
    If,
    Null,
    ProcDecl,
    Program,
    Send,
    Signal,
    Statement,
    TaskDecl,
    While,
    statement_count,
    walk_statements,
)
from .builder import ProgramBuilder, TaskBuilder
from .compose import (
    add_handshake,
    parallel_compose,
    prefix_program,
    rename_tasks,
)
from .parser import parse_program, parse_task_body
from .pretty import pretty, pretty_body
from .validate import ValidationReport, collect_signals, validate_program

__all__ = [
    "Accept",
    "Assign",
    "Call",
    "Condition",
    "For",
    "If",
    "Null",
    "ProcDecl",
    "Program",
    "ProgramBuilder",
    "Send",
    "Signal",
    "Statement",
    "TaskBuilder",
    "TaskDecl",
    "ValidationReport",
    "While",
    "add_handshake",
    "collect_signals",
    "parallel_compose",
    "parse_program",
    "parse_task_body",
    "prefix_program",
    "pretty",
    "pretty_body",
    "rename_tasks",
    "statement_count",
    "validate_program",
    "walk_statements",
]

"""Abstract syntax tree for ADL, the Ada-like tasking subset of the paper.

The paper's program model (Section 2) is a restriction of Ada's
rendezvous mechanism:

* statically created tasks, all activated at program start;
* ``send`` (entry call) and ``accept`` statements, but no ``select``;
* arbitrary intra-task control flow (conditionals and loops) that is
  independent of other tasks;
* all rendezvous occur in the main body of a task.

The AST mirrors that model.  Statements are immutable dataclasses so
they can be shared freely between a program and its transforms; each
statement carries an optional ``origin`` pointer naming the statement it
was derived from (used by the loop-unroll and branch-merge transforms to
report provenance).

Conditions are opaque: the paper assumes every control-flow path is
executable, so a condition is just a label (possibly a variable name
that the stall transforms of Section 5.1 can reason about).

Every statement and declaration carries an optional ``loc``
:class:`~repro.lang.source.Span` (default ``None``, excluded from
equality) set by the parser; programmatically built nodes have no
location and all transforms keep working unchanged.  The lint engine
(:mod:`repro.lint`) turns these spans into ``file:line:col``
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence, Tuple, Union

from .source import Span

__all__ = [
    "Condition",
    "Statement",
    "Send",
    "Accept",
    "Assign",
    "If",
    "While",
    "For",
    "Null",
    "Call",
    "ProcDecl",
    "TaskDecl",
    "Program",
    "Signal",
    "Span",
    "walk_statements",
    "statement_count",
]


def _loc_field() -> Optional[Span]:
    """The shared ``loc`` field spec: optional, ignored by ``==``/hash."""
    return field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Signal:
    """A signal ``(t, m)``: message type ``m`` directed at task ``t``.

    Following the paper, any number of tasks may signal an accepting
    task, the accepting task is named explicitly by senders, and the
    number of message types is finite and statically discernible.
    """

    task: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.task}, {self.message})"


@dataclass(frozen=True)
class Condition:
    """An opaque branch/loop condition.

    ``text`` is the surface syntax (``?`` denotes an unknown,
    nondeterministic condition).  ``var`` is set when the condition is a
    single boolean variable reference — the co-dependent stall transform
    (Figure 5(d)) keys on that.  ``negated`` tracks a leading ``not``.
    """

    text: str = "?"
    var: Optional[str] = None
    negated: bool = False

    @staticmethod
    def unknown() -> "Condition":
        return Condition(text="?")

    @staticmethod
    def of_var(name: str, negated: bool = False) -> "Condition":
        text = f"not {name}" if negated else name
        return Condition(text=text, var=name, negated=negated)

    def negate(self) -> "Condition":
        if self.var is not None:
            return Condition.of_var(self.var, not self.negated)
        return Condition(text=f"not ({self.text})")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text


class Statement:
    """Base class for ADL statements (marker; no behaviour)."""

    __slots__ = ()


@dataclass(frozen=True)
class Send(Statement):
    """``send t.m`` — a signaling rendezvous point ``(t, m, +)``.

    The sending task suspends until the target task executes a matching
    ``accept``.
    """

    task: str
    message: str
    origin: Optional["Send"] = field(default=None, compare=False, repr=False)
    loc: Optional[Span] = _loc_field()

    @property
    def signal(self) -> Signal:
        return Signal(self.task, self.message)


@dataclass(frozen=True)
class Accept(Statement):
    """``accept m`` — an accepting rendezvous point ``(self, m, -)``.

    The accepting task suspends until some task sends signal
    ``(enclosing_task, m)``.  ``binds`` optionally names a boolean
    variable bound by the rendezvous (used by the co-dependent stall
    transform, Figure 5(d)).
    """

    message: str
    binds: Optional[str] = None
    origin: Optional["Accept"] = field(default=None, compare=False, repr=False)
    loc: Optional[Span] = _loc_field()


@dataclass(frozen=True)
class Assign(Statement):
    """``v := expr`` — an opaque local assignment.

    Assignments carry no synchronization behaviour; they exist so that
    realistic examples parse and so the co-dependent transform can track
    where boolean variables are defined.
    """

    var: str
    expr: str = "?"
    loc: Optional[Span] = _loc_field()


@dataclass(frozen=True)
class If(Statement):
    """``if c then ... [else ...] end if`` with opaque condition."""

    condition: Condition
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...] = ()
    loc: Optional[Span] = _loc_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "then_body", tuple(self.then_body))
        object.__setattr__(self, "else_body", tuple(self.else_body))


@dataclass(frozen=True)
class While(Statement):
    """``while c loop ... end loop`` with opaque condition.

    Analyses never execute while loops directly: the Lemma-1 transform
    replaces each one by two guarded copies of its body, which preserves
    all deadlock cycles (Section 3.1.4).
    """

    condition: Condition
    body: Tuple[Statement, ...]
    loc: Optional[Span] = _loc_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))


@dataclass(frozen=True)
class For(Statement):
    """``for i in lo .. hi loop ... end loop`` with static bounds.

    Static bounds allow *exact* full unrolling, unlike ``while`` loops
    which require the conservative Lemma-1 transform.
    """

    var: str
    lower: int
    upper: int
    body: Tuple[Statement, ...]
    loc: Optional[Span] = _loc_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    @property
    def trip_count(self) -> int:
        return max(0, self.upper - self.lower + 1)


@dataclass(frozen=True)
class Null(Statement):
    """``null`` — no-op, useful for empty branches."""

    loc: Optional[Span] = _loc_field()


@dataclass(frozen=True)
class Call(Statement):
    """``call p`` — invoke a program-level procedure.

    The paper's model assumes all rendezvous occur in the task's main
    procedure and names an interprocedural extension as future work;
    this implementation supports non-recursive procedures by inlining
    (:mod:`repro.transforms.inline`) before analysis, which preserves
    the intraprocedural model exactly.
    """

    name: str
    loc: Optional[Span] = _loc_field()


@dataclass(frozen=True)
class ProcDecl:
    """A program-level procedure: shared statement sequence.

    Procedures may call other procedures; recursion is rejected at
    inline time (an unbounded call stack has no finite sync graph).
    ``accept`` statements inside a procedure accept on behalf of the
    *calling* task, matching Ada semantics for internal procedure calls.
    """

    name: str
    body: Tuple[Statement, ...]
    loc: Optional[Span] = _loc_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))


@dataclass(frozen=True)
class TaskDecl:
    """A task: a name and a statement sequence (its main body).

    ``loc`` spans the task's *name* token (diagnostic anchor);
    ``decl_loc`` spans the whole ``task … end;`` declaration — the
    region a whole-task replacement (e.g. a SARIF fix) must cover.
    """

    name: str
    body: Tuple[Statement, ...]
    loc: Optional[Span] = _loc_field()
    decl_loc: Optional[Span] = _loc_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    def with_body(self, body: Sequence[Statement]) -> "TaskDecl":
        return replace(self, body=tuple(body))


@dataclass(frozen=True)
class Program:
    """A whole ADL program: statically created tasks plus any shared
    procedures (inlined away before analysis)."""

    name: str
    tasks: Tuple[TaskDecl, ...]
    procedures: Tuple[ProcDecl, ...] = ()
    loc: Optional[Span] = _loc_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(self, "procedures", tuple(self.procedures))

    def task(self, name: str) -> TaskDecl:
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(name)

    def procedure(self, name: str) -> ProcDecl:
        for p in self.procedures:
            if p.name == name:
                return p
        raise KeyError(name)

    @property
    def task_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tasks)

    @property
    def procedure_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.procedures)

    def with_tasks(self, tasks: Sequence[TaskDecl]) -> "Program":
        return replace(self, tasks=tuple(tasks))


BodyStatement = Union[Send, Accept, Assign, If, While, For, Null]


def walk_statements(body: Sequence[Statement]) -> Iterator[Statement]:
    """Yield every statement in ``body``, recursing into compound bodies.

    Order is source order (pre-order for compound statements).
    """
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, (While, For)):
            yield from walk_statements(stmt.body)


def statement_count(program: Program) -> int:
    """Total number of statements in the program (all tasks, recursive)."""
    return sum(
        1 for task in program.tasks for _ in walk_statements(task.body)
    )

"""Semantic validation of ADL programs against the paper's model.

Hard errors (:class:`~repro.errors.ValidationError`):

* duplicate task names;
* a ``send`` naming a task that does not exist;
* a task sending a signal to itself (a self-rendezvous can never
  complete under the barrier model and the paper's tasks never do it).

Soft findings (returned, not raised):

* signals that are sent but never accepted, or accepted but never sent —
  these are legal programs but guaranteed stall candidates, and the
  stall analysis (Section 5) reports them.

Soft findings are reported as structured, source-located
:class:`~repro.diagnostics.Diagnostic` values carrying the same rule
ids as the lint engine (ADL001/ADL002); the legacy ``warnings`` string
list is kept as a deprecated property derived from them.
"""

from __future__ import annotations

import warnings as _warnings
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..diagnostics import Diagnostic, Severity
from ..errors import ValidationError
from .ast_nodes import Accept, Call, Program, Send, Signal, walk_statements

__all__ = [
    "ValidationReport",
    "validate_program",
    "collect_signals",
    "unmatched_signal_diagnostics",
]


@dataclass
class ValidationReport:
    """Result of validating a program.

    ``unmatched_sends`` / ``unmatched_accepts`` list signals with no
    complementary rendezvous point anywhere in the program;
    ``diagnostics`` carries one source-located finding per offending
    rendezvous statement.
    """

    program_name: str
    task_names: Tuple[str, ...]
    signals: Tuple[Signal, ...]
    unmatched_sends: Tuple[Signal, ...] = ()
    unmatched_accepts: Tuple[Signal, ...] = ()
    diagnostics: Tuple[Diagnostic, ...] = ()

    @property
    def fully_matched(self) -> bool:
        return not self.unmatched_sends and not self.unmatched_accepts

    @property
    def warnings(self) -> List[str]:
        """Deprecated: plain-string findings; use ``diagnostics``."""
        _warnings.warn(
            "ValidationReport.warnings is deprecated; use the structured "
            "ValidationReport.diagnostics instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return [d.message for d in self.diagnostics]


def collect_signals(program: Program) -> Dict[Signal, Tuple[int, int]]:
    """Count send and accept rendezvous points per signal.

    Returns ``{signal: (send_count, accept_count)}`` over the whole
    program, counting every syntactic rendezvous point (conditional or
    not).  This is the raw input to the Lemma-3 stall count check.
    """
    counts: Dict[Signal, List[int]] = {}
    for task in program.tasks:
        for stmt in walk_statements(task.body):
            if isinstance(stmt, Send):
                sig = Signal(stmt.task, stmt.message)
                counts.setdefault(sig, [0, 0])[0] += 1
            elif isinstance(stmt, Accept):
                sig = Signal(task.name, stmt.message)
                counts.setdefault(sig, [0, 0])[1] += 1
    return {sig: (c[0], c[1]) for sig, c in counts.items()}


def unmatched_signal_diagnostics(
    program: Program,
) -> Tuple[Diagnostic, ...]:
    """One ADL001/ADL002 diagnostic per rendezvous point whose signal
    has no complementary point anywhere in the program (Lemma 3 stall
    candidates).  Shared by validation and the lint rules so both report
    identical findings.
    """
    counts = collect_signals(program)
    task_names = {t.name for t in program.tasks}
    found: List[Diagnostic] = []
    for task in program.tasks:
        for stmt in walk_statements(task.body):
            if isinstance(stmt, Send):
                if stmt.task not in task_names:
                    continue  # unknown target: ADL004's finding, not ours
                sends, accepts = counts[Signal(stmt.task, stmt.message)]
                if accepts == 0:
                    found.append(
                        Diagnostic(
                            rule_id="ADL001",
                            severity=Severity.WARNING,
                            message=(
                                f"signal {Signal(stmt.task, stmt.message)} "
                                "is sent but never accepted"
                            ),
                            span=stmt.loc,
                            task=task.name,
                        )
                    )
            elif isinstance(stmt, Accept):
                sends, accepts = counts[Signal(task.name, stmt.message)]
                if sends == 0:
                    found.append(
                        Diagnostic(
                            rule_id="ADL002",
                            severity=Severity.WARNING,
                            message=(
                                f"signal {Signal(task.name, stmt.message)} "
                                "is accepted but never sent"
                            ),
                            span=stmt.loc,
                            task=task.name,
                        )
                    )
    return tuple(sorted(found, key=Diagnostic.sort_key))


def validate_program(program: Program) -> ValidationReport:
    """Validate ``program``; raise on model violations, report findings."""
    names = [t.name for t in program.tasks]
    seen: Set[str] = set()
    for name in names:
        if name in seen:
            raise ValidationError(f"duplicate task name {name!r}")
        seen.add(name)

    proc_names: Set[str] = set()
    for proc in program.procedures:
        if proc.name in proc_names:
            raise ValidationError(
                f"duplicate procedure name {proc.name!r}"
            )
        proc_names.add(proc.name)

    def check_calls(owner: str, body) -> None:
        for stmt in walk_statements(body):
            if isinstance(stmt, Call) and stmt.name not in proc_names:
                raise ValidationError(
                    f"{owner} calls unknown procedure {stmt.name!r}"
                )

    for proc in program.procedures:
        check_calls(f"procedure {proc.name!r}", proc.body)
        for stmt in walk_statements(proc.body):
            if isinstance(stmt, Send) and stmt.task not in seen:
                raise ValidationError(
                    f"procedure {proc.name!r} sends to unknown task "
                    f"{stmt.task!r}"
                )

    for task in program.tasks:
        check_calls(f"task {task.name!r}", task.body)
        for stmt in walk_statements(task.body):
            if isinstance(stmt, Send):
                if stmt.task not in seen:
                    raise ValidationError(
                        f"task {task.name!r} sends to unknown task "
                        f"{stmt.task!r}"
                    )
                if stmt.task == task.name:
                    raise ValidationError(
                        f"task {task.name!r} sends signal "
                        f"{stmt.message!r} to itself; a self-rendezvous "
                        "can never complete"
                    )

    counts = collect_signals(program)
    unmatched_sends = tuple(
        sig for sig, (s, a) in sorted(counts.items(), key=_sig_key) if a == 0
    )
    unmatched_accepts = tuple(
        sig for sig, (s, a) in sorted(counts.items(), key=_sig_key) if s == 0
    )
    return ValidationReport(
        program_name=program.name,
        task_names=tuple(names),
        signals=tuple(sorted(counts, key=lambda s: (s.task, s.message))),
        unmatched_sends=unmatched_sends,
        unmatched_accepts=unmatched_accepts,
        diagnostics=unmatched_signal_diagnostics(program),
    )


def _sig_key(item: Tuple[Signal, Tuple[int, int]]) -> Tuple[str, str]:
    sig = item[0]
    return (sig.task, sig.message)

"""Fluent Python API for constructing ADL programs.

Writing ASTs by hand is verbose; the builder makes corpus programs and
generated workloads readable::

    from repro.lang.builder import ProgramBuilder

    pb = ProgramBuilder("handshake")
    with pb.task("t1") as t:
        t.send("t2", "sig1")
        t.accept("sig2")
    with pb.task("t2") as t:
        t.accept("sig1")
        t.send("t1", "sig2")
    program = pb.build()

Compound statements nest with context managers::

    with t.if_() as branch:
        t.send("t2", "a")
        with branch.else_():
            t.send("t2", "b")
    with t.while_():
        t.accept("tick")

The builder validates the finished program by default.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from .ast_nodes import (
    Accept,
    Assign,
    Call,
    Condition,
    For,
    If,
    Null,
    ProcDecl,
    Program,
    Send,
    Statement,
    TaskDecl,
    While,
)
from .validate import validate_program

__all__ = ["ProgramBuilder", "TaskBuilder"]


class _Branch:
    """Handle returned by ``if_``; ``else_`` switches the target body."""

    def __init__(self, task: "TaskBuilder", else_body: List[Statement]):
        self._task = task
        self._else_body = else_body

    @contextmanager
    def else_(self) -> Iterator[None]:
        self._task._push(self._else_body)
        try:
            yield
        finally:
            self._task._pop()


class TaskBuilder:
    """Accumulates statements for one task; obtained from ``pb.task``."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._body: List[Statement] = []
        self._stack: List[List[Statement]] = [self._body]

    # -- internal body-stack plumbing -----------------------------------

    def _push(self, body: List[Statement]) -> None:
        self._stack.append(body)

    def _pop(self) -> None:
        self._stack.pop()

    def _emit(self, stmt: Statement) -> None:
        self._stack[-1].append(stmt)

    # -- leaf statements -------------------------------------------------

    def send(self, task: str, message: str) -> "TaskBuilder":
        self._emit(Send(task=task, message=message))
        return self

    def accept(self, message: str, binds: Optional[str] = None) -> "TaskBuilder":
        self._emit(Accept(message=message, binds=binds))
        return self

    def assign(self, var: str, expr: str = "?") -> "TaskBuilder":
        self._emit(Assign(var=var, expr=expr))
        return self

    def null(self) -> "TaskBuilder":
        self._emit(Null())
        return self

    def call(self, name: str) -> "TaskBuilder":
        self._emit(Call(name=name))
        return self

    # -- compound statements ----------------------------------------------

    @contextmanager
    def if_(self, condition: Optional[Condition] = None) -> Iterator[_Branch]:
        """Open an ``if``; statements emitted inside go to the then-branch.

        Use the yielded handle's ``else_()`` context to fill the
        else-branch.
        """
        cond = condition if condition is not None else Condition.unknown()
        then_body: List[Statement] = []
        else_body: List[Statement] = []
        self._push(then_body)
        try:
            yield _Branch(self, else_body)
        finally:
            self._pop()
            self._emit(
                If(
                    condition=cond,
                    then_body=tuple(then_body),
                    else_body=tuple(else_body),
                )
            )

    @contextmanager
    def while_(self, condition: Optional[Condition] = None) -> Iterator[None]:
        cond = condition if condition is not None else Condition.unknown()
        body: List[Statement] = []
        self._push(body)
        try:
            yield
        finally:
            self._pop()
            self._emit(While(condition=cond, body=tuple(body)))

    @contextmanager
    def for_(self, var: str, lower: int, upper: int) -> Iterator[None]:
        body: List[Statement] = []
        self._push(body)
        try:
            yield
        finally:
            self._pop()
            self._emit(For(var=var, lower=lower, upper=upper, body=tuple(body)))

    def build(self) -> TaskDecl:
        return TaskDecl(name=self.name, body=tuple(self._body))


class ProgramBuilder:
    """Builds a whole :class:`~repro.lang.ast_nodes.Program`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._tasks: List[TaskDecl] = []
        self._procedures: List[ProcDecl] = []

    @contextmanager
    def task(self, name: str) -> Iterator[TaskBuilder]:
        tb = TaskBuilder(name)
        yield tb
        self._tasks.append(tb.build())

    @contextmanager
    def procedure(self, name: str) -> Iterator[TaskBuilder]:
        """Build a shared procedure with the same statement API as a task."""
        tb = TaskBuilder(name)
        yield tb
        task = tb.build()
        self._procedures.append(ProcDecl(name=task.name, body=task.body))

    def add_task(self, task: TaskDecl) -> "ProgramBuilder":
        self._tasks.append(task)
        return self

    def build(self, validate: bool = True) -> Program:
        program = Program(
            name=self.name,
            tasks=tuple(self._tasks),
            procedures=tuple(self._procedures),
        )
        if validate:
            validate_program(program)
        return program

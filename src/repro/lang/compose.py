"""Program composition: renaming, prefixing, and parallel combination.

The paper's model has statically created tasks only, so larger systems
are built by composing smaller ones at the source level.  These
utilities make that mechanical: rename tasks consistently (updating
every ``send`` target), prefix a whole program, or put several programs
side by side as one task set.  The scaling benchmarks use them to grow
structured workloads (grids of independent protocol instances stitched
together with bridge handshakes).

Composition interacts with analysis exactly as expected: tasks of
disjoint sub-programs share no signals (after prefixing), so the sync
graph of a parallel composition is the disjoint union of the parts' —
a deadlock in any part is a deadlock of the whole.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import ValidationError
from .ast_nodes import (
    Accept,
    Assign,
    Call,
    For,
    If,
    Null,
    ProcDecl,
    Program,
    Send,
    Statement,
    TaskDecl,
    While,
)
from .validate import validate_program

__all__ = [
    "rename_tasks",
    "prefix_program",
    "parallel_compose",
    "add_handshake",
]


def _rename_body(
    body: Sequence[Statement], mapping: Mapping[str, str]
) -> Tuple[Statement, ...]:
    out: List[Statement] = []
    for stmt in body:
        if isinstance(stmt, Send):
            out.append(
                Send(
                    task=mapping.get(stmt.task, stmt.task),
                    message=stmt.message,
                )
            )
        elif isinstance(stmt, If):
            out.append(
                If(
                    condition=stmt.condition,
                    then_body=_rename_body(stmt.then_body, mapping),
                    else_body=_rename_body(stmt.else_body, mapping),
                )
            )
        elif isinstance(stmt, While):
            out.append(
                While(
                    condition=stmt.condition,
                    body=_rename_body(stmt.body, mapping),
                )
            )
        elif isinstance(stmt, For):
            out.append(
                For(
                    var=stmt.var,
                    lower=stmt.lower,
                    upper=stmt.upper,
                    body=_rename_body(stmt.body, mapping),
                )
            )
        else:
            out.append(stmt)
    return tuple(out)


def rename_tasks(program: Program, mapping: Mapping[str, str]) -> Program:
    """Rename tasks per ``mapping`` and rewrite every ``send`` target.

    Tasks absent from the mapping keep their names.  Raises
    :class:`ValidationError` if the renaming introduces a collision.
    """
    new_names = [mapping.get(t.name, t.name) for t in program.tasks]
    if len(set(new_names)) != len(new_names):
        raise ValidationError("task renaming would create duplicate names")
    tasks = tuple(
        TaskDecl(
            name=mapping.get(t.name, t.name),
            body=_rename_body(t.body, mapping),
        )
        for t in program.tasks
    )
    procedures = tuple(
        ProcDecl(name=p.name, body=_rename_body(p.body, mapping))
        for p in program.procedures
    )
    return Program(name=program.name, tasks=tasks, procedures=procedures)


def prefix_program(program: Program, prefix: str) -> Program:
    """Prefix every task (and procedure) name with ``prefix_``."""
    mapping = {t.name: f"{prefix}_{t.name}" for t in program.tasks}
    renamed = rename_tasks(program, mapping)
    # Procedure names are a separate namespace but still need disjoint
    # names for composition.
    proc_mapping = {p.name: f"{prefix}_{p.name}" for p in program.procedures}

    def rename_calls(body: Sequence[Statement]) -> Tuple[Statement, ...]:
        out: List[Statement] = []
        for stmt in body:
            if isinstance(stmt, Call):
                out.append(Call(name=proc_mapping.get(stmt.name, stmt.name)))
            elif isinstance(stmt, If):
                out.append(
                    If(
                        condition=stmt.condition,
                        then_body=rename_calls(stmt.then_body),
                        else_body=rename_calls(stmt.else_body),
                    )
                )
            elif isinstance(stmt, While):
                out.append(
                    While(
                        condition=stmt.condition,
                        body=rename_calls(stmt.body),
                    )
                )
            elif isinstance(stmt, For):
                out.append(
                    For(
                        var=stmt.var,
                        lower=stmt.lower,
                        upper=stmt.upper,
                        body=rename_calls(stmt.body),
                    )
                )
            else:
                out.append(stmt)
        return tuple(out)

    tasks = tuple(
        TaskDecl(name=t.name, body=rename_calls(t.body))
        for t in renamed.tasks
    )
    procedures = tuple(
        ProcDecl(name=proc_mapping[p.name], body=rename_calls(p.body))
        for p in renamed.procedures
    )
    return Program(
        name=f"{prefix}_{program.name}", tasks=tasks, procedures=procedures
    )


def parallel_compose(name: str, *programs: Program) -> Program:
    """Combine programs into one task set (names must be disjoint)."""
    if not programs:
        raise ValueError("need at least one program")
    tasks: List[TaskDecl] = []
    procedures: List[ProcDecl] = []
    seen_tasks: Dict[str, str] = {}
    seen_procs: Dict[str, str] = {}
    for program in programs:
        for task in program.tasks:
            if task.name in seen_tasks:
                raise ValidationError(
                    f"task {task.name!r} appears in both "
                    f"{seen_tasks[task.name]!r} and {program.name!r}; "
                    "prefix the programs first"
                )
            seen_tasks[task.name] = program.name
            tasks.append(task)
        for proc in program.procedures:
            if proc.name in seen_procs:
                raise ValidationError(
                    f"procedure {proc.name!r} appears in both "
                    f"{seen_procs[proc.name]!r} and {program.name!r}; "
                    "prefix the programs first"
                )
            seen_procs[proc.name] = program.name
            procedures.append(proc)
    composed = Program(
        name=name, tasks=tuple(tasks), procedures=tuple(procedures)
    )
    validate_program(composed)
    return composed


def add_handshake(
    program: Program,
    from_task: str,
    to_task: str,
    message: str,
) -> Program:
    """Append a bridging rendezvous: ``from_task`` signals ``to_task``.

    The send goes at the end of ``from_task``, the accept at the end of
    ``to_task`` — a sequencing bridge between composed sub-programs
    ("part B starts its last phase only after part A finished").
    """
    if from_task == to_task:
        raise ValidationError("handshake endpoints must differ")
    tasks: List[TaskDecl] = []
    found = {from_task: False, to_task: False}
    for task in program.tasks:
        if task.name == from_task:
            found[from_task] = True
            tasks.append(
                TaskDecl(
                    name=task.name,
                    body=task.body + (Send(task=to_task, message=message),),
                )
            )
        elif task.name == to_task:
            found[to_task] = True
            tasks.append(
                TaskDecl(
                    name=task.name,
                    body=task.body + (Accept(message=message),),
                )
            )
        else:
            tasks.append(task)
    for name, ok in found.items():
        if not ok:
            raise ValidationError(f"no task named {name!r}")
    return Program(
        name=program.name, tasks=tuple(tasks), procedures=program.procedures
    )

"""Loop removal by bounded unrolling (paper, Lemma 1 / Section 3.1.4).

The CLG method needs acyclic control flow.  Lemma 1: unrolling each
loop **twice** (recursively, innermost to outermost) yields a loop-free
program ``T(P)`` whose sync graph contains every deadlock cycle of any
linearized execution of ``P`` — and only cycles present in some
linearization — so ``T`` is anomaly preserving *and* precise.

The key case is a cycle entering a loop body in one iteration and
exiting in the next: two unrolled copies provide the cross-iteration
control path.  One copy would not; more than two adds nothing.

``while`` loops become two *guarded* copies (the second nested inside
the first — iteration 2 presupposes iteration 1)::

    while c loop B end      ⇒      if c then B₁ ; if c then B₂ end if ; end if

``for`` loops with static trip counts up to ``for_limit`` are unrolled
*exactly* (no approximation at all); larger ones fall back to the
guarded form.  Worst-case growth is ``O(statements × factor^depth)``
(Section 3.1.4), measured by the ``bench_unroll`` experiment.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..lang.ast_nodes import (
    Condition,
    For,
    If,
    Program,
    Statement,
    While,
    walk_statements,
)

__all__ = [
    "unroll_body",
    "remove_loops",
    "has_loops",
    "has_approximated_loops",
]


def has_loops(program: Program) -> bool:
    """True iff any task contains a ``while`` or ``for`` statement."""

    def scan(body: Sequence[Statement]) -> bool:
        for stmt in body:
            if isinstance(stmt, (While, For)):
                return True
            if isinstance(stmt, If) and (
                scan(stmt.then_body) or scan(stmt.else_body)
            ):
                return True
        return False

    return any(scan(task.body) for task in program.tasks)


def has_approximated_loops(program: Program, for_limit: int = 64) -> bool:
    """True iff :func:`remove_loops` would *approximate* this program.

    ``for`` loops within ``for_limit`` unroll exactly (same wave
    semantics); ``while`` loops — and oversized ``for`` loops — become
    Lemma-1 guarded copies, which preserve the static CLG analysis but
    bound loop iterations, so exact wave verdicts may diverge.
    """
    for task in program.tasks:
        for stmt in walk_statements(task.body):
            if isinstance(stmt, While):
                return True
            if isinstance(stmt, For) and stmt.trip_count > for_limit:
                return True
    return False


def _guarded_copies(
    condition: Condition, body: Tuple[Statement, ...], factor: int
) -> Statement:
    """``factor`` nested guarded copies of an already-unrolled body."""
    inner: Tuple[Statement, ...] = ()
    for _ in range(factor):
        inner = body + ((If(condition=condition, then_body=inner),) if inner else ())
    return If(condition=condition, then_body=inner)


def unroll_body(
    body: Sequence[Statement], factor: int = 2, for_limit: int = 64
) -> Tuple[Statement, ...]:
    """Unroll all loops in ``body`` (innermost first), returning new body.

    ``factor`` is the number of guarded copies per ``while`` loop
    (Lemma 1 requires ≥ 2 for precision; 1 is provided for the ablation
    benchmark and is *not* anomaly preserving across iterations).
    """
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    out: List[Statement] = []
    for stmt in body:
        if isinstance(stmt, If):
            out.append(
                If(
                    condition=stmt.condition,
                    then_body=unroll_body(stmt.then_body, factor, for_limit),
                    else_body=unroll_body(stmt.else_body, factor, for_limit),
                )
            )
        elif isinstance(stmt, While):
            inner = unroll_body(stmt.body, factor, for_limit)
            out.append(_guarded_copies(stmt.condition, inner, factor))
        elif isinstance(stmt, For):
            inner = unroll_body(stmt.body, factor, for_limit)
            if stmt.trip_count <= for_limit:
                for _ in range(stmt.trip_count):
                    out.extend(inner)
            else:
                out.append(_guarded_copies(Condition.unknown(), inner, factor))
        else:
            out.append(stmt)
    return tuple(out)


def remove_loops(
    program: Program, factor: int = 2, for_limit: int = 64
) -> Tuple[Program, bool]:
    """Apply the Lemma-1 transform; returns ``(T(P), changed)``.

    When the program is already loop-free it is returned unchanged with
    ``changed = False``, so pipelines can record whether approximation
    happened.
    """
    if not has_loops(program):
        return program, False
    tasks = [
        task.with_body(unroll_body(task.body, factor, for_limit))
        for task in program.tasks
    ]
    return program.with_tasks(tasks), True

"""Both-branches rendezvous merge (paper, Section 5.1, Figure 5 b/c).

First stall-avoidance pattern: when a rendezvous of the same type is
always executed on *both* sides of a conditional, the two occurrences
can be combined into one unconditional node, splitting the conditional
to preserve relative node ordering::

    if c then A₁ ; r ; A₂        if c then A₁ else B₁ end if ;
    else    B₁ ; r ; B₂     ⇒    r ;
    end if                       if c then A₂ else B₂ end if ;

The transform reduces the number of conditionally executed rendezvous,
enlarging the class of programs Lemma 3 can certify stall-free.  It may
only *add* control paths (mixed then/else combinations), so under the
all-paths-executable assumption it is anomaly preserving: no anomaly of
the original disappears.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..lang.ast_nodes import (
    Accept,
    If,
    Program,
    Send,
    Statement,
    TaskDecl,
)

__all__ = ["merge_branch_rendezvous"]


def _same_rendezvous(a: Statement, b: Statement) -> bool:
    if isinstance(a, Send) and isinstance(b, Send):
        return a.task == b.task and a.message == b.message
    if isinstance(a, Accept) and isinstance(b, Accept):
        return a.message == b.message and a.binds == b.binds
    return False


def _find_match(
    then_body: Sequence[Statement], else_body: Sequence[Statement]
) -> Optional[Tuple[int, int]]:
    """Indices of the first matching rendezvous pair across the branches."""
    for i, a in enumerate(then_body):
        if not isinstance(a, (Send, Accept)):
            continue
        for j, b in enumerate(else_body):
            if _same_rendezvous(a, b):
                return (i, j)
    return None


def _merge_if(stmt: If) -> Optional[List[Statement]]:
    """Split one conditional around a matched rendezvous pair, or None."""
    match = _find_match(stmt.then_body, stmt.else_body)
    if match is None:
        return None
    i, j = match
    merged = stmt.then_body[i]
    out: List[Statement] = []
    pre_then, pre_else = stmt.then_body[:i], stmt.else_body[:j]
    post_then, post_else = stmt.then_body[i + 1 :], stmt.else_body[j + 1 :]
    if pre_then or pre_else:
        out.append(
            If(condition=stmt.condition, then_body=pre_then, else_body=pre_else)
        )
    out.append(merged)
    if post_then or post_else:
        out.append(
            If(
                condition=stmt.condition,
                then_body=post_then,
                else_body=post_else,
            )
        )
    return out


def _merge_body(body: Sequence[Statement]) -> Tuple[Tuple[Statement, ...], int]:
    out: List[Statement] = []
    merges = 0
    for stmt in body:
        if isinstance(stmt, If):
            then_body, m1 = _merge_body(stmt.then_body)
            else_body, m2 = _merge_body(stmt.else_body)
            merges += m1 + m2
            candidate = If(
                condition=stmt.condition,
                then_body=then_body,
                else_body=else_body,
            )
            merged = _merge_if(candidate)
            if merged is not None:
                merges += 1
                # The split conditionals may allow further merges.
                inner, extra = _merge_body(merged)
                merges += extra
                out.extend(inner)
            else:
                out.append(candidate)
        else:
            out.append(stmt)
    return tuple(out), merges


def merge_branch_rendezvous(program: Program) -> Tuple[Program, int]:
    """Apply the Figure-5(b/c) merge to a fixpoint program-wide.

    Returns the transformed program and the number of merges performed
    (0 means the program is returned structurally unchanged).
    """
    total = 0
    tasks: List[TaskDecl] = []
    for task in program.tasks:
        body, merges = _merge_body(task.body)
        total += merges
        # with_body keeps loc/decl_loc so downstream span reporting
        # (lint, SARIF fixes) survives the transform.
        tasks.append(task.with_body(body))
    if total == 0:
        return program, 0
    return program.with_tasks(tasks), total

"""Co-dependent conditional rendezvous factoring (paper §5.1, Fig 5 d).

Second stall-avoidance pattern: node ``r`` in task ``T`` executes iff a
complementary node ``r'`` executes in task ``T'``, because the same
boolean value controls both conditionals — computed in ``T``,
communicated to ``T'`` by an earlier rendezvous, and never modified.
Then ``r``/``r'`` either both execute or neither does, so the pair can
be factored out of Lemma 3's signal counts (equivalently, both hoisted
out of their conditionals).

Detected pattern (conservative; misses are safe, reporting UNKNOWN
downstream instead):

* task ``T``: a boolean ``v`` is assigned at most once, then a
  ``send T'.s`` communicates it, then ``if v then [... r ...]`` guards
  a rendezvous ``r``, with a rendezvous-free else-branch;
* task ``T'``: ``accept s (v')`` binds the value, then
  ``if v' then [... r' ...]`` guards ``r'``;
* ``r`` and ``r'`` are complementary points of the same signal, and
  that signal's only rendezvous points are ``r`` and ``r'`` (so the
  pairing is unambiguous);
* neither ``v`` nor ``v'`` is reassigned after the communication.

The transform hoists both conditionals' guarded rendezvous out (the
paper: "r and r' can be replaced by nodes outside their respective
conditionals"), leaving the rest of each branch in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.ast_nodes import (
    Accept,
    Assign,
    If,
    Program,
    Send,
    Signal,
    Statement,
    TaskDecl,
    walk_statements,
)
from ..lang.validate import collect_signals

__all__ = ["CodependentPair", "find_codependent_pairs", "factor_codependent"]


@dataclass(frozen=True)
class CodependentPair:
    """A matched pair of co-dependent conditional rendezvous points."""

    signal: Signal
    sender_task: str
    accepter_task: str
    guard_var_sender: str
    guard_var_accepter: str


@dataclass
class _GuardedRendezvous:
    task: str
    guard_var: str
    conditional: If
    rendezvous: Statement  # Send or Accept
    top_index: int  # index of the conditional in the task body


def _assignment_count(body: Sequence[Statement], var: str) -> int:
    return sum(
        1
        for stmt in walk_statements(body)
        if isinstance(stmt, Assign) and stmt.var == var
    )


def _bind_count(body: Sequence[Statement], var: str) -> int:
    return sum(
        1
        for stmt in walk_statements(body)
        if isinstance(stmt, Accept) and stmt.binds == var
    )


def _guarded_rendezvous(task: TaskDecl) -> List[_GuardedRendezvous]:
    """Top-level ``if v then [.. rendezvous ..]`` occurrences in a task.

    Only un-negated single-variable guards with a rendezvous-free else
    branch and exactly one guarded rendezvous qualify.
    """
    found: List[_GuardedRendezvous] = []
    for idx, stmt in enumerate(task.body):
        if not isinstance(stmt, If):
            continue
        cond = stmt.condition
        if cond.var is None or cond.negated:
            continue
        rendezvous = [
            s for s in stmt.then_body if isinstance(s, (Send, Accept))
        ]
        nested = any(
            isinstance(s, (Send, Accept))
            for s in walk_statements(stmt.then_body)
        )
        else_rendezvous = any(
            isinstance(s, (Send, Accept))
            for s in walk_statements(stmt.else_body)
        )
        if len(rendezvous) != 1 or else_rendezvous:
            continue
        if nested and rendezvous[0] not in stmt.then_body:
            continue
        found.append(
            _GuardedRendezvous(
                task=task.name,
                guard_var=cond.var,
                conditional=stmt,
                rendezvous=rendezvous[0],
                top_index=idx,
            )
        )
    return found


def _communicates_guard(
    sender: TaskDecl,
    accepter: TaskDecl,
    g_send: _GuardedRendezvous,
    g_acc: _GuardedRendezvous,
) -> bool:
    """Does an earlier rendezvous pass the guard value sender→accepter?

    We require an ``accept s (v')`` in the accepter before its
    conditional, a matching ``send accepter.s`` in the sender before its
    conditional, single definition of each guard variable, and no
    reassignment between communication and use.
    """
    # The accepter's guard variable must be bound by exactly one accept.
    binding: Optional[Accept] = None
    for stmt in accepter.body[: g_acc.top_index]:
        if isinstance(stmt, Accept) and stmt.binds == g_acc.guard_var:
            binding = stmt
    if binding is None:
        return False
    if _bind_count(accepter.body, g_acc.guard_var) != 1:
        return False
    if _assignment_count(accepter.body, g_acc.guard_var) != 0:
        return False
    # The sender must send that signal before its own conditional and
    # define its guard variable exactly once (before the send).
    sends_before = [
        stmt
        for stmt in sender.body[: g_send.top_index]
        if isinstance(stmt, Send)
        and stmt.task == accepter.name
        and stmt.message == binding.message
    ]
    if not sends_before:
        return False
    if _assignment_count(sender.body, g_send.guard_var) > 1:
        return False
    return True


def find_codependent_pairs(program: Program) -> List[CodependentPair]:
    """Detect Figure-5(d) co-dependent conditional rendezvous pairs."""
    counts = collect_signals(program)
    tasks = {t.name: t for t in program.tasks}
    guarded: Dict[str, List[_GuardedRendezvous]] = {
        t.name: _guarded_rendezvous(t) for t in program.tasks
    }
    pairs: List[CodependentPair] = []
    for task in program.tasks:
        for g in guarded[task.name]:
            stmt = g.rendezvous
            if not isinstance(stmt, Send):
                continue
            signal = Signal(stmt.task, stmt.message)
            if counts.get(signal) != (1, 1):
                continue  # pairing must be unambiguous
            target = tasks.get(stmt.task)
            if target is None:
                continue
            for g_acc in guarded[target.name]:
                acc = g_acc.rendezvous
                if not isinstance(acc, Accept) or acc.message != stmt.message:
                    continue
                if _communicates_guard(task, target, g, g_acc):
                    pairs.append(
                        CodependentPair(
                            signal=signal,
                            sender_task=task.name,
                            accepter_task=target.name,
                            guard_var_sender=g.guard_var,
                            guard_var_accepter=g_acc.guard_var,
                        )
                    )
    return pairs


def _hoist(task: TaskDecl, signal: Signal) -> TaskDecl:
    """Move the guarded rendezvous of ``signal`` out of its conditional."""
    body: List[Statement] = []
    for stmt in task.body:
        if isinstance(stmt, If):
            kept: List[Statement] = []
            hoisted: Optional[Statement] = None
            for inner in stmt.then_body:
                is_match = (
                    isinstance(inner, Send)
                    and Signal(inner.task, inner.message) == signal
                ) or (
                    isinstance(inner, Accept)
                    and Signal(task.name, inner.message) == signal
                )
                if is_match and hoisted is None:
                    hoisted = inner
                else:
                    kept.append(inner)
            if hoisted is not None:
                if kept or stmt.else_body:
                    body.append(
                        If(
                            condition=stmt.condition,
                            then_body=tuple(kept),
                            else_body=stmt.else_body,
                        )
                    )
                body.append(hoisted)
                continue
        body.append(stmt)
    return task.with_body(tuple(body))


def factor_codependent(
    program: Program,
) -> Tuple[Program, List[CodependentPair]]:
    """Hoist every detected co-dependent pair out of its conditionals.

    Returns the transformed program and the pairs factored.  When no
    pair is found the program is returned unchanged.
    """
    pairs = find_codependent_pairs(program)
    if not pairs:
        return program, []
    tasks = {t.name: t for t in program.tasks}
    for pair in pairs:
        tasks[pair.sender_task] = _hoist(tasks[pair.sender_task], pair.signal)
        tasks[pair.accepter_task] = _hoist(
            tasks[pair.accepter_task], pair.signal
        )
    return (
        program.with_tasks(tuple(tasks[t.name] for t in program.tasks)),
        pairs,
    )

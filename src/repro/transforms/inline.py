"""Procedure inlining — the interprocedural extension (paper §2).

The paper's model assumes "all rendezvous occur in the main procedure
of the task" and names an interprocedural model as future work.  We
support non-recursive procedures by inlining every ``call p`` with the
body of ``p`` (bottom-up over the call graph), after which the
intraprocedural machinery applies unchanged.  This is exact for the
synchronization behaviour: an internal (non-entry) Ada procedure call
transfers control within the same task, so its rendezvous behave as if
written inline.

Recursion is rejected: a recursive rendezvous-carrying procedure has no
finite sync graph (the paper's representation requires a statically
bounded set of rendezvous points per task).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..errors import ValidationError
from ..lang.ast_nodes import (
    Call,
    For,
    If,
    ProcDecl,
    Program,
    Statement,
    TaskDecl,
    While,
)

__all__ = ["has_calls", "inline_procedures", "call_graph"]


def _body_has_calls(body: Sequence[Statement]) -> bool:
    for stmt in body:
        if isinstance(stmt, Call):
            return True
        if isinstance(stmt, If):
            if _body_has_calls(stmt.then_body) or _body_has_calls(
                stmt.else_body
            ):
                return True
        elif isinstance(stmt, (While, For)):
            if _body_has_calls(stmt.body):
                return True
    return False


def has_calls(program: Program) -> bool:
    """True iff any task or procedure body contains a ``call``."""
    return any(_body_has_calls(t.body) for t in program.tasks) or any(
        _body_has_calls(p.body) for p in program.procedures
    )


def call_graph(program: Program) -> Dict[str, Set[str]]:
    """procedure name → set of procedures it calls (directly)."""

    def calls_in(body: Sequence[Statement]) -> Set[str]:
        found: Set[str] = set()
        for stmt in body:
            if isinstance(stmt, Call):
                found.add(stmt.name)
            elif isinstance(stmt, If):
                found |= calls_in(stmt.then_body)
                found |= calls_in(stmt.else_body)
            elif isinstance(stmt, (While, For)):
                found |= calls_in(stmt.body)
        return found

    return {p.name: calls_in(p.body) for p in program.procedures}


def _check_acyclic(graph: Dict[str, Set[str]]) -> None:
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}

    def visit(name: str, trail: List[str]) -> None:
        color[name] = GRAY
        for callee in graph.get(name, ()):  # unknown callees caught later
            if callee not in color:
                continue
            if color[callee] == GRAY:
                cycle = " -> ".join(trail + [name, callee])
                raise ValidationError(
                    f"recursive procedure call chain: {cycle}; recursion "
                    "has no finite sync graph and cannot be inlined"
                )
            if color[callee] == WHITE:
                visit(callee, trail + [name])
        color[name] = BLACK

    for name in graph:
        if color[name] == WHITE:
            visit(name, [])


def _inline_body(
    body: Sequence[Statement],
    procedures: Dict[str, Tuple[Statement, ...]],
) -> Tuple[Statement, ...]:
    out: List[Statement] = []
    for stmt in body:
        if isinstance(stmt, Call):
            try:
                out.extend(procedures[stmt.name])
            except KeyError:
                raise ValidationError(
                    f"call to unknown procedure {stmt.name!r}"
                ) from None
        elif isinstance(stmt, If):
            out.append(
                If(
                    condition=stmt.condition,
                    then_body=_inline_body(stmt.then_body, procedures),
                    else_body=_inline_body(stmt.else_body, procedures),
                )
            )
        elif isinstance(stmt, While):
            out.append(
                While(
                    condition=stmt.condition,
                    body=_inline_body(stmt.body, procedures),
                )
            )
        elif isinstance(stmt, For):
            out.append(
                For(
                    var=stmt.var,
                    lower=stmt.lower,
                    upper=stmt.upper,
                    body=_inline_body(stmt.body, procedures),
                )
            )
        else:
            out.append(stmt)
    return tuple(out)


def inline_procedures(program: Program) -> Tuple[Program, bool]:
    """Inline every procedure call; returns ``(program', changed)``.

    The result has no procedures and no ``call`` statements.  Raises
    :class:`~repro.errors.ValidationError` on recursion or calls to
    unknown procedures.
    """
    if not program.procedures and not has_calls(program):
        return program, False
    graph = call_graph(program)
    _check_acyclic(graph)

    # Resolve procedures bottom-up: repeatedly inline until every
    # procedure body is call-free (terminates because the call graph is
    # acyclic).
    resolved: Dict[str, Tuple[Statement, ...]] = {
        p.name: p.body for p in program.procedures
    }
    pending = {
        name for name, body in resolved.items() if _body_has_calls(body)
    }
    while pending:
        progress = False
        for name in sorted(pending):
            callees = graph[name]
            if any(c in pending for c in callees if c in resolved):
                continue
            resolved[name] = _inline_body(resolved[name], resolved)
            pending.discard(name)
            progress = True
        if not progress:  # pragma: no cover - acyclicity guarantees progress
            raise ValidationError("procedure inlining did not converge")

    tasks = tuple(
        TaskDecl(name=t.name, body=_inline_body(t.body, resolved))
        for t in program.tasks
    )
    return Program(name=program.name, tasks=tasks, procedures=()), True

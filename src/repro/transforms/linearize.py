"""Linearized executions ``P_E`` (paper, Section 3.1.3).

A linearized version of ``P`` fixes every branch decision and loop
iteration count, yielding a branch-free program that executes nodes in
the same per-task order as some execution ``E``.  Any sync anomaly of
``P`` exists in some ``P_E`` (and Lemma 4 characterizes stall freedom
via balance over all feasible ``P_E``).

These enumerators are exponential by nature and exist for testing and
for the exact side of the stall benchmarks: they are deliberately
bounded.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, List, Sequence, Tuple

from ..lang.ast_nodes import (
    Accept,
    Assign,
    For,
    If,
    Null,
    Program,
    Send,
    Statement,
    TaskDecl,
    While,
)

__all__ = ["linearize_task_bodies", "linearizations", "count_linearizations"]


def _body_variants(
    body: Sequence[Statement], max_loop_iters: int
) -> List[Tuple[Statement, ...]]:
    """All linearized variants of one statement sequence."""
    per_stmt: List[List[Tuple[Statement, ...]]] = []
    for stmt in body:
        if isinstance(stmt, If):
            choices = _body_variants(stmt.then_body, max_loop_iters) + \
                _body_variants(stmt.else_body, max_loop_iters)
            per_stmt.append(choices)
        elif isinstance(stmt, While):
            inner = _body_variants(stmt.body, max_loop_iters)
            choices = [()]
            for iters in range(1, max_loop_iters + 1):
                for combo in product(inner, repeat=iters):
                    flattened: Tuple[Statement, ...] = ()
                    for chunk in combo:
                        flattened += chunk
                    choices.append(flattened)
            per_stmt.append(choices)
        elif isinstance(stmt, For):
            inner = _body_variants(stmt.body, max_loop_iters)
            iters = stmt.trip_count
            choices = []
            for combo in product(inner, repeat=iters):
                flattened = ()
                for chunk in combo:
                    flattened += chunk
                choices.append(flattened)
            per_stmt.append(choices or [()])
        else:
            per_stmt.append([(stmt,)])
    variants: List[Tuple[Statement, ...]] = []
    for combo in product(*per_stmt) if per_stmt else [()]:
        seq: Tuple[Statement, ...] = ()
        for chunk in combo:
            seq += chunk
        variants.append(seq)
    return variants


def linearize_task_bodies(
    task: TaskDecl, max_loop_iters: int = 2
) -> List[Tuple[Statement, ...]]:
    """All linearized bodies of one task (branch-free sequences)."""
    return _body_variants(task.body, max_loop_iters)


def count_linearizations(program: Program, max_loop_iters: int = 2) -> int:
    """Number of linearized programs (without materializing them)."""
    total = 1
    for task in program.tasks:
        total *= len(linearize_task_bodies(task, max_loop_iters))
    return total


def linearizations(
    program: Program,
    max_loop_iters: int = 2,
    limit: int = 10_000,
) -> Iterator[Program]:
    """Enumerate linearized programs ``P_E``; stops after ``limit``.

    Each yielded program is branch- and loop-free (Lemma 3 applies to
    it directly).  The combinatorial explosion this enumeration suffers
    is the paper's argument for why exact stall certification is
    impractical.
    """
    per_task = [
        linearize_task_bodies(task, max_loop_iters) for task in program.tasks
    ]
    emitted = 0
    for combo in product(*per_task):
        if emitted >= limit:
            return
        tasks = tuple(
            TaskDecl(name=task.name, body=body)
            for task, body in zip(program.tasks, combo)
        )
        yield Program(name=f"{program.name}_lin{emitted}", tasks=tasks)
        emitted += 1

"""Anomaly-preserving source transforms (paper §3.1.3–3.1.4, §5.1)."""

from .branch_merge import merge_branch_rendezvous
from .inline import call_graph, has_calls, inline_procedures
from .codependent import (
    CodependentPair,
    factor_codependent,
    find_codependent_pairs,
)
from .linearize import (
    count_linearizations,
    linearizations,
    linearize_task_bodies,
)
from .unroll import (
    has_approximated_loops,
    has_loops,
    remove_loops,
    unroll_body,
)

__all__ = [
    "CodependentPair",
    "count_linearizations",
    "factor_codependent",
    "find_codependent_pairs",
    "call_graph",
    "has_calls",
    "has_approximated_loops",
    "has_loops",
    "inline_procedures",
    "linearizations",
    "linearize_task_bodies",
    "merge_branch_rendezvous",
    "remove_loops",
    "unroll_body",
]

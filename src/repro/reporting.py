"""Structured serialization of analysis results.

Every report type becomes a plain JSON-compatible dict with a stable
schema, so downstream tooling (CI gates, dashboards, diffing between
runs) can consume analysis output without touching library objects.
The CLI's ``--json`` output is built from these functions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

import json

from .analysis.confirm import ConfirmedReport
from .analysis.results import DeadlockEvidence, DeadlockReport, StallReport
from .api import AnalysisResult
from .interp.runtime import SimulationSummary
from .lang.ast_nodes import Program
from .lang.validate import ValidationReport
from .waves.witness import AnomalyWitness

if TYPE_CHECKING:  # pragma: no cover
    from .repair.model import RepairReport

__all__ = [
    "render_json",
    "deadlock_report_to_dict",
    "stall_report_to_dict",
    "validation_to_dict",
    "simulation_to_dict",
    "witness_to_dict",
    "confirmation_to_dict",
    "repair_report_to_dict",
    "analysis_result_to_dict",
    "summary_result_to_dict",
]

# 2: added optional top-level "metrics" (repro.obs snapshot: counters,
#    gauges, histograms, span_seconds, spans); graph metrics from
#    --stats merge into the same key.
# 3: validation findings became structured diagnostics — "validation"
#    gained a "diagnostics" list (rule id, severity, span, task,
#    related); the "warnings" string list is kept, derived from them.
#    Lint mode has its own payload (see repro.lint.output.lint_to_dict).
# 4: optional top-level "repair" (repro.repair.RepairReport: certified
#    fixes with kind/description/certifier/diff, generation and
#    rejection counters); deadlock stats may carry
#    "unroll_approximated" / "explored_pre_unroll_graph" from the
#    exact-path loop-faithfulness fix.
SCHEMA_VERSION = 4


def render_json(payload: Dict[str, Any]) -> str:
    """The canonical JSON rendering of a report payload.

    One definition of the output format (two-space indent, default
    separators, no trailing newline) shared by the CLI, the protocol
    tests, and clients of :mod:`repro.server` — the daemon ships the
    same payload dicts compactly, and re-rendering them through this
    function reproduces the one-shot CLI's stdout byte for byte.
    """
    return json.dumps(payload, indent=2)


def _evidence_to_dict(evidence: DeadlockEvidence) -> Dict[str, Any]:
    return {
        "head": str(evidence.head) if evidence.head is not None else None,
        "tail": str(evidence.tail) if evidence.tail is not None else None,
        "tasks": sorted(evidence.tasks),
        "component": sorted(str(n) for n in evidence.component),
    }


def deadlock_report_to_dict(report: DeadlockReport) -> Dict[str, Any]:
    return {
        "verdict": report.verdict,
        "algorithm": report.algorithm,
        "deadlock_free": report.deadlock_free,
        "loops_transformed": report.loops_transformed,
        "heads_examined": report.heads_examined,
        "evidence": [_evidence_to_dict(ev) for ev in report.evidence],
        "stats": dict(report.stats),
    }


def stall_report_to_dict(report: StallReport) -> Dict[str, Any]:
    return {
        "verdict": report.verdict,
        "method": report.method,
        "stall_free": report.stall_free,
        "imbalanced": {
            str(sig): {"sends": sends, "accepts": accepts}
            for sig, (sends, accepts) in report.imbalanced.items()
        },
        "transforms_applied": list(report.transforms_applied),
        "notes": list(report.notes),
    }


def validation_to_dict(report: ValidationReport) -> Dict[str, Any]:
    return {
        "program": report.program_name,
        "tasks": list(report.task_names),
        "signals": [str(sig) for sig in report.signals],
        "fully_matched": report.fully_matched,
        "unmatched_sends": [str(s) for s in report.unmatched_sends],
        "unmatched_accepts": [str(s) for s in report.unmatched_accepts],
        # derived directly from diagnostics to keep the legacy key
        # without tripping the ValidationReport.warnings deprecation
        "warnings": [d.message for d in report.diagnostics],
        "diagnostics": [d.to_dict() for d in report.diagnostics],
    }


def simulation_to_dict(summary: SimulationSummary) -> Dict[str, Any]:
    return {
        "runs": summary.runs,
        "completed": summary.completed,
        "stuck": summary.stuck,
        "deadlock_runs": summary.deadlock_runs,
        "stall_runs": summary.stall_runs,
        "deadlocked_tasks": dict(summary.observed_deadlock_tasks),
        "stalled_tasks": dict(summary.observed_stall_tasks),
    }


def witness_to_dict(witness: AnomalyWitness) -> Dict[str, Any]:
    return {
        "kind": "deadlock" if witness.is_deadlock else "stall",
        "steps": len(witness.schedule),
        "initial_wave": [str(n) for n in witness.initial.positions],
        "schedule": [
            {"sender_side": str(r), "accepter_side": str(s)}
            for r, s in witness.schedule
        ],
        "stuck_wave": [
            str(n) for n in witness.classification.wave.positions
        ],
        "stall_nodes": [str(n) for n in witness.classification.stalls],
        "deadlock_sets": [
            sorted(str(n) for n in d)
            for d in witness.classification.deadlocks
        ],
    }


def repair_report_to_dict(
    report: "RepairReport", original: Optional[Program] = None
) -> Dict[str, Any]:
    """Serialize one repair run; pass the original program to include
    per-fix changed-task lists and unified diffs."""
    from .repair.model import changed_tasks, unified_fix_diff

    fixes = []
    for fix in report.fixes:
        entry: Dict[str, Any] = {
            "kind": fix.kind,
            "description": fix.description,
            "certified_by": fix.certified_by,
            "stall_verdict": fix.stall_verdict,
            "introduced_stall": fix.introduced_stall,
            "edit_size": fix.candidate.edit_size,
            "task": fix.candidate.task,
            "spans": [
                {
                    "line": span.line,
                    "column": span.column,
                    "end_line": span.end_line,
                    "end_column": span.end_column,
                }
                for span in fix.candidate.spans
            ],
            "source": fix.source,
        }
        if original is not None:
            entry["changed_tasks"] = changed_tasks(
                original, fix.candidate.program
            )
            entry["diff"] = unified_fix_diff(original, fix)
        fixes.append(entry)
    return {
        "program": report.program_name,
        "original_verdict": report.original_verdict,
        "original_stall_verdict": report.original_stall_verdict,
        "algorithm": report.algorithm,
        "candidates_generated": report.candidates_generated,
        "candidates_rejected": report.candidates_rejected,
        "fixed": report.fixed,
        "fixes": fixes,
        "stats": dict(report.stats),
        "wall_time_s": round(report.wall_time_s, 6),
    }


def confirmation_to_dict(confirmed: ConfirmedReport) -> Dict[str, Any]:
    return {
        "outcome": confirmed.outcome,
        "final_verdict": confirmed.final_verdict,
        "states_budget": confirmed.states_budget,
        "witness": (
            witness_to_dict(confirmed.witness)
            if confirmed.witness is not None
            else None
        ),
    }


def analysis_result_to_dict(
    result: AnalysisResult,
    simulation: Optional[SimulationSummary] = None,
    confirmation: Optional[ConfirmedReport] = None,
    metrics: Optional[Dict[str, Any]] = None,
    repair: Optional["RepairReport"] = None,
) -> Dict[str, Any]:
    """The full CLI/CI payload for one analysis run.

    ``metrics`` is an observability snapshot (see
    :func:`repro.obs.export.session_to_dict`); the CLI passes one when
    ``--trace`` or ``--metrics-out`` enabled the obs layer.  ``repair``
    is the :class:`~repro.repair.RepairReport` from ``--suggest-fixes``.
    """
    payload: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "program": result.program.name,
        "tasks": list(result.program.task_names),
        "procedures": list(result.program.procedure_names),
        "loops_transformed": result.loops_transformed,
        "sync_graph": result.sync_graph.stats(),
        "deadlock": deadlock_report_to_dict(result.deadlock),
        "stall": stall_report_to_dict(result.stall),
        "validation": validation_to_dict(result.validation),
    }
    if simulation is not None:
        payload["simulation"] = simulation_to_dict(simulation)
    if confirmation is not None:
        payload["confirmation"] = confirmation_to_dict(confirmation)
    if repair is not None:
        payload["repair"] = repair_report_to_dict(
            repair, original=result.program
        )
    if metrics is not None:
        payload["metrics"] = metrics
    return payload


def summary_result_to_dict(result: AnalysisResult) -> Dict[str, Any]:
    """Compact per-program payload for batch (JSONL) records.

    A strict subset of :func:`analysis_result_to_dict`: program
    identity and verdicts, without the validation/evidence detail —
    small enough to emit once per line for thousands of items.
    """
    return {
        "program": result.program.name,
        "tasks": list(result.program.task_names),
        "loops_transformed": result.loops_transformed,
        "deadlock": {
            "verdict": result.deadlock.verdict,
            "algorithm": result.deadlock.algorithm,
            "deadlock_free": result.deadlock.deadlock_free,
            "evidence_count": len(result.deadlock.evidence),
        },
        "stall": {
            "verdict": result.stall.verdict,
            "method": result.stall.method,
            "stall_free": result.stall.stall_free,
        },
    }

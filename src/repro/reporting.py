"""Structured serialization of analysis results.

Every report type becomes a plain JSON-compatible dict with a stable
schema, so downstream tooling (CI gates, dashboards, diffing between
runs) can consume analysis output without touching library objects.
The CLI's ``--json`` output is built from these functions.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .analysis.confirm import ConfirmedReport
from .analysis.results import DeadlockEvidence, DeadlockReport, StallReport
from .api import AnalysisResult
from .interp.runtime import SimulationSummary
from .lang.validate import ValidationReport
from .waves.witness import AnomalyWitness

__all__ = [
    "deadlock_report_to_dict",
    "stall_report_to_dict",
    "validation_to_dict",
    "simulation_to_dict",
    "witness_to_dict",
    "confirmation_to_dict",
    "analysis_result_to_dict",
    "summary_result_to_dict",
]

# 2: added optional top-level "metrics" (repro.obs snapshot: counters,
#    gauges, histograms, span_seconds, spans); graph metrics from
#    --stats merge into the same key.
# 3: validation findings became structured diagnostics — "validation"
#    gained a "diagnostics" list (rule id, severity, span, task,
#    related); the "warnings" string list is kept, derived from them.
#    Lint mode has its own payload (see repro.lint.output.lint_to_dict).
SCHEMA_VERSION = 3


def _evidence_to_dict(evidence: DeadlockEvidence) -> Dict[str, Any]:
    return {
        "head": str(evidence.head) if evidence.head is not None else None,
        "tail": str(evidence.tail) if evidence.tail is not None else None,
        "tasks": sorted(evidence.tasks),
        "component": sorted(str(n) for n in evidence.component),
    }


def deadlock_report_to_dict(report: DeadlockReport) -> Dict[str, Any]:
    return {
        "verdict": report.verdict,
        "algorithm": report.algorithm,
        "deadlock_free": report.deadlock_free,
        "loops_transformed": report.loops_transformed,
        "heads_examined": report.heads_examined,
        "evidence": [_evidence_to_dict(ev) for ev in report.evidence],
        "stats": dict(report.stats),
    }


def stall_report_to_dict(report: StallReport) -> Dict[str, Any]:
    return {
        "verdict": report.verdict,
        "method": report.method,
        "stall_free": report.stall_free,
        "imbalanced": {
            str(sig): {"sends": sends, "accepts": accepts}
            for sig, (sends, accepts) in report.imbalanced.items()
        },
        "transforms_applied": list(report.transforms_applied),
        "notes": list(report.notes),
    }


def validation_to_dict(report: ValidationReport) -> Dict[str, Any]:
    return {
        "program": report.program_name,
        "tasks": list(report.task_names),
        "signals": [str(sig) for sig in report.signals],
        "fully_matched": report.fully_matched,
        "unmatched_sends": [str(s) for s in report.unmatched_sends],
        "unmatched_accepts": [str(s) for s in report.unmatched_accepts],
        # derived directly from diagnostics to keep the legacy key
        # without tripping the ValidationReport.warnings deprecation
        "warnings": [d.message for d in report.diagnostics],
        "diagnostics": [d.to_dict() for d in report.diagnostics],
    }


def simulation_to_dict(summary: SimulationSummary) -> Dict[str, Any]:
    return {
        "runs": summary.runs,
        "completed": summary.completed,
        "stuck": summary.stuck,
        "deadlock_runs": summary.deadlock_runs,
        "stall_runs": summary.stall_runs,
        "deadlocked_tasks": dict(summary.observed_deadlock_tasks),
        "stalled_tasks": dict(summary.observed_stall_tasks),
    }


def witness_to_dict(witness: AnomalyWitness) -> Dict[str, Any]:
    return {
        "kind": "deadlock" if witness.is_deadlock else "stall",
        "steps": len(witness.schedule),
        "initial_wave": [str(n) for n in witness.initial.positions],
        "schedule": [
            {"sender_side": str(r), "accepter_side": str(s)}
            for r, s in witness.schedule
        ],
        "stuck_wave": [
            str(n) for n in witness.classification.wave.positions
        ],
        "stall_nodes": [str(n) for n in witness.classification.stalls],
        "deadlock_sets": [
            sorted(str(n) for n in d)
            for d in witness.classification.deadlocks
        ],
    }


def confirmation_to_dict(confirmed: ConfirmedReport) -> Dict[str, Any]:
    return {
        "outcome": confirmed.outcome,
        "final_verdict": confirmed.final_verdict,
        "states_budget": confirmed.states_budget,
        "witness": (
            witness_to_dict(confirmed.witness)
            if confirmed.witness is not None
            else None
        ),
    }


def analysis_result_to_dict(
    result: AnalysisResult,
    simulation: Optional[SimulationSummary] = None,
    confirmation: Optional[ConfirmedReport] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The full CLI/CI payload for one analysis run.

    ``metrics`` is an observability snapshot (see
    :func:`repro.obs.export.session_to_dict`); the CLI passes one when
    ``--trace`` or ``--metrics-out`` enabled the obs layer.
    """
    payload: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "program": result.program.name,
        "tasks": list(result.program.task_names),
        "procedures": list(result.program.procedure_names),
        "loops_transformed": result.loops_transformed,
        "sync_graph": result.sync_graph.stats(),
        "deadlock": deadlock_report_to_dict(result.deadlock),
        "stall": stall_report_to_dict(result.stall),
        "validation": validation_to_dict(result.validation),
    }
    if simulation is not None:
        payload["simulation"] = simulation_to_dict(simulation)
    if confirmation is not None:
        payload["confirmation"] = confirmation_to_dict(confirmation)
    if metrics is not None:
        payload["metrics"] = metrics
    return payload


def summary_result_to_dict(result: AnalysisResult) -> Dict[str, Any]:
    """Compact per-program payload for batch (JSONL) records.

    A strict subset of :func:`analysis_result_to_dict`: program
    identity and verdicts, without the validation/evidence detail —
    small enough to emit once per line for thousands of items.
    """
    return {
        "program": result.program.name,
        "tasks": list(result.program.task_names),
        "loops_transformed": result.loops_transformed,
        "deadlock": {
            "verdict": result.deadlock.verdict,
            "algorithm": result.deadlock.algorithm,
            "deadlock_free": result.deadlock.deadlock_free,
            "evidence_count": len(result.deadlock.evidence),
        },
        "stall": {
            "verdict": result.stall.verdict,
            "method": result.stall.method,
            "stall_free": result.stall.stall_free,
        },
    }

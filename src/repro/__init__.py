"""repro — Static Infinite Wait Anomaly Detection in Polynomial Time.

A complete reimplementation of Masticola & Ryder (ICPP 1990): the sync
graph and cycle location graph representations, execution-wave
semantics, the naive and refined polynomial deadlock-certification
algorithms with all extensions, stall analysis with the Section-5.1
source transforms, the Lemma-1 loop-unroll transform, both Appendix-A
NP-hardness reductions, a concrete rendezvous interpreter, and
exhaustive exact baselines — plus the ADL tasking language they all
operate on.

Quick start::

    import repro

    result = repro.analyze('''
        program handshake;
        task t1 is begin send t2.hello; accept world; end;
        task t2 is begin accept hello; send t1.world; end;
    ''')
    print(result.describe())
"""

from .api import (
    ALGORITHMS,
    AnalysisResult,
    PreparedProgram,
    analyze,
    analyze_many,
    analyze_prepared,
    certify_deadlock_free,
    certify_stall_free,
    prepare,
)
from .errors import (
    AnalysisError,
    ExplorationLimitError,
    IrreducibleFlowError,
    LexError,
    ParseError,
    ReproError,
    SimulationError,
    ValidationError,
)
from .lang.ast_nodes import Program
from .lang.builder import ProgramBuilder
from .lang.parser import parse_program
from .lang.pretty import pretty

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AnalysisError",
    "AnalysisResult",
    "ExplorationLimitError",
    "IrreducibleFlowError",
    "LexError",
    "ParseError",
    "PreparedProgram",
    "Program",
    "ProgramBuilder",
    "ReproError",
    "SimulationError",
    "ValidationError",
    "__version__",
    "analyze",
    "analyze_many",
    "analyze_prepared",
    "certify_deadlock_free",
    "certify_stall_free",
    "parse_program",
    "prepare",
    "pretty",
]

"""Lint rule registry, execution engine, and suppression handling.

A :class:`LintRule` bundles a stable id (``ADL0xx``), a kebab-case
name, a default severity, a one-line summary, and the paper grounding
for the check.  Rules register themselves with the :func:`lint_rule`
decorator at import time (:mod:`repro.lint.rules`); the engine runs
every registered rule (minus ``disable``/``select`` filters) over a
:class:`LintContext` and returns a :class:`LintResult` of
source-ordered diagnostics.

Expensive shared inputs — the inlined program, the sync graph, the CLG
— are computed lazily and at most once per run, and degrade to ``None``
when the program is too broken to build them (e.g. duplicate task
names), so structural rules still report on programs the analysis
pipeline would reject outright.

Suppressions are pre-scanned from source comments::

    send t2.orphan;   -- lint: disable=ADL001
    -- lint: disable=while-rendezvous
    while busy loop ... end loop;

A trailing comment suppresses matching diagnostics on its own line; a
comment alone on a line also covers the following line.  Rules can be
named by id (``ADL001``), by name (``unmatched-send``), or ``all``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .. import obs
from ..diagnostics import Diagnostic, Related, Severity
from ..errors import ReproError
from ..lang.ast_nodes import Program
from ..lang.validate import (
    collect_signals,
    unmatched_signal_diagnostics,
    validate_program,
)

__all__ = [
    "LintRule",
    "LintContext",
    "LintResult",
    "lint_rule",
    "all_rules",
    "get_rule",
    "run_lint",
    "scan_suppressions",
]


@dataclass(frozen=True)
class LintRule:
    """One registered check."""

    rule_id: str
    name: str
    severity: str
    summary: str
    paper_ref: str
    check: Callable[["LintContext", "LintRule"], Iterable[Diagnostic]]

    def diagnostic(
        self,
        message: str,
        span=None,
        task: Optional[str] = None,
        related: Sequence[Related] = (),
        severity: Optional[str] = None,
    ) -> Diagnostic:
        """A diagnostic pre-filled with this rule's id and severity."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=severity or self.severity,
            message=message,
            span=span,
            task=task,
            related=tuple(related),
        )


_REGISTRY: Dict[str, LintRule] = {}


def lint_rule(
    rule_id: str,
    name: str,
    severity: str,
    summary: str,
    paper_ref: str,
):
    """Class decorator-style registration for rule check functions."""

    def decorate(fn):
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        Severity.rank(severity)
        _REGISTRY[rule_id] = LintRule(
            rule_id=rule_id,
            name=name,
            severity=severity,
            summary=summary,
            paper_ref=paper_ref,
            check=fn,
        )
        return fn

    return decorate


def _ensure_rules_loaded() -> None:
    # Rules live in their own module to keep the engine importable from
    # rule code; importing it here registers everything on first use.
    from . import rules  # noqa: F401


def all_rules() -> Tuple[LintRule, ...]:
    """Every registered rule, ordered by rule id."""
    _ensure_rules_loaded()
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def get_rule(rule_id: str) -> LintRule:
    _ensure_rules_loaded()
    return _REGISTRY[rule_id]


class LintContext:
    """Shared, lazily computed inputs for one lint run."""

    def __init__(
        self,
        program: Program,
        source: Optional[str] = None,
        path: str = "<source>",
    ) -> None:
        self.program = program
        self.source = source
        self.path = path
        self._inlined: Optional[Program] = None
        self._inline_failed = False
        self._graph = None
        self._graph_built = False
        self._clg = None
        self._clg_built = False
        self._deadlock = None
        self._deadlock_built = False
        self._unmatched: Optional[Tuple[Diagnostic, ...]] = None
        self._counts = None

    @property
    def effective(self) -> Program:
        """The inlined program when inlining succeeds, else the raw one.

        Signal-count rules prefer this: an ``accept`` inside a shared
        procedure only gains its signal identity once inlined into a
        concrete task.  Leaf statements are shared by the inliner, so
        their source spans survive.
        """
        if self._inlined is None and not self._inline_failed:
            from ..transforms.inline import inline_procedures

            try:
                self._inlined, _ = inline_procedures(self.program)
            except ReproError:
                self._inline_failed = True
        return self._inlined if self._inlined is not None else self.program

    @property
    def signal_counts(self):
        """``{signal: (sends, accepts)}`` over the effective program."""
        if self._counts is None:
            self._counts = collect_signals(self.effective)
        return self._counts

    @property
    def unmatched_diagnostics(self) -> Tuple[Diagnostic, ...]:
        """Shared ADL001/ADL002 findings (also used by validation)."""
        if self._unmatched is None:
            self._unmatched = unmatched_signal_diagnostics(self.effective)
        return self._unmatched

    @property
    def analysis_graph(self):
        """Sync graph of the unrolled effective program, or ``None``
        when the program cannot reach the graph pipeline (validation
        errors, unresolved calls, ...)."""
        if not self._graph_built:
            self._graph_built = True
            from ..syncgraph.build import build_sync_graph
            from ..transforms.unroll import remove_loops

            effective = self.effective
            if self._inline_failed:
                # the fallback program still contains Call statements,
                # which have no CFG form
                self._graph = None
            else:
                try:
                    validate_program(effective)
                    unrolled, _ = remove_loops(effective)
                    self._graph = build_sync_graph(unrolled)
                except ReproError:
                    self._graph = None
        return self._graph

    @property
    def clg(self):
        """The cycle location graph of the unrolled program, or ``None``
        when the program cannot reach the graph pipeline."""
        if not self._clg_built:
            self._clg_built = True
            from ..syncgraph.clg import build_clg

            graph = self.analysis_graph
            self._clg = None if graph is None else build_clg(graph)
        return self._clg

    @property
    def deadlock(self):
        """The refined polynomial deadlock report, or ``None`` when the
        program cannot reach the analysis pipeline.  Shared by ADL012
        and any downstream consumer (e.g. SARIF fix attachment) so the
        analysis runs at most once per lint."""
        if not self._deadlock_built:
            self._deadlock_built = True
            from ..analysis.refined import refined_deadlock_analysis

            graph = self.analysis_graph
            if graph is not None:
                try:
                    self._deadlock = refined_deadlock_analysis(graph)
                except ReproError:
                    self._deadlock = None
        return self._deadlock


@dataclass
class LintResult:
    """Outcome of one lint run over one program."""

    path: str
    diagnostics: Tuple[Diagnostic, ...]
    suppressed: int = 0
    rules_run: Tuple[str, ...] = ()

    def counts(self) -> Dict[str, int]:
        out = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.NOTE: 0}
        for diag in self.diagnostics:
            out[diag.severity] += 1
        return out

    @property
    def rule_ids(self) -> Tuple[str, ...]:
        return tuple(sorted({d.rule_id for d in self.diagnostics}))

    def fails(self, threshold: str = Severity.ERROR) -> bool:
        """True when a diagnostic meets the ``--fail-on`` threshold."""
        return any(
            Severity.at_least(d.severity, threshold)
            for d in self.diagnostics
        )


_SUPPRESS_RE = re.compile(
    r"--\s*lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


def scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """``{line: {rule tokens}}`` from ``-- lint: disable=...`` comments.

    Tokens are lower-cased rule ids, rule names, or ``all``.  A comment
    with code before it covers its own line; a comment alone on a line
    covers that line *and* the next.
    """
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        tokens = {
            tok.strip().lower()
            for tok in match.group(1).split(",")
            if tok.strip()
        }
        suppressions.setdefault(lineno, set()).update(tokens)
        if not line[: match.start()].strip():
            suppressions.setdefault(lineno + 1, set()).update(tokens)
    return suppressions


def _rule_tokens(rule: LintRule) -> Set[str]:
    return {rule.rule_id.lower(), rule.name.lower(), "all"}


def _select_rules(
    disable: Sequence[str], select: Optional[Sequence[str]]
) -> Tuple[LintRule, ...]:
    disabled = {tok.lower() for tok in disable}
    selected = (
        None if select is None else {tok.lower() for tok in select}
    )
    known = set()
    chosen = []
    for rule in all_rules():
        tokens = {rule.rule_id.lower(), rule.name.lower()}
        known |= tokens
        if tokens & disabled:
            continue
        if selected is not None and not (tokens & selected):
            continue
        chosen.append(rule)
    unknown = (disabled | (selected or set())) - known
    if unknown:
        raise KeyError(
            f"unknown lint rule(s): {', '.join(sorted(unknown))}"
        )
    return tuple(chosen)


def run_lint(
    program: Program,
    source: Optional[str] = None,
    path: str = "<source>",
    disable: Sequence[str] = (),
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run every (selected) registered rule over ``program``.

    ``source`` enables comment suppressions and is otherwise optional —
    rules work from the AST and its attached spans.  The program is
    never mutated (statements are frozen dataclasses and rules only
    read).  Per-rule emission/suppression counters are recorded in
    :mod:`repro.obs` when a session is active.
    """
    rules = _select_rules(disable, select)
    suppressions = (
        scan_suppressions(source) if source is not None else {}
    )
    ctx = LintContext(program, source=source, path=path)
    found: List[Diagnostic] = []
    suppressed_count = 0
    with obs.span("lint.run", path=path, rules=len(rules)):
        for rule in rules:
            for diag in rule.check(ctx, rule):
                tokens = suppressions.get(diag.line)
                if tokens and tokens & _rule_tokens(rule):
                    suppressed_count += 1
                    if obs.is_enabled():
                        obs.counter(
                            "lint.suppressed", rule=rule.rule_id
                        ).inc()
                    continue
                found.append(diag)
                if obs.is_enabled():
                    obs.counter(
                        "lint.diagnostics", rule=rule.rule_id
                    ).inc()
    if obs.is_enabled():
        obs.counter("lint.runs").inc()
        obs.gauge("lint.last_run_diagnostics").set(len(found))
    return LintResult(
        path=path,
        diagnostics=tuple(sorted(found, key=Diagnostic.sort_key)),
        suppressed=suppressed_count,
        rules_run=tuple(r.rule_id for r in rules),
    )

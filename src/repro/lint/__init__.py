"""``repro.lint`` — a rule-based static lint engine for ADL programs.

The analysis pipeline answers *is this program anomaly-free*; the lint
engine answers *where, exactly, is this program suspicious* — as
source-located, machine-readable diagnostics, the way production
checkers for message-passing programs report (cf. MPI deadlock
checkers, X10 clocked-race checkers).  Rules are cheap, local,
paper-grounded screens (Lemma-3 stall counts, constraint-1 coupling
candidates, Lemma-1 precision hazards) that run without the full
certification pipeline.

Typical use::

    from repro.lint import lint_source

    result = lint_source(open("program.adl").read(), path="program.adl")
    for diag in result.diagnostics:
        print(diag.format("program.adl"))

or from the CLI: ``repro-analyze program.adl --lint --fail-on warning``.
Output backends live in :mod:`repro.lint.output` (text, JSON, SARIF
2.1.0); suppressions use ``-- lint: disable=RULE`` source comments.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..diagnostics import Diagnostic, Related, Severity
from ..lang.ast_nodes import Program
from ..lang.parser import parse_program
from .engine import (
    LintContext,
    LintResult,
    LintRule,
    all_rules,
    get_rule,
    lint_rule,
    run_lint,
    scan_suppressions,
)
from .output import (
    LINT_SCHEMA_VERSION,
    SARIF_VERSION,
    RepairAttachment,
    lint_to_dict,
    render_text,
    sarif_report,
    validate_sarif_shape,
)

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintResult",
    "LintRule",
    "LINT_SCHEMA_VERSION",
    "Related",
    "RepairAttachment",
    "SARIF_VERSION",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_program",
    "lint_rule",
    "lint_source",
    "lint_to_dict",
    "render_text",
    "run_lint",
    "sarif_report",
    "scan_suppressions",
    "validate_sarif_shape",
]


def lint_program(
    program: Program,
    source: Optional[str] = None,
    path: str = "<source>",
    disable: Sequence[str] = (),
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint an already-parsed :class:`Program` (alias of :func:`run_lint`)."""
    return run_lint(
        program, source=source, path=path, disable=disable, select=select
    )


def lint_source(
    source: str,
    path: str = "<source>",
    disable: Sequence[str] = (),
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Parse ADL source text and lint it.

    Raises :class:`~repro.errors.LexError` /
    :class:`~repro.errors.ParseError` on malformed input — lint rules
    need a syntax tree; syntax errors stay the parser's.
    """
    program = parse_program(source)
    return run_lint(
        program, source=source, path=path, disable=disable, select=select
    )

"""Corpus self-check: lint every bundled ADL program, validate SARIF.

Run with ``python -m repro.lint.selfcheck``.  Exit status 0 means:

* every program in the analysis corpus and the lint showcase corpus
  lints without crashing;
* each showcase program triggers exactly the rule ids its manifest
  expects (no more, no less);
* at least eight distinct rule ids fire across the whole corpus;
* the combined SARIF 2.1.0 report passes the structural validator.

This doubles as the CI smoke job: it exercises lexer spans, the rule
registry, suppressions, and the SARIF backend end to end without any
test-framework dependency.
"""

from __future__ import annotations

import sys
from typing import List

from ..workloads.adl_corpus import adl_corpus, lint_corpus
from .engine import LintResult, run_lint
from .output import sarif_report, validate_sarif_shape

MIN_DISTINCT_RULES = 8


def main() -> int:
    problems: List[str] = []
    results: List[LintResult] = []
    fired = set()

    for entry in adl_corpus().values():
        result = run_lint(
            entry.program, source=entry.source, path=f"{entry.name}.adl"
        )
        results.append(result)
        fired.update(result.rule_ids)

    for entry in lint_corpus().values():
        result = run_lint(
            entry.program, source=entry.source, path=f"{entry.name}.adl"
        )
        results.append(result)
        fired.update(result.rule_ids)
        expected = set(entry.expect_rules)
        got = set(result.rule_ids)
        if got != expected:
            problems.append(
                f"{entry.name}: expected rules {sorted(expected)}, "
                f"got {sorted(got)}"
            )

    if len(fired) < MIN_DISTINCT_RULES:
        problems.append(
            f"only {len(fired)} distinct rule ids fired across the corpus "
            f"({sorted(fired)}); need >= {MIN_DISTINCT_RULES}"
        )

    doc = sarif_report(results)
    problems.extend(validate_sarif_shape(doc))

    total = sum(len(r.diagnostics) for r in results)
    suppressed = sum(r.suppressed for r in results)
    print(
        f"linted {len(results)} programs: {total} diagnostic(s), "
        f"{suppressed} suppressed, {len(fired)} distinct rule(s): "
        f"{', '.join(sorted(fired))}"
    )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("selfcheck OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Lint output backends: human-readable text, JSON, and SARIF 2.1.0.

The SARIF backend emits one ``run`` with the full rule catalog in
``tool.driver.rules`` (ids, names, summaries, default levels, paper
references in ``help.text``) and one ``result`` per diagnostic with a
``physicalLocation`` region, so the output loads in any SARIF viewer
(GitHub code scanning, VS Code SARIF viewer, ...).
:func:`validate_sarif_shape` checks the structural contract and is used
by the CI self-check and the test suite.

Certified repairs (:mod:`repro.repair`) ride along as SARIF ``fix``
objects: pass :func:`sarif_report` a ``repairs`` mapping and every
deadlock-anchored diagnostic (ADL010/ADL012) for that artifact gains
``fixes`` entries whose replacements rewrite the changed task
declarations in place (``TaskDecl.decl_loc`` regions), falling back to
a whole-file replacement when the program carries no spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..diagnostics import Severity
from ..lang.ast_nodes import Program
from ..lang.source import Span
from .engine import LintResult, all_rules

__all__ = [
    "LINT_SCHEMA_VERSION",
    "SARIF_VERSION",
    "RepairAttachment",
    "render_text",
    "lint_to_dict",
    "sarif_report",
    "validate_sarif_shape",
]

# Rule ids whose SARIF results carry the certified fixes: the
# constraint-1 candidate cycle (ADL010) and the full conviction
# (ADL012) are the diagnostics a deadlock repair actually discharges.
FIX_ANCHOR_RULES = ("ADL010", "ADL012")

# At most this many fixes are attached per diagnostic (they arrive
# ranked best-first from repro.repair.rank_fixes).
MAX_SARIF_FIXES = 3

# 1: initial lint JSON payload (path, diagnostics, summary, rules_run).
LINT_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)


def render_text(result: LintResult, verbose_related: bool = True) -> str:
    """GCC-style ``file:line:col: severity: message [id]`` lines."""
    lines: List[str] = []
    for diag in result.diagnostics:
        lines.append(diag.format(result.path))
        if verbose_related:
            for rel in diag.related:
                span = rel.span
                where = (
                    f"{result.path}:{span.line}:{span.column}"
                    if span is not None
                    else result.path
                )
                lines.append(f"    {where}: note: {rel.message}")
    counts = result.counts()
    summary = (
        f"{counts[Severity.ERROR]} error(s), "
        f"{counts[Severity.WARNING]} warning(s), "
        f"{counts[Severity.NOTE]} note(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    lines.append(f"{result.path}: {summary}")
    return "\n".join(lines)


def lint_to_dict(result: LintResult) -> Dict[str, Any]:
    """Machine-readable payload for one lint run (CLI ``--lint --json``)."""
    counts = result.counts()
    return {
        "lint_schema_version": LINT_SCHEMA_VERSION,
        "path": result.path,
        "diagnostics": [d.to_dict() for d in result.diagnostics],
        "summary": {
            "errors": counts[Severity.ERROR],
            "warnings": counts[Severity.WARNING],
            "notes": counts[Severity.NOTE],
            "suppressed": result.suppressed,
        },
        "rules_run": list(result.rules_run),
    }


def _region(span: Optional[Span]) -> Dict[str, int]:
    if span is None:
        # SARIF regions require 1-based coordinates; span-less
        # diagnostics anchor to the start of the artifact.
        return {"startLine": 1, "startColumn": 1}
    return {
        "startLine": span.line,
        "startColumn": span.column,
        "endLine": span.end_line,
        "endColumn": span.end_column,
    }


def _location(path: str, span: Optional[Span]) -> Dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": _artifact_uri(path)},
            "region": _region(span),
        }
    }


def _artifact_uri(path: str) -> str:
    # "<source>" / "-" are in-memory inputs with no file to point at.
    if path in ("<source>", "-", ""):
        return "stdin"
    return path.replace("\\", "/")


@dataclass
class RepairAttachment:
    """Certified repairs for one linted artifact.

    ``program`` is the parsed original (span provenance for
    ``decl_loc`` replacement regions), ``report`` a
    :class:`repro.repair.RepairReport`, ``source`` the original text —
    required only for the whole-file fallback replacement used when the
    program carries no declaration spans.
    """

    program: Program
    report: Any
    source: Optional[str] = None


def _whole_file_region(source: str) -> Dict[str, int]:
    lines = source.splitlines()
    return {
        "startLine": 1,
        "startColumn": 1,
        "endLine": max(1, len(lines)),
        "endColumn": len(lines[-1]) + 1 if lines else 1,
    }


def _fix_replacements(
    attachment: RepairAttachment, fix: Any
) -> Optional[List[Dict[str, Any]]]:
    """Per-changed-task replacements for one certified fix, or ``None``
    when the fix cannot be expressed (no spans and no source text)."""
    from ..lang.pretty import pretty_task
    from ..repair.model import changed_tasks

    original = attachment.program
    repaired = fix.candidate.program
    originals = {t.name: t for t in original.tasks}
    repaired_by_name = {t.name: t for t in repaired.tasks}
    replacements: List[Dict[str, Any]] = []
    for name in changed_tasks(original, repaired):
        decl = originals.get(name)
        decl_loc = None if decl is None else decl.decl_loc
        if decl_loc is None:
            # Span-less program (built programmatically): fall back to
            # replacing the whole artifact with the repaired source.
            if attachment.source is None:
                return None
            return [
                {
                    "deletedRegion": _whole_file_region(attachment.source),
                    "insertedContent": {"text": fix.source},
                }
            ]
        after = repaired_by_name.get(name)
        replacements.append(
            {
                "deletedRegion": _region(decl_loc),
                "insertedContent": {
                    "text": "" if after is None else pretty_task(after)
                },
            }
        )
    return replacements or None


def _sarif_fixes(
    path: str, attachment: RepairAttachment
) -> List[Dict[str, Any]]:
    fixes: List[Dict[str, Any]] = []
    for fix in attachment.report.fixes[:MAX_SARIF_FIXES]:
        replacements = _fix_replacements(attachment, fix)
        if replacements is None:
            continue
        stall = " [introduces a stall]" if fix.introduced_stall else ""
        fixes.append(
            {
                "description": {
                    "text": (
                        f"[{fix.kind}] {fix.description} "
                        f"(certified by {fix.certified_by}){stall}"
                    )
                },
                "artifactChanges": [
                    {
                        "artifactLocation": {"uri": _artifact_uri(path)},
                        "replacements": replacements,
                    }
                ],
            }
        )
    return fixes


def sarif_report(
    results: Sequence[LintResult],
    repairs: Optional[Mapping[str, RepairAttachment]] = None,
) -> Dict[str, Any]:
    """One SARIF 2.1.0 document covering one or more lint runs.

    ``repairs`` maps a :attr:`LintResult.path` to the certified repairs
    for that artifact; its fixes are attached to every ADL010/ADL012
    result of the matching artifact (see :data:`FIX_ANCHOR_RULES`).
    """
    from .. import __version__

    rules = all_rules()
    rule_index = {rule.rule_id: i for i, rule in enumerate(rules)}
    sarif_results: List[Dict[str, Any]] = []
    for result in results:
        attachment = (repairs or {}).get(result.path)
        fixes = (
            _sarif_fixes(result.path, attachment)
            if attachment is not None and attachment.report.fixes
            else []
        )
        for diag in result.diagnostics:
            entry: Dict[str, Any] = {
                "ruleId": diag.rule_id,
                "ruleIndex": rule_index[diag.rule_id],
                "level": diag.severity,
                "message": {"text": diag.message},
                "locations": [_location(result.path, diag.span)],
            }
            if diag.related:
                entry["relatedLocations"] = [
                    {
                        **_location(result.path, rel.span),
                        "message": {"text": rel.message},
                    }
                    for rel in diag.related
                ]
            if fixes and diag.rule_id in FIX_ANCHOR_RULES:
                entry["fixes"] = fixes
            sarif_results.append(entry)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "version": __version__,
                        "informationUri": (
                            "https://example.invalid/repro-analyze"
                        ),
                        "rules": [
                            {
                                "id": rule.rule_id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary},
                                "help": {"text": rule.paper_ref},
                                "defaultConfiguration": {
                                    "level": rule.severity
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": sarif_results,
            }
        ],
    }


def validate_sarif_shape(doc: Dict[str, Any]) -> List[str]:
    """Structural check of a SARIF document; returns problems (empty =
    OK).  Not a full JSON-Schema validation — the container has no
    network access to fetch the schema — but covers everything SARIF
    consumers require: version, run/tool/driver shape, rule catalog
    integrity, per-result ruleId/level/message/location regions, and —
    when present — ``fix`` objects (description text, artifact changes
    with non-empty replacement lists and well-formed deleted regions)."""
    problems: List[str] = []

    def need(cond: bool, msg: str) -> None:
        if not cond:
            problems.append(msg)

    need(doc.get("version") == SARIF_VERSION, "version must be 2.1.0")
    need(isinstance(doc.get("$schema"), str), "$schema missing")
    runs = doc.get("runs")
    need(isinstance(runs, list) and len(runs) >= 1, "runs must be non-empty")
    if not runs:
        return problems
    for run in runs:
        driver = run.get("tool", {}).get("driver", {})
        need(bool(driver.get("name")), "tool.driver.name missing")
        rules = driver.get("rules", [])
        need(isinstance(rules, list) and rules, "driver.rules missing")
        ids = [r.get("id") for r in rules]
        need(len(ids) == len(set(ids)), "duplicate rule ids in catalog")
        for rule in rules:
            need(
                isinstance(rule.get("shortDescription", {}).get("text"), str),
                f"rule {rule.get('id')} lacks shortDescription.text",
            )
        for res in run.get("results", []):
            need(res.get("ruleId") in ids, "result.ruleId not in catalog")
            idx = res.get("ruleIndex")
            need(
                isinstance(idx, int)
                and 0 <= idx < len(ids)
                and ids[idx] == res.get("ruleId"),
                "result.ruleIndex does not match its ruleId",
            )
            need(
                res.get("level") in ("error", "warning", "note"),
                f"bad result.level {res.get('level')!r}",
            )
            need(
                isinstance(res.get("message", {}).get("text"), str),
                "result.message.text missing",
            )
            locations = res.get("locations")
            need(
                isinstance(locations, list) and len(locations) >= 1,
                "result.locations missing",
            )
            for loc in locations or []:
                phys = loc.get("physicalLocation", {})
                uri = phys.get("artifactLocation", {}).get("uri")
                need(isinstance(uri, str) and bool(uri), "location uri missing")
                region = phys.get("region", {})
                need(
                    isinstance(region.get("startLine"), int)
                    and region["startLine"] >= 1,
                    "region.startLine must be a positive int",
                )
                need(
                    isinstance(region.get("startColumn"), int)
                    and region["startColumn"] >= 1,
                    "region.startColumn must be a positive int",
                )
            for fix in res.get("fixes", []):
                need(
                    isinstance(
                        fix.get("description", {}).get("text"), str
                    ),
                    "fix.description.text missing",
                )
                changes = fix.get("artifactChanges")
                need(
                    isinstance(changes, list) and len(changes) >= 1,
                    "fix.artifactChanges missing",
                )
                for change in changes or []:
                    uri = change.get("artifactLocation", {}).get("uri")
                    need(
                        isinstance(uri, str) and bool(uri),
                        "artifactChange uri missing",
                    )
                    reps = change.get("replacements")
                    need(
                        isinstance(reps, list) and len(reps) >= 1,
                        "artifactChange.replacements missing",
                    )
                    for rep in reps or []:
                        deleted = rep.get("deletedRegion", {})
                        need(
                            isinstance(deleted.get("startLine"), int)
                            and deleted["startLine"] >= 1,
                            "deletedRegion.startLine must be a "
                            "positive int",
                        )
                        inserted = rep.get("insertedContent")
                        need(
                            inserted is None
                            or isinstance(inserted.get("text"), str),
                            "insertedContent.text must be a string",
                        )
    return problems

"""The built-in lint rules — each grounded in the paper.

=======  ======================  ========  ==============================
id       name                    severity  paper grounding
=======  ======================  ========  ==============================
ADL001   unmatched-send          warning   Lemma 3: zero accepts for a
                                           sent signal is a guaranteed
                                           stall candidate.
ADL002   unmatched-accept        warning   Lemma 3, dual case.
ADL003   self-rendezvous         error     §2 model: a task signalling
                                           itself can never complete the
                                           barrier rendezvous.
ADL004   unknown-target          error     §2: signals name statically
                                           existing tasks; calls name
                                           declared procedures.
ADL005   duplicate-name          error     §2: tasks (and procedures)
                                           are statically named, once.
ADL006   recursive-procedure     error     §2/§6: recursion has no
                                           finite sync graph; inlining
                                           rejects it.
ADL007   dead-procedure          warning   Hygiene: never-called
                                           procedures are dead weight
                                           the inliner silently drops.
ADL008   zero-trip-for           warning   §3.1.4: a static trip count
                                           of zero unrolls to nothing —
                                           its rendezvous vanish from
                                           the analyzed program.
ADL009   while-rendezvous        note      Lemma 1: while loops are
                                           double-unrolled; rendezvous
                                           counts inside them are
                                           over-approximated.
ADL010   coupling-cycle          warning   Constraint 1 (§3.1): cyclic
                                           CLG components are candidate
                                           coupling cycles the full
                                           analysis must refute.
ADL011   unreachable-after-stall warning   Lemma 3 corollary: code after
                                           a guaranteed-stall rendezvous
                                           in the same sequence never
                                           executes in the wave model.
ADL012   possible-deadlock       warning   §3: the refined polynomial
                                           analysis convicts the program
                                           — a coupling cycle satisfies
                                           every deadlock constraint.
                                           Anchor of the SARIF ``fix``
                                           objects repair emits.
=======  ======================  ========  ==============================

Rules only read the AST (and, for ADL010, the derived CLG); they never
mutate the program.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, Related
from ..lang.ast_nodes import (
    Accept,
    Call,
    For,
    If,
    Program,
    Send,
    Signal,
    Statement,
    While,
    walk_statements,
)
from ..transforms.inline import call_graph
from .engine import LintContext, LintRule, lint_rule

__all__: List[str] = []


def _bodies(program: Program) -> Iterator[Tuple[str, Tuple[Statement, ...]]]:
    """Every top-level body with its owner label (task or procedure)."""
    for task in program.tasks:
        yield task.name, task.body
    for proc in program.procedures:
        yield proc.name, proc.body


@lint_rule(
    "ADL001",
    "unmatched-send",
    "warning",
    "signal is sent but never accepted (guaranteed stall candidate)",
    "Lemma 3, Section 5",
)
def check_unmatched_send(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    return [
        d for d in ctx.unmatched_diagnostics if d.rule_id == rule.rule_id
    ]


@lint_rule(
    "ADL002",
    "unmatched-accept",
    "warning",
    "signal is accepted but never sent (guaranteed stall candidate)",
    "Lemma 3, Section 5",
)
def check_unmatched_accept(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    return [
        d for d in ctx.unmatched_diagnostics if d.rule_id == rule.rule_id
    ]


@lint_rule(
    "ADL003",
    "self-rendezvous",
    "error",
    "task sends a signal to itself; the rendezvous can never complete",
    "Section 2 program model",
)
def check_self_rendezvous(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    for task in ctx.effective.tasks:
        for stmt in walk_statements(task.body):
            if isinstance(stmt, Send) and stmt.task == task.name:
                yield rule.diagnostic(
                    f"task {task.name!r} sends signal {stmt.message!r} "
                    "to itself; a self-rendezvous can never complete",
                    span=stmt.loc,
                    task=task.name,
                )


@lint_rule(
    "ADL004",
    "unknown-target",
    "error",
    "send names an undeclared task, or call names an undeclared procedure",
    "Section 2 program model",
)
def check_unknown_target(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    task_names = {t.name for t in ctx.program.tasks}
    proc_names = {p.name for p in ctx.program.procedures}
    for owner, body in _bodies(ctx.program):
        for stmt in walk_statements(body):
            if isinstance(stmt, Send) and stmt.task not in task_names:
                yield rule.diagnostic(
                    f"send targets unknown task {stmt.task!r}",
                    span=stmt.loc,
                    task=owner,
                )
            elif isinstance(stmt, Call) and stmt.name not in proc_names:
                yield rule.diagnostic(
                    f"call to unknown procedure {stmt.name!r}",
                    span=stmt.loc,
                    task=owner,
                )


@lint_rule(
    "ADL005",
    "duplicate-name",
    "error",
    "duplicate task or procedure name",
    "Section 2 program model",
)
def check_duplicate_name(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    for kind, decls in (
        ("task", ctx.program.tasks),
        ("procedure", ctx.program.procedures),
    ):
        first: Dict[str, object] = {}
        for decl in decls:
            if decl.name in first:
                original = first[decl.name]
                yield rule.diagnostic(
                    f"duplicate {kind} name {decl.name!r}",
                    span=decl.loc,
                    task=decl.name,
                    related=(
                        Related(
                            message="first declared here",
                            span=original.loc,  # type: ignore[attr-defined]
                            task=decl.name,
                        ),
                    ),
                )
            else:
                first[decl.name] = decl


@lint_rule(
    "ADL006",
    "recursive-procedure",
    "error",
    "recursive procedure call chain; recursion has no finite sync graph",
    "Section 2 (interprocedural extension)",
)
def check_recursive_procedure(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    graph = call_graph(ctx.program)
    decls = {p.name: p for p in ctx.program.procedures}
    reported: Set[str] = set()
    for name in sorted(graph):
        if name in reported:
            continue
        cycle = _find_cycle(graph, name)
        if cycle is None:
            continue
        reported.update(cycle)
        anchor = decls[cycle[0]]
        yield rule.diagnostic(
            "recursive procedure call chain: "
            + " -> ".join(cycle + [cycle[0]]),
            span=anchor.loc,
            task=anchor.name,
            related=tuple(
                Related(
                    message=f"procedure {member!r} participates in the cycle",
                    span=decls[member].loc,
                    task=member,
                )
                for member in cycle[1:]
            ),
        )


def _find_cycle(
    graph: Dict[str, Set[str]], start: str
) -> "List[str] | None":
    """A call cycle reachable from ``start``, as an ordered name list."""
    trail: List[str] = []
    on_trail: Set[str] = set()
    done: Set[str] = set()

    def visit(name: str) -> "List[str] | None":
        if name in on_trail:
            return trail[trail.index(name):]
        if name in done or name not in graph:
            return None
        trail.append(name)
        on_trail.add(name)
        for callee in sorted(graph.get(name, ())):
            cycle = visit(callee)
            if cycle is not None:
                return cycle
        trail.pop()
        on_trail.discard(name)
        done.add(name)
        return None

    return visit(start)


@lint_rule(
    "ADL007",
    "dead-procedure",
    "warning",
    "procedure is never called from any task",
    "hygiene (the inliner silently drops it)",
)
def check_dead_procedure(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    graph = call_graph(ctx.program)
    live: Set[str] = set()
    stack: List[str] = []
    for task in ctx.program.tasks:
        for stmt in walk_statements(task.body):
            if isinstance(stmt, Call):
                stack.append(stmt.name)
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        stack.extend(graph.get(name, ()))
    for proc in ctx.program.procedures:
        if proc.name not in live:
            yield rule.diagnostic(
                f"procedure {proc.name!r} is never called from any task",
                span=proc.loc,
                task=proc.name,
            )


@lint_rule(
    "ADL008",
    "zero-trip-for",
    "warning",
    "for loop with upper < lower executes zero times and unrolls to nothing",
    "Section 3.1.4 (exact unrolling)",
)
def check_zero_trip_for(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    for owner, body in _bodies(ctx.program):
        for stmt in walk_statements(body):
            if isinstance(stmt, For) and stmt.trip_count == 0:
                yield rule.diagnostic(
                    f"for loop bounds {stmt.lower} .. {stmt.upper} give a "
                    "zero trip count: the body (and any rendezvous in it) "
                    "unrolls to nothing",
                    span=stmt.loc,
                    task=owner,
                )


def _has_rendezvous(body: Sequence[Statement]) -> bool:
    return any(
        isinstance(s, (Send, Accept)) for s in walk_statements(body)
    )


@lint_rule(
    "ADL009",
    "while-rendezvous",
    "note",
    "rendezvous inside an unbounded while loop; Lemma-1 double-unroll "
    "over-approximates its executions",
    "Lemma 1, Section 3.1.4",
)
def check_while_rendezvous(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    for owner, body in _bodies(ctx.program):
        for stmt in walk_statements(body):
            if isinstance(stmt, While) and _has_rendezvous(stmt.body):
                yield rule.diagnostic(
                    "rendezvous inside an unbounded while loop: the "
                    "Lemma-1 transform analyzes two guarded copies, so "
                    "per-signal counts and verdicts are conservative here",
                    span=stmt.loc,
                    task=owner,
                )


@lint_rule(
    "ADL010",
    "coupling-cycle",
    "warning",
    "rendezvous points form a candidate coupling cycle (constraint 1)",
    "Section 3.1 (cycle location graph)",
)
def check_coupling_cycle(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    clg = ctx.clg
    if clg is None:
        return
    for component in clg.cyclic_components():
        sync_nodes = sorted(
            {n.sync for n in component if n.sync is not None},
            key=lambda n: n.uid,
        )
        if not sync_nodes:
            continue
        tasks = sorted({n.task for n in sync_nodes})
        spans = []
        seen_spans = set()
        for node in sync_nodes:
            stmt = getattr(node.cfg_node, "stmt", None)
            loc = getattr(stmt, "loc", None)
            if loc is not None and loc not in seen_spans:
                seen_spans.add(loc)
                spans.append((loc, node))
        spans.sort(key=lambda pair: (pair[0].line, pair[0].column))
        primary = spans[0][0] if spans else None
        related = tuple(
            Related(
                message=f"cycle member {node}",
                span=loc,
                task=node.task,
            )
            for loc, node in spans[1:8]
        )
        yield rule.diagnostic(
            f"{len(sync_nodes)} rendezvous points across tasks "
            f"{', '.join(tasks)} form a candidate coupling cycle "
            "(deadlock constraint 1); run the full analysis to confirm "
            "or refute it",
            span=primary,
            task=tasks[0] if len(tasks) == 1 else None,
            related=related,
        )


@lint_rule(
    "ADL011",
    "unreachable-after-stall",
    "warning",
    "statements after a guaranteed-stall rendezvous never execute",
    "Lemma 3 corollary, Section 5",
)
def check_unreachable_after_stall(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    program = ctx.effective
    counts = ctx.signal_counts
    task_names = {t.name for t in program.tasks}

    def stalls(owner: str, stmt: Statement) -> bool:
        if isinstance(stmt, Send) and stmt.task in task_names:
            sends, accepts = counts[Signal(stmt.task, stmt.message)]
            return accepts == 0
        if isinstance(stmt, Accept):
            sends, accepts = counts[Signal(owner, stmt.message)]
            return sends == 0
        return False

    def scan(owner: str, body: Sequence[Statement]) -> Iterator[Diagnostic]:
        for index, stmt in enumerate(body):
            if stalls(owner, stmt):
                rest = body[index + 1:]
                if rest:
                    kind = "send" if isinstance(stmt, Send) else "accept"
                    yield rule.diagnostic(
                        f"unreachable: the preceding {kind} can never "
                        "complete (its signal has no counterpart), so "
                        f"{len(rest)} following statement(s) never execute",
                        span=rest[0].loc,
                        task=owner,
                        related=(
                            Related(
                                message="guaranteed-stall rendezvous here",
                                span=stmt.loc,
                                task=owner,
                            ),
                        ),
                    )
                return  # everything after the stall is dead; stop here
            if isinstance(stmt, If):
                yield from scan(owner, stmt.then_body)
                yield from scan(owner, stmt.else_body)
            elif isinstance(stmt, (While, For)):
                yield from scan(owner, stmt.body)

    for task in program.tasks:
        yield from scan(task.name, task.body)


@lint_rule(
    "ADL012",
    "possible-deadlock",
    "warning",
    "the refined polynomial analysis convicts the program: a coupling "
    "cycle satisfies every deadlock constraint",
    "Section 3 (refined analysis)",
)
def check_possible_deadlock(
    ctx: LintContext, rule: LintRule
) -> Iterable[Diagnostic]:
    """Full-conviction rule: runs the actual refined detector.

    Where ADL010 flags *candidate* coupling cycles (constraint 1 only),
    ADL012 fires only when the refined analysis fails to refute one —
    the lint-layer anchor that ``repro.repair`` attaches SARIF ``fix``
    objects to.
    """
    report = ctx.deadlock
    if report is None or report.deadlock_free:
        return
    emitted = False
    seen_components: Set[frozenset] = set()
    for evidence in report.evidence:
        # Several heads can convict the same cycle component; one
        # diagnostic per component is enough.
        if evidence.component in seen_components:
            continue
        seen_components.add(evidence.component)
        spans = []
        seen = set()
        for node in sorted(evidence.component, key=lambda n: n.uid):
            stmt = getattr(node.cfg_node, "stmt", None)
            loc = getattr(stmt, "loc", None)
            if loc is not None and loc not in seen:
                seen.add(loc)
                spans.append((loc, node))
        spans.sort(key=lambda pair: (pair[0].line, pair[0].column))
        tasks = sorted(evidence.tasks)
        emitted = True
        yield rule.diagnostic(
            f"possible deadlock ({report.algorithm}): rendezvous across "
            f"task(s) {', '.join(tasks)} form a coupling cycle the "
            "analysis cannot refute; repro.repair can synthesize "
            "certified fixes (--suggest-fixes)",
            span=spans[0][0] if spans else None,
            task=tasks[0] if len(tasks) == 1 else None,
            related=tuple(
                Related(
                    message=f"cycle member {node}",
                    span=loc,
                    task=node.task,
                )
                for loc, node in spans[1:8]
            ),
        )
    if not emitted:
        yield rule.diagnostic(
            f"possible deadlock ({report.algorithm}): the analysis "
            "convicts the program but carries no located evidence"
        )

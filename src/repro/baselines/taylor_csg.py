"""Taylor-style concurrency state graph analysis (related work, §6).

Taylor [Tay83a] represents a program's possible concurrency states as a
graph whose nodes are full task-position vectors; "the number of
concurrency states is greater than the product of the numbers of
rendezvous nodes in each task".  We build the state space at the
*statement* level of the per-task CFGs: internal (non-rendezvous) moves
interleave freely, rendezvous moves fire in complementary pairs.  This
is strictly larger than the wave space (which collapses internal
moves), giving the scaling benchmarks a second exponential comparator
with the historically accurate blow-up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..cfg.build import build_cfgs
from ..cfg.graph import CFGNode, NodeKind, TaskCFG
from ..errors import ExplorationLimitError
from ..lang.ast_nodes import Accept, Program, Send, Signal

__all__ = ["CSGResult", "taylor_csg_analysis"]

State = Tuple[CFGNode, ...]


@dataclass
class CSGResult:
    """Outcome of exhaustive concurrency-state exploration."""

    state_count: int
    has_deadlock: bool
    can_terminate: bool
    deadlock_states: List[State] = field(default_factory=list)

    @property
    def deadlock_free(self) -> bool:
        return not self.has_deadlock


def _request(node: CFGNode, task: str) -> Tuple[Signal, str] | None:
    """(signal, sign) of a rendezvous CFG node, else None."""
    stmt = node.stmt
    if node.kind == NodeKind.SEND and isinstance(stmt, Send):
        return (Signal(stmt.task, stmt.message), "+")
    if node.kind == NodeKind.ACCEPT and isinstance(stmt, Accept):
        return (Signal(task, stmt.message), "-")
    return None


def taylor_csg_analysis(
    program: Program, state_limit: int = 500_000
) -> CSGResult:
    """Explore the full statement-level concurrency state graph.

    A state maps each task to its current CFG node ("about to execute
    it").  Internal nodes advance independently; rendezvous nodes
    advance only in complementary pairs.  A non-final state with no
    outgoing transition is a deadlock state (in Taylor's terminology —
    it covers the paper's stalls too, since a stalled task blocks the
    state the same way).
    """
    cfgs = build_cfgs(program)
    order: List[TaskCFG] = [cfgs[t.name] for t in program.tasks]
    initial: State = tuple(cfg.entry for cfg in order)
    final_nodes = tuple(cfg.exit for cfg in order)

    result = CSGResult(state_count=0, has_deadlock=False, can_terminate=False)
    visited: Set[State] = {initial}
    queue: deque[State] = deque([initial])

    def push(state: State) -> None:
        if state not in visited:
            if len(visited) >= state_limit:
                raise ExplorationLimitError(state_limit)
            visited.add(state)
            queue.append(state)

    while queue:
        state = queue.popleft()
        if state == final_nodes:
            result.can_terminate = True
            continue
        moved = False
        requests: Dict[int, Tuple[Signal, str]] = {}
        for idx, node in enumerate(state):
            req = _request(node, order[idx].task)
            if req is not None:
                requests[idx] = req
                continue
            if node.kind == NodeKind.EXIT:
                continue
            for succ in order[idx].successors(node):
                moved = True
                nxt = list(state)
                nxt[idx] = succ
                push(tuple(nxt))
        for i, (sig_i, sign_i) in requests.items():
            if sign_i != "+":
                continue
            for j, (sig_j, sign_j) in requests.items():
                if j == i or sign_j != "-" or sig_j != sig_i:
                    continue
                for succ_i in order[i].successors(state[i]):
                    for succ_j in order[j].successors(state[j]):
                        moved = True
                        nxt = list(state)
                        nxt[i] = succ_i
                        nxt[j] = succ_j
                        push(tuple(nxt))
        if not moved:
            result.has_deadlock = True
            if len(result.deadlock_states) < 16:
                result.deadlock_states.append(state)
    result.state_count = len(visited)
    return result

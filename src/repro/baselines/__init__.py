"""Related-work baselines used as comparators in the benchmarks."""

from .taylor_csg import CSGResult, taylor_csg_analysis

__all__ = ["CSGResult", "taylor_csg_analysis"]

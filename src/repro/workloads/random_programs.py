"""Random ADL program generators for precision and scaling benchmarks.

Two families:

* :func:`random_program` — unconstrained structure (conditionals,
  loops, arbitrary signal reuse); labelled by exhaustive exploration in
  the precision benchmarks.
* :func:`random_serializable_program` — built by projecting a random
  *global* rendezvous sequence onto tasks, so a completing schedule
  exists by construction (other schedules may still deadlock, giving a
  natural mix of subtle deadlocks and clean programs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..lang.ast_nodes import (
    Accept,
    Condition,
    If,
    Program,
    Send,
    Statement,
    TaskDecl,
    While,
)
from ..lang.validate import validate_program

__all__ = [
    "RandomProgramConfig",
    "inject_deadlock",
    "random_program",
    "random_serializable_program",
]


@dataclass(frozen=True)
class RandomProgramConfig:
    """Shape parameters for :func:`random_program`."""

    tasks: int = 3
    statements_per_task: int = 4
    messages: int = 3
    branch_prob: float = 0.2
    loop_prob: float = 0.0
    max_depth: int = 2
    accept_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.tasks < 2:
            raise ValueError("need at least 2 tasks")
        if self.statements_per_task < 1:
            raise ValueError("need at least 1 statement per task")


def _random_stmt(
    cfg: RandomProgramConfig,
    rng: random.Random,
    task_index: int,
    depth: int,
) -> Statement:
    roll = rng.random()
    if depth < cfg.max_depth and roll < cfg.branch_prob:
        then_n = rng.randint(1, 2)
        else_n = rng.randint(0, 2)
        return If(
            condition=Condition.unknown(),
            then_body=tuple(
                _random_stmt(cfg, rng, task_index, depth + 1)
                for _ in range(then_n)
            ),
            else_body=tuple(
                _random_stmt(cfg, rng, task_index, depth + 1)
                for _ in range(else_n)
            ),
        )
    if depth < cfg.max_depth and roll < cfg.branch_prob + cfg.loop_prob:
        return While(
            condition=Condition.unknown(),
            body=tuple(
                _random_stmt(cfg, rng, task_index, depth + 1)
                for _ in range(rng.randint(1, 2))
            ),
        )
    message = f"m{rng.randrange(cfg.messages)}"
    if rng.random() < cfg.accept_ratio:
        return Accept(message=message)
    target = rng.randrange(cfg.tasks - 1)
    if target >= task_index:
        target += 1  # never send to self
    return Send(task=f"t{target}", message=message)


def random_program(
    config: RandomProgramConfig, seed: int = 0
) -> Program:
    """A random program matching ``config``; always validates."""
    rng = random.Random(seed)
    tasks: List[TaskDecl] = []
    for i in range(config.tasks):
        body = tuple(
            _random_stmt(config, rng, i, 0)
            for _ in range(config.statements_per_task)
        )
        tasks.append(TaskDecl(name=f"t{i}", body=body))
    program = Program(name=f"random_{seed}", tasks=tuple(tasks))
    validate_program(program)
    return program


def random_serializable_program(
    tasks: int = 3,
    rendezvous: int = 6,
    messages: int = 3,
    seed: int = 0,
    unique_messages: bool = False,
) -> Program:
    """Project a random global rendezvous sequence onto tasks.

    Each step picks a sender/accepter pair and a message; the send is
    appended to the sender's body and the accept to the accepter's, so
    executing rendezvous in generation order completes the program.
    Per-signal counts are balanced by construction (Lemma 3 certifies
    these programs stall-free once flattened).

    With ``unique_messages=True`` every rendezvous gets a fresh message
    name, which *provably* makes the program deadlock-free under every
    schedule: pairings are forced, so in any reachable state the
    globally least unexecuted rendezvous has both endpoints parked
    exactly at it (all their earlier rendezvous are globally earlier,
    hence executed) and can fire.  With shared message names an accept
    may pair with the "wrong" sender and subtle deadlocks appear — a
    good labelled-mixture family for precision benchmarks.
    """
    if tasks < 2:
        raise ValueError("need at least 2 tasks")
    rng = random.Random(seed)
    bodies: List[List[Statement]] = [[] for _ in range(tasks)]
    for step in range(rendezvous):
        sender, accepter = rng.sample(range(tasks), 2)
        message = (
            f"u{step}" if unique_messages else f"m{rng.randrange(messages)}"
        )
        bodies[sender].append(Send(task=f"t{accepter}", message=message))
        bodies[accepter].append(Accept(message=message))
    program = Program(
        name=f"serializable_{seed}",
        tasks=tuple(
            TaskDecl(name=f"t{i}", body=tuple(body))
            for i, body in enumerate(bodies)
        ),
    )
    validate_program(program)
    return program


def inject_deadlock(program: Program, task_a: int = 0, task_b: int = 1) -> Program:
    """Plant a guaranteed, immediately-reachable deadlock into ``program``.

    Both chosen tasks get a crossed send prepended (each targeting a
    fresh signal whose accept sits at the *end* of the other task), so
    from the very first wave each waits on an accept the other can only
    reach after its own prepended send — a two-task coupling cycle on
    every schedule.  Used to measure detector safety at scales where
    exhaustive labelling is impossible: every detector must flag the
    result.
    """
    if len(program.tasks) < 2:
        raise ValueError("need at least 2 tasks")
    if task_a == task_b:
        raise ValueError("tasks must differ")
    tasks = list(program.tasks)
    name_a, name_b = tasks[task_a].name, tasks[task_b].name
    tasks[task_a] = TaskDecl(
        name=name_a,
        body=(Send(task=name_b, message="inj_ab"),)
        + tasks[task_a].body
        + (Accept(message="inj_ba"),),
    )
    tasks[task_b] = TaskDecl(
        name=name_b,
        body=(Send(task=name_a, message="inj_ba"),)
        + tasks[task_b].body
        + (Accept(message="inj_ab"),),
    )
    injected = Program(
        name=f"{program.name}_injected",
        tasks=tuple(tasks),
        procedures=program.procedures,
    )
    validate_program(injected)
    return injected

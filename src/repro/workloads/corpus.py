"""Executable reconstructions of every worked example in the paper.

The paper's figures are drawings; each is reconstructed here as an ADL
program with the structural properties the text relies on, plus the
ground-truth expectation the text states.  The corpus drives both the
figure benchmarks (E1–E6) and regression tests.

Reconstruction notes (the original drawings are not fully recoverable
from the text, so each entry documents what it preserves):

* ``fig1`` — a two-task, two-round handshake.  Like the paper's Figure
  1 it is deadlock-free, its CLG contains spurious cycles mixing
  first-round and second-round rendezvous (the paper's ``r,t,u,w`` /
  ``r,s,v,w`` pair), and the refined algorithm eliminates all of them
  through derived orderings.
* ``fig2a`` — a stall: a send whose only accept is conditionals away.
* ``fig2b`` — a deadlock: two tasks each accepting before sending what
  the other needs.
* ``fig3`` — the constraint-4 example: a two-task cycle that satisfies
  constraints 1–3 but is always broken by outside task ``c`` whose
  ``w`` node can only rendezvous with head ``t`` or its successor.
* ``fig4a`` — a sync-edge-only "cycle" (two senders × two accepts of
  one signal); the CLG is acyclic, so the naive algorithm certifies it.
* ``fig4c`` — a spurious cycle entering one task on two exclusive
  branches (violating constraints 1c/3b in a way the polynomial
  algorithms only partially suppress — kept as an honest false-alarm
  witness).
* ``fig5a`` — Lemma 2: a cycle whose head nodes can rendezvous
  (entered and exited through accepts of one signal type); eliminated
  by the constraint-2/COACCEPT marks.
* ``fig5bc`` — the both-branches stall-transform example.
* ``fig5d`` — the co-dependent conditional rendezvous example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..lang.ast_nodes import Program
from ..lang.parser import parse_program

__all__ = ["CorpusEntry", "paper_corpus"]


@dataclass(frozen=True)
class CorpusEntry:
    """One reconstructed figure with its ground-truth expectations.

    ``expect_deadlock``/``expect_stall`` are expectations of the
    *execution-wave model* (the paper's semantics, which treats all
    control paths as independently executable).  For ``fig5d`` the wave
    model reports a stall that data co-dependence rules out at runtime
    — that gap is the figure's entire point.
    """

    name: str
    figure: str
    program: Program
    expect_deadlock: bool
    expect_stall: bool
    description: str


_SOURCES: Tuple[Tuple[str, str, bool, bool, str, str], ...] = (
    (
        "fig1",
        "Figure 1 / Section 4",
        """
        program fig1;
        task t1 is
        begin
            send t2.sig1;   -- r
            accept sig2;    -- s
            send t2.sig1;   -- r'
            accept sig2;    -- s'
        end;
        task t2 is
        begin
            accept sig1;    -- u
            send t1.sig2;   -- v
            accept sig1;    -- u'
            send t1.sig2;   -- v'
        end;
        """,
        False,
        False,
        "deadlock-free; naive CLG search reports spurious cross-round "
        "cycles, refined eliminates them via derived orderings",
    ),
    (
        "fig2a",
        "Figure 2(a)",
        """
        program fig2a;
        task t1 is
        begin
            send t2.m;      -- stall node z: may never be accepted
        end;
        task t2 is
        begin
            if ? then
                accept m;
            end if;
        end;
        """,
        False,
        True,
        "stall anomaly: the accept can be skipped, leaving the send "
        "waiting forever with no future partner",
    ),
    (
        "fig2b",
        "Figure 2(b)",
        """
        program fig2b;
        task t1 is
        begin
            accept a;
            send t2.b;
        end;
        task t2 is
        begin
            accept b;
            send t1.a;
        end;
        """,
        True,
        False,
        "deadlock anomaly: each task waits to accept what the other "
        "would only send afterwards",
    ),
    (
        "fig3",
        "Figure 3 / constraint 4",
        """
        program fig3;
        task a is
        begin
            accept x;       -- r (head)
            send b.y;       -- s (tail)
        end;
        task b is
        begin
            accept y;       -- t (head)
            send a.x;       -- u (tail)
            accept y;       -- v
        end;
        task c is
        begin
            send b.y;       -- w: can only rendezvous with t or v
        end;
        """,
        False,
        False,
        "cycle r,s,t,u satisfies constraints 1-3 but w always breaks "
        "it (constraint 4); signal y stays balanced (two sends, two "
        "accepts), so no stall either",
    ),
    (
        "fig4a",
        "Figure 4(a,b)",
        """
        program fig4a;
        task t1 is
        begin
            send t3.m;      -- r
        end;
        task t2 is
        begin
            send t3.m;      -- s
        end;
        task t3 is
        begin
            accept m;       -- t
            accept m;       -- u
        end;
        """,
        False,
        False,
        "sync edges alone form a cycle r-t-s-u, but the CLG is acyclic "
        "(any node entered via a sync edge must leave via control flow)",
    ),
    (
        "fig4c",
        "Figure 4(c)",
        """
        program fig4c;
        task t1 is
        begin
            if ? then
                accept m1;  -- a
                send t2.n1; -- b
            else
                accept m2;  -- c
                send t3.n2; -- d
            end if;
        end;
        task t2 is
        begin
            accept n1;
            send t1.m2;
        end;
        task t3 is
        begin
            accept n2;
            send t1.m1;
        end;
        """,
        False,
        True,
        "the only CLG cycle uses both exclusive branches of t1 "
        "(control edges (a,b) and (c,d)); no deadlock is feasible, "
        "though the untaken branch leaves stall anomalies",
    ),
    (
        "fig5a",
        "Figure 5(a) / Lemma 2",
        """
        program fig5a;
        task a is
        begin
            send b.m;       -- s (head): can rendezvous with either accept
            send b.m;       -- t (tail)
        end;
        task b is
        begin
            accept m;       -- a (head)
            accept m;       -- a' (tail, same signal type as the head)
        end;
        """,
        False,
        False,
        "the CLG cycle enters and exits task b through accepts of one "
        "signal type, so its head nodes can rendezvous (constraint 2); "
        "COACCEPT/partner marks eliminate it",
    ),
    (
        "fig5bc",
        "Figure 5(b,c)",
        """
        program fig5bc;
        task t1 is
        begin
            if c then
                accept go;
                send t2.m;
            else
                send t2.m;
            end if;
        end;
        task t2 is
        begin
            accept m;
        end;
        task t3 is
        begin
            if c then
                send t1.go;
            end if;
        end;
        """,
        False,
        True,
        "send t2.m occurs on both branches; the merge transform hoists "
        "it out, shrinking the conditional-rendezvous residue (the "
        "go-signal co-dependence itself is the Figure 5(d) problem)",
    ),
    (
        "fig5d",
        "Figure 5(d)",
        """
        program fig5d;
        task t is
        begin
            v := ?;
            send tp.s;
            if v then
                send tp.r;
            end if;
        end;
        task tp is
        begin
            accept s (v);
            if v then
                accept r;
            end if;
        end;
        """,
        False,
        True,
        "r executes iff r' does (the same v reaches both guards), so "
        "no run ever stalls — but the path-insensitive wave model "
        "cannot see the correlation and reports a possible stall; "
        "co-dependent factoring recovers the certification",
    ),
)


def paper_corpus() -> Dict[str, CorpusEntry]:
    """All reconstructed figure programs, keyed by short name."""
    corpus: Dict[str, CorpusEntry] = {}
    for name, figure, source, deadlock, stall, description in _SOURCES:
        corpus[name] = CorpusEntry(
            name=name,
            figure=figure,
            program=parse_program(source),
            expect_deadlock=deadlock,
            expect_stall=stall,
            description=description,
        )
    return corpus

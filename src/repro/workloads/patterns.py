"""Classic parallel-programming patterns as ADL programs.

These are the workloads the paper's introduction motivates — realistic
rendezvous structures in which deadlocks either lurk (dining
philosophers with symmetric pickup order) or provably cannot occur
(pipelines, asymmetric philosophers, client–server with per-client
signals).  All generators are parameterized so the scaling benchmarks
can grow them.
"""

from __future__ import annotations

from typing import List

from ..lang.ast_nodes import Accept, Program, Send, Statement, TaskDecl

__all__ = [
    "barrier",
    "corridor",
    "dining_philosophers",
    "gossip_ring",
    "pipeline",
    "client_server",
    "token_ring",
    "master_workers",
    "crossed_pair",
    "handshake_chain",
]


def dining_philosophers(n: int = 5, deadlock: bool = True) -> Program:
    """``n`` philosophers and ``n`` fork tasks.

    Each philosopher picks up the left fork, then the right fork, eats,
    and puts both down; each fork serves a pickup/putdown cycle once
    per adjacent philosopher (two cycles total — without the second
    cycle the circular wait would degenerate into stalls instead of the
    classic deadlock).  With ``deadlock=True`` all philosophers grab
    left-first (circular wait); with ``deadlock=False`` the last
    philosopher grabs right-first, the standard asymmetry fix.
    """
    if n < 2:
        raise ValueError("need at least 2 philosophers")
    tasks: List[TaskDecl] = []
    for i in range(n):
        left = f"fork{i}"
        right = f"fork{(i + 1) % n}"
        first, second = (left, right)
        if not deadlock and i == n - 1:
            first, second = (right, left)
        body = (
            Send(task=first, message="pickup"),
            Send(task=second, message="pickup"),
            Send(task=first, message="putdown"),
            Send(task=second, message="putdown"),
        )
        tasks.append(TaskDecl(name=f"phil{i}", body=body))
    for i in range(n):
        tasks.append(
            TaskDecl(
                name=f"fork{i}",
                body=(
                    Accept(message="pickup"),
                    Accept(message="putdown"),
                    Accept(message="pickup"),
                    Accept(message="putdown"),
                ),
            )
        )
    suffix = "deadlock" if deadlock else "safe"
    return Program(name=f"philosophers_{n}_{suffix}", tasks=tuple(tasks))


def pipeline(stages: int = 3, rounds: int = 2) -> Program:
    """A linear pipeline: stage ``k`` forwards ``rounds`` items to ``k+1``.

    Deadlock-free by construction (data flows one way).
    """
    if stages < 2:
        raise ValueError("need at least 2 stages")
    tasks: List[TaskDecl] = []
    for k in range(stages):
        body: List[Statement] = []
        for _ in range(rounds):
            if k > 0:
                body.append(Accept(message="item"))
            if k < stages - 1:
                body.append(Send(task=f"stage{k + 1}", message="item"))
        tasks.append(TaskDecl(name=f"stage{k}", body=tuple(body)))
    return Program(name=f"pipeline_{stages}x{rounds}", tasks=tuple(tasks))


def client_server(
    clients: int = 3, requests: int = 1, shared_reply: bool = False
) -> Program:
    """Clients send requests; the server replies in a fixed order.

    With per-client reply signals (default) the program is
    deadlock-free.  ``shared_reply=True`` gives every client the *same*
    request signal while the server replies in fixed client order — the
    classic order-sensitivity deadlock (a request accepted from the
    "wrong" client leaves the server replying to a client that is still
    waiting to submit).
    """
    if clients < 1:
        raise ValueError("need at least 1 client")
    server_body: List[Statement] = []
    tasks: List[TaskDecl] = []
    for c in range(clients):
        req = "req" if shared_reply else f"req{c}"
        client_body: List[Statement] = []
        for _ in range(requests):
            client_body.append(Send(task="server", message=req))
            client_body.append(Accept(message="reply"))
        tasks.append(TaskDecl(name=f"client{c}", body=tuple(client_body)))
        for _ in range(requests):
            server_body.append(Accept(message=req))
            server_body.append(Send(task=f"client{c}", message="reply"))
    tasks.append(TaskDecl(name="server", body=tuple(server_body)))
    kind = "shared" if shared_reply else "split"
    return Program(
        name=f"client_server_{clients}x{requests}_{kind}", tasks=tuple(tasks)
    )


def token_ring(n: int = 4, laps: int = 1) -> Program:
    """A token circulating around ``n`` tasks, ``laps`` times.

    Task 0 injects the token; deadlock-free by construction.
    """
    if n < 2:
        raise ValueError("need at least 2 ring members")
    tasks: List[TaskDecl] = []
    for i in range(n):
        nxt = f"ring{(i + 1) % n}"
        body: List[Statement] = []
        for _ in range(laps):
            if i == 0:
                body.append(Send(task=nxt, message="token"))
                body.append(Accept(message="token"))
            else:
                body.append(Accept(message="token"))
                body.append(Send(task=nxt, message="token"))
        tasks.append(TaskDecl(name=f"ring{i}", body=tuple(body)))
    return Program(name=f"token_ring_{n}x{laps}", tasks=tuple(tasks))


def master_workers(workers: int = 3, jobs_each: int = 1) -> Program:
    """A master hands jobs to workers and collects per-worker results."""
    if workers < 1:
        raise ValueError("need at least 1 worker")
    master_body: List[Statement] = []
    tasks: List[TaskDecl] = []
    for w in range(workers):
        for _ in range(jobs_each):
            master_body.append(Send(task=f"worker{w}", message="job"))
    for w in range(workers):
        for _ in range(jobs_each):
            master_body.append(Accept(message=f"done{w}"))
    for w in range(workers):
        worker_body: List[Statement] = []
        for _ in range(jobs_each):
            worker_body.append(Accept(message="job"))
            worker_body.append(Send(task="master", message=f"done{w}"))
        tasks.append(TaskDecl(name=f"worker{w}", body=tuple(worker_body)))
    tasks.append(TaskDecl(name="master", body=tuple(master_body)))
    return Program(name=f"master_workers_{workers}", tasks=tuple(tasks))


def corridor(depth: int = 4, chatter: int = 2) -> Program:
    """A deep deadlock corridor buried in chatter interleavings.

    Tasks ``a`` and ``b`` handshake ``depth`` times and then deadlock
    on crossed sends, while ``chatter`` independent producer/consumer
    pairs each exchange ``depth`` messages.  The chatter multiplies the
    wave space (roughly ``depth ** chatter`` interleavings) without
    touching the anomaly, so blind BFS drowns in breadth while a
    search guided toward the flagged heads walks the corridor first —
    the flagship family for the guided-vs-BFS benchmarks.
    """
    if depth < 1:
        raise ValueError("need at least 1 corridor step")
    a_body: List[Statement] = [
        Send(task="b", message=f"hs{i}") for i in range(depth)
    ]
    a_body += [Send(task="b", message="x"), Accept(message="y")]
    b_body: List[Statement] = [
        Accept(message=f"hs{i}") for i in range(depth)
    ]
    b_body += [Send(task="a", message="y"), Accept(message="x")]
    tasks: List[TaskDecl] = [
        TaskDecl(name="a", body=tuple(a_body)),
        TaskDecl(name="b", body=tuple(b_body)),
    ]
    for c in range(chatter):
        tasks.append(
            TaskDecl(
                name=f"ping{c}",
                body=tuple(
                    Send(task=f"pong{c}", message=f"m{i}")
                    for i in range(depth)
                ),
            )
        )
        tasks.append(
            TaskDecl(
                name=f"pong{c}",
                body=tuple(
                    Accept(message=f"m{i}") for i in range(depth)
                ),
            )
        )
    return Program(name=f"corridor_{depth}x{chatter}", tasks=tuple(tasks))


def crossed_pair() -> Program:
    """The minimal always-deadlocking program: two crossed sends."""
    return Program(
        name="crossed_pair",
        tasks=(
            TaskDecl(
                name="t1",
                body=(Send(task="t2", message="a"), Accept(message="x")),
            ),
            TaskDecl(
                name="t2",
                body=(Send(task="t1", message="x"), Accept(message="a")),
            ),
        ),
    )


def handshake_chain(n: int = 3, rounds: int = 1) -> Program:
    """``n`` tasks; neighbours handshake in order.  Deadlock-free."""
    if n < 2:
        raise ValueError("need at least 2 tasks")
    bodies: List[List[Statement]] = [[] for _ in range(n)]
    for _ in range(rounds):
        for i in range(n - 1):
            bodies[i].append(Send(task=f"t{i + 1}", message=f"m{i}"))
            bodies[i + 1].append(Accept(message=f"m{i}"))
            bodies[i + 1].append(Send(task=f"t{i}", message=f"r{i}"))
            bodies[i].append(Accept(message=f"r{i}"))
    tasks = tuple(
        TaskDecl(name=f"t{i}", body=tuple(body))
        for i, body in enumerate(bodies)
    )
    return Program(name=f"handshake_chain_{n}x{rounds}", tasks=tasks)


def barrier(n: int = 4, rounds: int = 1) -> Program:
    """``n`` workers synchronize through a coordinator task.

    Each round: every worker reports ``arrive``, then the coordinator
    releases each with a per-worker ``resume``.  Deadlock-free: the
    coordinator is a strict two-phase hub.
    """
    if n < 1:
        raise ValueError("need at least 1 worker")
    coord: List[Statement] = []
    tasks: List[TaskDecl] = []
    for _ in range(rounds):
        for _ in range(n):
            coord.append(Accept(message="arrive"))
        for w in range(n):
            coord.append(Send(task=f"worker{w}", message="resume"))
    for w in range(n):
        body: List[Statement] = []
        for _ in range(rounds):
            body.append(Send(task="coord", message="arrive"))
            body.append(Accept(message="resume"))
        tasks.append(TaskDecl(name=f"worker{w}", body=tuple(body)))
    tasks.append(TaskDecl(name="coord", body=tuple(coord)))
    return Program(name=f"barrier_{n}x{rounds}", tasks=tuple(tasks))


def gossip_ring(n: int = 4) -> Program:
    """Every ring member forwards a rumor once around: task ``i`` tells
    ``i+1`` after hearing from ``i-1``; member 0 originates.

    Unlike :func:`token_ring` the rumor signals are distinct per hop,
    so the sync graph has no shared-signal ambiguity at all.
    """
    if n < 2:
        raise ValueError("need at least 2 ring members")
    tasks: List[TaskDecl] = []
    for i in range(n):
        nxt = (i + 1) % n
        body: List[Statement] = []
        if i == 0:
            body.append(Send(task=f"member{nxt}", message=f"rumor{i}"))
            body.append(Accept(message=f"rumor{n - 1}"))
        else:
            body.append(Accept(message=f"rumor{i - 1}"))
            body.append(Send(task=f"member{nxt}", message=f"rumor{i}"))
        tasks.append(TaskDecl(name=f"member{i}", body=tuple(body)))
    return Program(name=f"gossip_ring_{n}", tasks=tuple(tasks))

"""Benchmark and test workloads: paper figures, patterns, random programs."""

from .adl_corpus import (
    AdlEntry,
    LintEntry,
    adl_corpus,
    lint_corpus,
    load_adl,
    load_lint_adl,
)
from .corpus import CorpusEntry, paper_corpus
from .patterns import (
    barrier,
    client_server,
    crossed_pair,
    dining_philosophers,
    gossip_ring,
    handshake_chain,
    master_workers,
    pipeline,
    token_ring,
)
from .random_programs import (
    RandomProgramConfig,
    inject_deadlock,
    random_program,
    random_serializable_program,
)

__all__ = [
    "AdlEntry",
    "CorpusEntry",
    "LintEntry",
    "RandomProgramConfig",
    "adl_corpus",
    "barrier",
    "client_server",
    "crossed_pair",
    "dining_philosophers",
    "gossip_ring",
    "handshake_chain",
    "inject_deadlock",
    "lint_corpus",
    "load_adl",
    "load_lint_adl",
    "master_workers",
    "paper_corpus",
    "pipeline",
    "random_program",
    "random_serializable_program",
    "token_ring",
]

"""Realistic ADL programs shipped as package data.

Ten small-but-real protocols (elevator, ATM, spooler, train junction,
chat relay, …) with ground-truth expectations, loaded from
``repro/workloads/adl/*.adl``.  They serve as an end-to-end regression
corpus: the source files exercise the full parser, and the manifest
expectations are checked against exhaustive wave exploration in the
test suite.

Expectations use the *wave model* (all paths executable, loops handled
by the Lemma-1 transform); `sensor_poll` and `watchdog` therefore
expect stalls the runtime only exhibits on mismatched branch draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import resources
from typing import Dict, Tuple

from ..lang.ast_nodes import Program
from ..lang.parser import parse_program

__all__ = ["AdlEntry", "adl_corpus", "load_adl"]


@dataclass(frozen=True)
class AdlEntry:
    """One corpus program with its wave-model expectations."""

    name: str
    source: str
    program: Program
    expect_deadlock: bool
    expect_stall: bool
    description: str


# name -> (expect_deadlock, expect_stall, description)
_MANIFEST: Dict[str, Tuple[bool, bool, str]] = {
    "elevator": (False, False, "single-hub controller; deadlock-free"),
    "bounded_buffer": (
        False,
        False,
        "capacity-1 rendezvous flow control; for-loops fully unrolled",
    ),
    "atm": (False, False, "clean authorize-then-dispense ordering"),
    "atm_deadlock": (
        True,
        False,
        "bank demands settlement before approval: guaranteed deadlock",
    ),
    "printer_spooler": (
        False,
        False,
        "per-user completion signals keep the spooler safe",
    ),
    "train_junction": (
        False,
        False,
        "fixed service order with per-train request signals; without "
        "select, sender-anonymous requests would deadlock",
    ),
    "sensor_poll": (
        False,
        True,
        "loop iteration counts must agree; mismatched unrolled paths "
        "stall in the wave model",
    ),
    "handoff_protocol": (
        False,
        False,
        "shared procedure inlined into both stages",
    ),
    "relay_chat": (False, False, "store-and-forward relay"),
    "watchdog": (
        False,
        True,
        "skipped heartbeat stalls the watchdog; the worker is "
        "transitively coupled to the stall, not deadlocked",
    ),
}


def load_adl(name: str) -> str:
    """Raw source text of one corpus program."""
    package = resources.files(__package__) / "adl" / f"{name}.adl"
    return package.read_text()


def adl_corpus() -> Dict[str, AdlEntry]:
    """Parse and return the whole corpus, keyed by name."""
    corpus: Dict[str, AdlEntry] = {}
    for name, (deadlock, stall, description) in _MANIFEST.items():
        source = load_adl(name)
        corpus[name] = AdlEntry(
            name=name,
            source=source,
            program=parse_program(source),
            expect_deadlock=deadlock,
            expect_stall=stall,
            description=description,
        )
    return corpus

"""Realistic ADL programs shipped as package data.

Ten small-but-real protocols (elevator, ATM, spooler, train junction,
chat relay, …) with ground-truth expectations, loaded from
``repro/workloads/adl/*.adl``.  They serve as an end-to-end regression
corpus: the source files exercise the full parser, and the manifest
expectations are checked against exhaustive wave exploration in the
test suite.

Expectations use the *wave model* (all paths executable, loops handled
by the Lemma-1 transform); `sensor_poll` and `watchdog` therefore
expect stalls the runtime only exhibits on mismatched branch draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import resources
from typing import Dict, Tuple

from ..lang.ast_nodes import Program
from ..lang.parser import parse_program

__all__ = [
    "AdlEntry",
    "LintEntry",
    "RepairEntry",
    "adl_corpus",
    "lint_corpus",
    "load_adl",
    "load_lint_adl",
    "load_repair_adl",
    "repair_corpus",
]


@dataclass(frozen=True)
class AdlEntry:
    """One corpus program with its wave-model expectations."""

    name: str
    source: str
    program: Program
    expect_deadlock: bool
    expect_stall: bool
    description: str


# name -> (expect_deadlock, expect_stall, description)
_MANIFEST: Dict[str, Tuple[bool, bool, str]] = {
    "elevator": (False, False, "single-hub controller; deadlock-free"),
    "bounded_buffer": (
        False,
        False,
        "capacity-1 rendezvous flow control; for-loops fully unrolled",
    ),
    "atm": (False, False, "clean authorize-then-dispense ordering"),
    "atm_deadlock": (
        True,
        False,
        "bank demands settlement before approval: guaranteed deadlock",
    ),
    "printer_spooler": (
        False,
        False,
        "per-user completion signals keep the spooler safe",
    ),
    "train_junction": (
        False,
        False,
        "fixed service order with per-train request signals; without "
        "select, sender-anonymous requests would deadlock",
    ),
    "sensor_poll": (
        False,
        True,
        "loop iteration counts must agree; mismatched unrolled paths "
        "stall in the wave model",
    ),
    "handoff_protocol": (
        False,
        False,
        "shared procedure inlined into both stages",
    ),
    "relay_chat": (False, False, "store-and-forward relay"),
    "watchdog": (
        False,
        True,
        "skipped heartbeat stalls the watchdog; the worker is "
        "transitively coupled to the stall, not deadlocked",
    ),
}


def load_adl(name: str) -> str:
    """Raw source text of one corpus program."""
    package = resources.files(__package__) / "adl" / f"{name}.adl"
    return package.read_text()


def adl_corpus() -> Dict[str, AdlEntry]:
    """Parse and return the whole corpus, keyed by name."""
    corpus: Dict[str, AdlEntry] = {}
    for name, (deadlock, stall, description) in _MANIFEST.items():
        source = load_adl(name)
        corpus[name] = AdlEntry(
            name=name,
            source=source,
            program=parse_program(source),
            expect_deadlock=deadlock,
            expect_stall=stall,
            description=description,
        )
    return corpus


@dataclass(frozen=True)
class LintEntry:
    """One lint-showcase program with the rule ids it must trigger."""

    name: str
    source: str
    program: Program
    expect_rules: Tuple[str, ...]
    description: str


# name -> (expected rule ids, description).  Unlike the main corpus,
# several of these programs are deliberately broken (duplicate tasks,
# unknown targets) and would be rejected by validate_program; the lint
# engine must still produce located diagnostics for them.
_LINT_MANIFEST: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "stall_candidates": (
        ("ADL001", "ADL002", "ADL008", "ADL011"),
        "Lemma-3 count imbalances, a zero-trip for loop, and the dead "
        "code behind a guaranteed stall",
    ),
    "structure_smells": (
        ("ADL001", "ADL003", "ADL004", "ADL005", "ADL006", "ADL007", "ADL011"),
        "self-rendezvous, unknown targets, a duplicate task, mutually "
        "recursive procedures, and a dead helper; the self-rendezvous "
        "also counts as an unaccepted send that strands the next line",
    ),
    "coupled_protocol": (
        ("ADL010", "ADL012"),
        "crossed request/ack protocol forming a constraint-1 coupling "
        "cycle that the refined analysis convicts outright",
    ),
    "loop_precision": (
        ("ADL009", "ADL010"),
        "rendezvous under unbounded while loops (Lemma-1 precision "
        "loss), one occurrence suppressed in-source; the crossed "
        "send-then-accept bodies also form a coupling cycle",
    ),
}


@dataclass(frozen=True)
class RepairEntry:
    """One convicted program from the repair showcase corpus.

    Every entry is a real deadlock (confirmed by exact wave search in
    the test suite) that the refined analysis convicts; ``fix_kinds``
    names candidate kinds known to produce at least one certified fix,
    as a regression anchor for the generator.
    """

    name: str
    source: str
    program: Program
    fix_kinds: Tuple[str, ...]
    description: str


# name -> (kinds expected among certified fixes, description).  All
# programs deadlock; repro.repair must certify at least one fix for
# each (the acceptance test requires a >= 70% fix rate over the whole
# convicted set, and these are chosen to be individually repairable).
_REPAIR_MANIFEST: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "dining_philosophers": (
        ("swap_adjacent",),
        "three philosophers, clockwise fork order: circular wait only "
        "exact search can certify away after reordering",
    ),
    "crossed_greeting": (
        ("swap_adjacent",),
        "minimal crossed handshake; either task reordered fixes it",
    ),
    "double_handshake": (
        ("swap_adjacent",),
        "two-phase protocol with an inverted second phase",
    ),
    "settle_before_approve": (
        ("swap_adjacent",),
        "gateway demands settlement before releasing the approval",
    ),
    "eager_producer": (
        ("swap_adjacent", "move"),
        "producer pushes two items before waiting for credit",
    ),
    "kick_start": (
        ("swap_adjacent",),
        "worker and driver each wait for the other to move first",
    ),
    "ring_order": (
        ("swap_adjacent",),
        "token ring where every station forwards before listening",
    ),
    "late_ack": (
        ("swap_adjacent", "move"),
        "server acknowledges only after the post-ack completion",
    ),
    "elevator_jam": (
        ("swap_adjacent",),
        "cab announces arrival before listening for its move command",
    ),
    "missing_accept": (
        ("insert_accept",),
        "receiver accepts one of two frames; the missing accept is "
        "the repair",
    ),
}


def load_repair_adl(name: str) -> str:
    """Raw source text of one repair-showcase program."""
    package = resources.files(__package__) / "adl_repair" / f"{name}.adl"
    return package.read_text()


def repair_corpus() -> Dict[str, RepairEntry]:
    """Parse and return the repair showcase corpus, keyed by name."""
    corpus: Dict[str, RepairEntry] = {}
    for name, (fix_kinds, description) in _REPAIR_MANIFEST.items():
        source = load_repair_adl(name)
        corpus[name] = RepairEntry(
            name=name,
            source=source,
            program=parse_program(source),
            fix_kinds=fix_kinds,
            description=description,
        )
    return corpus


def load_lint_adl(name: str) -> str:
    """Raw source text of one lint-showcase program."""
    package = resources.files(__package__) / "adl_lint" / f"{name}.adl"
    return package.read_text()


def lint_corpus() -> Dict[str, LintEntry]:
    """Parse and return the lint showcase corpus, keyed by name."""
    corpus: Dict[str, LintEntry] = {}
    for name, (rules, description) in _LINT_MANIFEST.items():
        source = load_lint_adl(name)
        corpus[name] = LintEntry(
            name=name,
            source=source,
            program=parse_program(source),
            expect_rules=rules,
            description=description,
        )
    return corpus

"""Observability: span tracing, metrics, and exporters (``repro.obs``).

Disabled by default.  Instrumented code throughout the pipeline calls
:func:`span` / :func:`counter` / :func:`gauge` / :func:`histogram`;
when no session is active these return shared null instruments whose
methods are no-ops, so the disabled path costs one module-global read
per call site (and the hottest loops — wave exploration, the concrete
scheduler — accumulate locally and record once per run, so they pay
nothing per iteration).

Enable for a scope with::

    from repro import obs

    with obs.observed() as session:
        repro.analyze(source)
    print(session.tracer.render())
    print(session.registry.counter_value("refined.scc_passes"))

or imperatively with :func:`enable` / :func:`disable`.  Sessions nest:
``observed()`` restores whatever was active before.  Export snapshots
with :mod:`repro.obs.export`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import NULL_SPAN, Span, Tracer

__all__ = [
    "ObsSession",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "counter",
    "current",
    "disable",
    "enable",
    "gauge",
    "histogram",
    "is_enabled",
    "observed",
    "snapshot",
    "span",
]


@dataclass
class ObsSession:
    """One observed scope: a metrics registry plus a tracer."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)


_active: Optional[ObsSession] = None


def is_enabled() -> bool:
    return _active is not None


def current() -> Optional[ObsSession]:
    return _active


def enable(session: Optional[ObsSession] = None) -> ObsSession:
    """Activate ``session`` (a fresh one by default) and return it."""
    global _active
    _active = session if session is not None else ObsSession()
    return _active


def disable() -> None:
    global _active
    _active = None


@contextmanager
def observed(
    session: Optional[ObsSession] = None,
) -> Iterator[ObsSession]:
    """Enable observability for a ``with`` block, then restore."""
    global _active
    previous = _active
    _active = session if session is not None else ObsSession()
    try:
        yield _active
    finally:
        _active = previous


def snapshot() -> Optional[dict]:
    """The JSON metrics snapshot of the active session, or ``None``.

    Convenience for long-lived processes (:mod:`repro.server`) that
    surface their counters over a status endpoint without importing the
    export module at every call site.
    """
    if _active is None:
        return None
    from .export import session_to_dict

    return session_to_dict(_active)


def span(name: str, **attributes: Any):
    """Open a timed span (no-op context manager when disabled)."""
    if _active is None:
        return NULL_SPAN
    return _active.tracer.span(name, **attributes)


def counter(name: str, **labels: str) -> Counter:
    if _active is None:
        return NULL_COUNTER
    return _active.registry.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    if _active is None:
        return NULL_GAUGE
    return _active.registry.gauge(name, **labels)


def histogram(name: str, **labels: str) -> Histogram:
    if _active is None:
        return NULL_HISTOGRAM
    return _active.registry.histogram(name, **labels)

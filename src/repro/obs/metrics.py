"""Metrics primitives: counters, gauges, histograms, and a registry.

Zero-dependency and deliberately small.  A :class:`MetricsRegistry`
owns every instrument created through it; instruments are keyed by
``(name, labels)`` so repeated ``registry.counter("x", rule="seq")``
calls return the same object.  When observability is disabled the
module-level null instruments absorb writes at the cost of a single
no-op method call, keeping the instrumented hot paths cheap.

Naming convention (see docs/OBSERVABILITY.md): dotted lowercase names,
``<layer>.<quantity>`` — e.g. ``refined.scc_passes``,
``explore.states_visited`` — with label keys for per-rule or per-phase
breakdowns rather than name suffixes.

Instruments and the registry are **thread-safe**: the daemon's worker
pool mutates shared counters from several threads, and an unguarded
``self.value += amount`` is a read-modify-write that loses updates
under contention.  Every instrument guards its mutation with a small
per-instrument lock, and the registry guards instrument creation so
two threads asking for the same ``(name, labels)`` always get the same
object.  The single-threaded cost is one uncontended lock acquire per
write — and the hottest loops (wave exploration, the concrete
scheduler) already accumulate locally and record once per run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "labels_key",
]

LabelsKey = Tuple[Tuple[str, str], ...]


def labels_key(labels: Dict[str, str]) -> LabelsKey:
    """Canonical hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: LabelsKey = ()
    value: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    labels: LabelsKey = ()
    value: float = 0.0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


@dataclass
class Histogram:
    """Streaming summary of observed samples (count/sum/min/max).

    Bucketless on purpose: the consumers here diff aggregate shapes
    across runs rather than plot quantiles, and buckets would force a
    schema choice on every instrumentation site.
    """

    name: str
    labels: LabelsKey = ()
    count: int = 0
    sum: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _NullCounter(Counter):
    def inc(self, amount: int = 1) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:  # noqa: ARG002
        pass


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


@dataclass
class MetricsRegistry:
    """Process-local home for every instrument of one observed scope."""

    counters: Dict[Tuple[str, LabelsKey], Counter] = field(default_factory=dict)
    gauges: Dict[Tuple[str, LabelsKey], Gauge] = field(default_factory=dict)
    histograms: Dict[Tuple[str, LabelsKey], Histogram] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        # Guards instrument *creation*: two threads racing on the same
        # (name, labels) must get the same object, or one side's writes
        # land on an instrument the registry never exports.
        self._lock = threading.Lock()

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, labels_key(labels))
        with self._lock:
            found = self.counters.get(key)
            if found is None:
                found = self.counters[key] = Counter(name, key[1])
        return found

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, labels_key(labels))
        with self._lock:
            found = self.gauges.get(key)
            if found is None:
                found = self.gauges[key] = Gauge(name, key[1])
        return found

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, labels_key(labels))
        with self._lock:
            found = self.histograms.get(key)
            if found is None:
                found = self.histograms[key] = Histogram(name, key[1])
        return found

    def iter_instruments(
        self,
    ) -> Iterator[Union[Counter, Gauge, Histogram]]:
        # Snapshot the value views under the lock so exporters never
        # iterate a dict another thread is growing.
        with self._lock:
            instruments: List[Union[Counter, Gauge, Histogram]] = [
                *self.counters.values(),
                *self.gauges.values(),
                *self.histograms.values(),
            ]
        yield from instruments

    def counter_value(self, name: str, **labels: str) -> int:
        """Read a counter without creating it (0 when absent)."""
        with self._lock:
            found = self.counters.get((name, labels_key(labels)))
        return found.value if found is not None else 0

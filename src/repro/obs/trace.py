"""Nested timed spans: where does one analysis run spend its time?

A :class:`Tracer` records a forest of :class:`Span` objects.  Spans are
opened with the ``Tracer.span`` context manager and nest by dynamic
scope — a span opened while another is active becomes its child, so
``api.analyze``'s phase spans naturally contain the spans opened inside
the algorithms they call.

Span names follow the same dotted convention as metric names
(``analyze.parse``, ``refined.scc``); attributes carry small
per-span facts (node counts, algorithm names) — never large objects.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN"]


@dataclass
class Span:
    """One timed region.  ``duration_s`` is None while still open."""

    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: Optional[float] = None
    children: List["Span"] = field(default_factory=list)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanHandle:
    """Context manager that closes ``span`` and pops the tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._span.duration_s = time.perf_counter() - self._span.start_s
        stack = self._tracer._stack
        if stack and stack[-1] is self._span:
            stack.pop()


class _NullSpanHandle:
    """Shared no-op span for the disabled path: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN_OBJ

    def __exit__(self, *exc_info: object) -> None:
        pass


class _NullSpan(Span):
    def set_attribute(self, key: str, value: Any) -> None:  # noqa: ARG002
        pass


_NULL_SPAN_OBJ = _NullSpan("null")
NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Collects a forest of spans for one observed scope."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        span = Span(
            name=name, attributes=dict(attributes), start_s=time.perf_counter()
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def all_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [root.to_dict() for root in self.roots]

    def render(self) -> str:
        """Human-readable span tree with millisecond durations."""
        lines: List[str] = []

        def emit(span: Span, depth: int) -> None:
            dur = (
                f"{span.duration_s * 1000:8.2f} ms"
                if span.duration_s is not None
                else "   (open)  "
            )
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            )
            pad = "  " * depth
            lines.append(
                f"{dur}  {pad}{span.name}" + (f"  [{attrs}]" if attrs else "")
            )
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)

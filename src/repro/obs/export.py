"""Exporters: stable-schema JSON dict and Prometheus text format.

The JSON form is what the CLI folds into ``--json`` output (under
``"metrics"``) and writes for ``--metrics-out file.json``; its schema
is versioned independently of the report schema so dashboards can gate
on it.  The Prometheus form (``--metrics-out file.prom``) emits one
sample per line — ``name{labels} value`` — with names sanitized to the
Prometheus grammar (dots become underscores, counters get ``_total``).
"""

from __future__ import annotations

from typing import Any, Dict, List

from . import ObsSession
from .metrics import Counter, Gauge, Histogram, LabelsKey, MetricsRegistry
from .trace import Tracer

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "session_to_dict",
    "session_to_prometheus",
]

METRICS_SCHEMA_VERSION = 1


def _flat_key(name: str, labels: LabelsKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _span_seconds(tracer: Tracer) -> Dict[str, float]:
    """Total wall seconds per span name (summed over occurrences)."""
    totals: Dict[str, float] = {}
    for span in tracer.all_spans():
        if span.duration_s is None:
            continue
        totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
    return totals


def session_to_dict(session: ObsSession) -> Dict[str, Any]:
    """The versioned JSON snapshot of one observed scope."""
    registry = session.registry
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "counters": {
            _flat_key(c.name, c.labels): c.value
            for c in registry.counters.values()
        },
        "gauges": {
            _flat_key(g.name, g.labels): g.value
            for g in registry.gauges.values()
        },
        "histograms": {
            _flat_key(h.name, h.labels): {
                "count": h.count,
                "sum": h.sum,
                "min": h.min,
                "max": h.max,
                "mean": h.mean,
            }
            for h in registry.histograms.values()
        },
        "span_seconds": _span_seconds(session.tracer),
        "spans": session.tracer.to_dicts(),
    }


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch in "_:") else "_")
    sanitized = "".join(out)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _prom_labels(labels: LabelsKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _prom_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def session_to_prometheus(session: ObsSession) -> str:
    """Prometheus text exposition: one ``name{labels} value`` per line."""
    lines: List[str] = []
    registry: MetricsRegistry = session.registry
    for c in registry.counters.values():
        lines.append(
            f"{_prom_name(c.name)}_total{_prom_labels(c.labels)}"
            f" {_prom_value(c.value)}"
        )
    for g in registry.gauges.values():
        lines.append(
            f"{_prom_name(g.name)}{_prom_labels(g.labels)}"
            f" {_prom_value(g.value)}"
        )
    for h in registry.histograms.values():
        base = _prom_name(h.name)
        labels = _prom_labels(h.labels)
        lines.append(f"{base}_count{labels} {_prom_value(h.count)}")
        lines.append(f"{base}_sum{labels} {_prom_value(h.sum)}")
        if h.count:
            lines.append(f"{base}_min{labels} {_prom_value(h.min)}")
            lines.append(f"{base}_max{labels} {_prom_value(h.max)}")
    for name, seconds in sorted(_span_seconds(session.tracer).items()):
        lines.append(
            f'repro_span_seconds{{span="{name}"}} {_prom_value(seconds)}'
        )
    return "\n".join(lines) + ("\n" if lines else "")

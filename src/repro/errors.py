"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LexError(ReproError):
    """Raised when the ADL lexer encounters an invalid character."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(ReproError):
    """Raised when the ADL parser encounters a malformed program."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        loc = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{loc}")
        self.line = line
        self.column = column


class ValidationError(ReproError):
    """Raised when an AST violates the paper's program model.

    Examples: a ``send`` naming an unknown task, a task sending a
    message to itself, or duplicate task names.
    """


class IrreducibleFlowError(ReproError):
    """Raised when a control flow graph is not reducible.

    The paper (following Hecht 1977) assumes each loop has a single
    entry point; analyses refuse irreducible flow rather than produce
    unsound answers.
    """


class AnalysisError(ReproError):
    """Raised when a static analysis is handed input it cannot process."""


class UnknownTaskError(ReproError):
    """Raised when a task name does not belong to the sync graph.

    Replaces the bare ``ValueError`` that ``list.index`` used to leak
    out of :meth:`repro.waves.wave.Wave.position_of`.
    """

    def __init__(self, task: str, known: tuple) -> None:
        super().__init__(
            f"unknown task {task!r}; sync graph tasks are {list(known)}"
        )
        self.task = task
        self.known = known


class ExplorationLimitError(ReproError):
    """Raised when exhaustive wave exploration exceeds its state budget.

    Exhaustive exploration is exponential (the point of the paper); the
    limit keeps the exact baseline usable as a test oracle on small
    programs while failing loudly instead of hanging on large ones.

    ``result`` carries everything learned before the budget ran out (an
    :class:`~repro.waves.explore.ExplorationResult` with
    ``limited=True``) when the raising search tracked partials, else
    ``None``.  Anomalies found before exhaustion are definite; absence
    of anomalies and a ``False`` ``can_terminate`` are inconclusive.
    """

    def __init__(self, limit: int, result: object = None) -> None:
        super().__init__(
            f"feasible-wave exploration exceeded the budget of {limit} states"
        )
        self.limit = limit
        self.result = result


class SimulationError(ReproError):
    """Raised when the runtime interpreter is misconfigured."""

"""Session state: documents, cached pipeline artifacts, invalidation.

A :class:`Session` is the daemon's memory.  It owns

* **documents** keyed by URI with version numbers, each caching the
  algorithm-independent front half of the pipeline
  (:class:`repro.api.PreparedProgram`) plus the shared
  :class:`~repro.analysis.index.AnalysisIndex` and
  :class:`~repro.waves.engine.WaveIndex` kernels, built lazily and
  reused across requests;
* a **resident result front** — one :class:`repro.farm.cache.LruFront`
  keyed by the farm's content-addressed :func:`cache_key`, holding
  ``(AnalysisResult, report payload)`` pairs so a repeat ``analyze`` of
  an unchanged document is answered without re-running anything;
* an optional **disk store** (the farm :class:`ResultCache`) consulted
  below the front, so a restarted daemon is warm for any program it —
  or a batch run — has ever analyzed.

Incremental invalidation lives in :meth:`Document.apply_change`: a
``didChange`` carries the new text and optionally the edited source
ranges.  The edit keeps the cached parse/CLG/indexes (*partial*
invalidation) exactly when the new text still canonicalises to the same
program — whitespace/comment-only edits and formatting churn — with the
end-to-end spans the lint layer threads through the AST used to label
the cheap case (every edited range outside every task/procedure
declaration span).  Anything that changes the canonical program is a
*full* invalidation of that one document; other documents are never
touched.

**Multi-client namespaces.**  Document tables are keyed per client
(the ``client`` field on protocol requests; HTTP clients default to a
per-address id), so two editors opening ``mem:a`` with different
buffers never clobber each other.  The expensive shared state — the
resident :class:`LruFront` and the disk store — is content-addressed
and deliberately *crosses* namespaces: the same program analyzed by
any client warms every other.

**Thread safety.**  The daemon's worker pool serves requests from
several threads.  Session-level mutable state (the namespace table,
the plain counters) is guarded by one session lock; each
:class:`Document` carries an ``RLock`` held for the whole of any
operation that reads or rebuilds its layered caches, so requests for
the *same* document serialize (preserving warm-cache semantics) while
requests for different documents run concurrently.  The shared
``LruFront``/``ResultCache`` lock themselves.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..api import (
    ALGORITHMS,
    INDEX_AWARE,
    AnalysisResult,
    PreparedProgram,
    analyze_prepared,
    prepare,
)
from ..errors import ReproError
from ..farm.cache import LruFront, ResultCache, cache_key
from ..farm.pool import (
    STATUS_OK,
    STATUS_TIMEOUT,
    SharedProcessPool,
    WorkItem,
    run_pool,
)
from ..lang.ast_nodes import Program
from ..lang.parser import parse_program
from ..lang.pretty import pretty
from ..waves.guide import validate_strategy
from ..reporting import analysis_result_to_dict, repair_report_to_dict
from .protocol import PROTOCOL_VERSION, RequestTimeout
from .scheduler import DEFAULT_CLIENT

__all__ = ["Document", "Session", "INVALIDATION_KINDS"]

INVALIDATION_KINDS = ("none", "partial", "full")


def _spans_overlap(a, b) -> bool:
    """Whether two 1-based, end-exclusive source regions intersect."""
    a_start, a_end = (a.line, a.column), (a.end_line, a.end_column)
    b_start, b_end = (b.line, b.column), (b.end_line, b.end_column)
    return a_start < b_end and b_start < a_end


class _Range:
    """One edited region from ``didChange`` params (duck-typed Span)."""

    __slots__ = ("line", "column", "end_line", "end_column")

    def __init__(self, raw: Dict[str, Any]) -> None:
        try:
            self.line = int(raw["start_line"])
            self.column = int(raw.get("start_column", 1))
            self.end_line = int(raw.get("end_line", self.line))
            self.end_column = int(raw.get("end_column", self.column + 1))
        except (KeyError, TypeError, ValueError):
            raise ValueError(
                "didChange range needs integer start_line (and optional "
                "start_column/end_line/end_column)"
            ) from None


class Document:
    """One open source buffer and everything derived from it.

    Derived state is strictly layered: ``program`` (the parse of the
    exact source, spans intact) feeds ``prepared`` (inline + validate +
    unroll + sync graph), which feeds the shared ``index`` (CLG bitset
    kernels) and ``engine`` (packed-wave kernels).  A partial
    invalidation replaces only the bottom layer — source text and its
    parse, whose spans an edit shifts — and keeps everything above,
    because the canonical program those layers were built from did not
    change.
    """

    def __init__(self, uri: str, text: str, version: int = 1) -> None:
        self.uri = uri
        self.version = version
        self.source = text
        self.opened_at = time.time()
        self.rebuilds = 0  # full pipeline invalidations survived
        # Held for the whole of any session operation on this document:
        # same-document requests serialize (lazy layers build once,
        # warm-cache progressions stay deterministic), different
        # documents proceed in parallel.  RLock because analyze →
        # repair style nesting re-enters from the same worker thread.
        self.lock = threading.RLock()
        self._reset()

    # -- cached layers ---------------------------------------------------

    def _reset(self) -> None:
        self._program: Optional[Program] = None
        self._canonical: Optional[str] = None
        self._prepared: Optional[PreparedProgram] = None
        self._index = None
        self._engine = None
        self._lint_cache: Dict[Tuple, Any] = {}

    def program(self) -> Program:
        """The parsed AST of the current source (cached; spans intact)."""
        if self._program is None:
            self._program = parse_program(self.source)
        return self._program

    def canonical(self) -> str:
        """The whitespace/comment-neutral form of the current source."""
        if self._canonical is None:
            self._canonical = pretty(self.program())
        return self._canonical

    def prepared(self) -> PreparedProgram:
        """The algorithm-independent pipeline front half (cached)."""
        if self._prepared is None:
            self._prepared = prepare(self.program())
        return self._prepared

    def index(self):
        """The shared :class:`AnalysisIndex` over the prepared graph."""
        if self._index is None:
            from ..analysis.index import AnalysisIndex

            self._index = AnalysisIndex(self.prepared().sync_graph)
        return self._index

    def engine(self):
        """The shared :class:`WaveIndex` over the exact-search graph."""
        if self._engine is None:
            from ..waves.engine import WaveIndex

            self._engine = WaveIndex(self.prepared().exact_graph)
        return self._engine

    def artifacts(self) -> Dict[str, bool]:
        """Which cached layers currently exist (status introspection)."""
        return {
            "program": self._program is not None,
            "prepared": self._prepared is not None,
            "index": self._index is not None,
            "engine": self._engine is not None,
        }

    # -- invalidation ----------------------------------------------------

    def apply_change(
        self,
        text: str,
        version: Optional[int] = None,
        ranges: Optional[Sequence[Dict[str, Any]]] = None,
    ) -> Tuple[str, str]:
        """Replace the source; decide how much cached state survives.

        Returns ``(kind, reason)`` with ``kind`` one of
        :data:`INVALIDATION_KINDS`:

        * ``"none"`` — byte-identical text; nothing dropped.
        * ``"partial"`` — the text changed but canonicalises to the
          same program (whitespace/comments/formatting, or an edit
          entirely outside every task/procedure declaration span).
          The parse is refreshed so spans track the new text, and the
          per-source lint cache drops (suppression comments and
          diagnostic spans are layout-sensitive), but the prepared
          pipeline, ``AnalysisIndex`` and ``WaveIndex`` all survive —
          as do the content-addressed analysis results, whose key is
          the canonical form.
        * ``"full"`` — the canonical program changed (or stopped
          parsing): every derived layer of *this document* is dropped.
        """
        self.version = version if version is not None else self.version + 1
        if text == self.source:
            return "none", "identical-text"

        outside = self._edit_outside_decls(ranges)
        old_canonical: Optional[str]
        try:
            old_canonical = self.canonical()
        except ReproError:
            old_canonical = None

        self.source = text
        try:
            new_program = parse_program(text)
        except ReproError:
            self._reset()
            self.rebuilds += 1
            return "full", "parse-error"

        if old_canonical is not None and pretty(new_program) == old_canonical:
            # Same canonical program: keep prepared/index/engine, swap
            # in the fresh parse so spans match the new layout.
            self._program = new_program
            self._canonical = old_canonical
            self._lint_cache = {}
            reason = (
                "edit-outside-declarations"
                if outside
                else "whitespace-or-comments"
            )
            return "partial", reason

        self._reset()
        self._program = new_program
        self.rebuilds += 1
        return "full", "semantic-edit"

    def _edit_outside_decls(
        self, ranges: Optional[Sequence[Dict[str, Any]]]
    ) -> bool:
        """True when every edited range misses every declaration span.

        Uses the end-to-end spans the lint layer threads through the
        AST (``TaskDecl.decl_loc`` covers the whole ``task … end;``
        region).  Conservative in both directions: no ranges → False
        (nothing claimed), span-less declarations → False.
        """
        if not ranges:
            return False
        try:
            program = self.program()
        except ReproError:
            return False
        decl_spans = []
        for task in program.tasks:
            span = task.decl_loc or task.loc
            if span is None:
                return False
            decl_spans.append(span)
        for proc in program.procedures:
            if proc.loc is None:
                return False
            decl_spans.append(proc.loc)
        try:
            edits = [_Range(raw) for raw in ranges]
        except ValueError:
            return False
        return all(
            not _spans_overlap(edit, span)
            for edit in edits
            for span in decl_spans
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "uri": self.uri,
            "version": self.version,
            "bytes": len(self.source),
            "rebuilds": self.rebuilds,
            "artifacts": self.artifacts(),
        }


class Session:
    """All resident daemon state plus the request-serving logic."""

    def __init__(
        self,
        store: Optional[ResultCache] = None,
        lru_entries: int = 256,
        compute: Optional[SharedProcessPool] = None,
    ) -> None:
        self._namespaces: Dict[str, Dict[str, Document]] = {
            DEFAULT_CLIENT: {}
        }
        self.store = store
        self.lru = LruFront(max_entries=lru_entries)
        self.compute = compute
        self.started_at = time.time()
        # Guards the namespace table and the plain counters; never held
        # across an analysis (document locks cover those).
        self._lock = threading.RLock()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "cache_hits": 0,
            "store_hits": 0,
            "computed": 0,
            "offloaded": 0,
            "cancelled": 0,
            "lint_cache_hits": 0,
            "lint_runs": 0,
            "repairs": 0,
            "invalidations_none": 0,
            "invalidations_partial": 0,
            "invalidations_full": 0,
        }

    # -- namespaces ------------------------------------------------------

    @property
    def documents(self) -> Dict[str, Document]:
        """The default client's document table (single-client callers)."""
        return self._docs(DEFAULT_CLIENT)

    def _docs(self, client: Optional[str]) -> Dict[str, Document]:
        name = client or DEFAULT_CLIENT
        with self._lock:
            docs = self._namespaces.get(name)
            if docs is None:
                docs = self._namespaces[name] = {}
            return docs

    def namespaces(self) -> Dict[str, Dict[str, Document]]:
        """Snapshot of every client's document table."""
        with self._lock:
            return {
                client: dict(docs)
                for client, docs in self._namespaces.items()
            }

    # -- counters --------------------------------------------------------

    def _count(self, name: str, obs_name: str) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + 1
        if obs.is_enabled():
            obs.counter(obs_name).inc()

    def _document_count(self) -> int:
        with self._lock:
            return sum(len(docs) for docs in self._namespaces.values())

    def _update_gauges(self) -> None:
        if obs.is_enabled():
            obs.gauge("server.documents").set(self._document_count())
            obs.gauge("server.lru.entries").set(len(self.lru))

    # -- document lifecycle ----------------------------------------------

    def open_document(
        self,
        uri: str,
        text: str,
        version: int = 1,
        client: Optional[str] = None,
    ) -> Document:
        doc = Document(uri, text, version=version)
        self._docs(client)[uri] = doc
        self._update_gauges()
        return doc

    def change_document(
        self,
        uri: str,
        text: str,
        version: Optional[int] = None,
        ranges: Optional[Sequence[Dict[str, Any]]] = None,
        client: Optional[str] = None,
    ) -> Dict[str, Any]:
        doc = self._docs(client).get(uri)
        if doc is None:
            doc = self.open_document(
                uri, text, version=version or 1, client=client
            )
            kind, reason = "full", "opened"
            self._count("invalidations_full", "server.invalidations.full")
        else:
            with doc.lock:
                kind, reason = doc.apply_change(text, version, ranges)
            self._count(
                f"invalidations_{kind}", f"server.invalidations.{kind}"
            )
        return {
            "uri": uri,
            "version": doc.version,
            "invalidation": kind,
            "reason": reason,
        }

    def close_document(
        self, uri: str, client: Optional[str] = None
    ) -> bool:
        existed = self._docs(client).pop(uri, None) is not None
        self._update_gauges()
        return existed

    def _resolve(
        self,
        uri: Optional[str],
        text: Optional[str],
        client: Optional[str] = None,
    ) -> Document:
        """The document a request targets, opening/updating as needed."""
        docs = self._docs(client)
        if text is not None:
            uri = uri or "untitled:adhoc"
            doc = docs.get(uri)
            if doc is None:
                return self.open_document(uri, text, client=client)
            with doc.lock:
                if text != doc.source:
                    kind, _ = doc.apply_change(text)
                    self._count(
                        f"invalidations_{kind}",
                        f"server.invalidations.{kind}",
                    )
            return doc
        if uri is None:
            raise ValueError("request needs a 'uri' or a 'text' param")
        doc = docs.get(uri)
        if doc is not None:
            return doc
        path = Path(uri)
        if path.is_file():
            return self.open_document(uri, path.read_text(), client=client)
        raise ValueError(
            f"unknown document {uri!r} (didOpen it, pass 'text', or "
            "use a readable file path)"
        )

    # -- analyze ---------------------------------------------------------

    def analyze_document(
        self,
        uri: Optional[str] = None,
        text: Optional[str] = None,
        algorithm: str = "refined",
        exact: bool = False,
        state_limit: int = 200_000,
        backend: str = "index",
        timeout: Optional[float] = None,
        strategy: str = "bfs",
        beam_width: Optional[int] = None,
        client: Optional[str] = None,
    ) -> Tuple[Dict[str, Any], str]:
        """One ``analyze`` request: ``(report payload, cache source)``.

        The payload is exactly
        :func:`repro.reporting.analysis_result_to_dict` — what the
        one-shot CLI prints with ``--json``.  Cache source is
        ``"memory"`` (resident LRU — no re-parse, no re-index),
        ``"store"`` (content-addressed disk entry from an earlier
        daemon run or batch), or ``"computed"``.  ``strategy`` /
        ``beam_width`` steer exact exploration exactly like
        :func:`repro.api.analyze`; they are part of the cache key.
        """
        result, payload, cache = self._analysis(
            self._resolve(uri, text, client),
            algorithm=algorithm,
            exact=exact,
            state_limit=state_limit,
            backend=backend,
            timeout=timeout,
            strategy=strategy,
            beam_width=beam_width,
        )
        return payload, cache

    def _analysis(
        self,
        doc: Document,
        algorithm: str,
        exact: bool,
        state_limit: int,
        backend: str,
        timeout: Optional[float] = None,
        strategy: str = "bfs",
        beam_width: Optional[int] = None,
    ) -> Tuple[AnalysisResult, Dict[str, Any], str]:
        if algorithm != "exact" and algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose one of "
                f"{sorted(ALGORITHMS)} or 'exact'"
            )
        validate_strategy(strategy, beam_width)
        with doc.lock:
            key = cache_key(
                doc.program(),
                algorithm=algorithm,
                state_limit=state_limit,
                exact=exact,
                strategy=strategy,
                beam_width=beam_width,
            )
            cached = self.lru.get(key)
            if cached is not None:
                self._count("cache_hits", "server.cache_hits")
                return cached[0], cached[1], "memory"
            if self.store is not None:
                result = self.store.get(key)
                if result is not None:
                    payload = analysis_result_to_dict(result)
                    self.lru.put(key, (result, payload))
                    self._count("store_hits", "server.store_hits")
                    return result, payload, "store"

            result = None
            if timeout is not None:
                # Any request with a wall-clock budget runs in its own
                # pool process so an overrun is terminated preemptively
                # — for every algorithm, not just exact exploration (a
                # refined-only timeout used to be silently dropped).
                result = self._analyze_pooled(
                    doc, algorithm, exact, state_limit, backend, timeout,
                    strategy=strategy, beam_width=beam_width,
                )
            elif self.compute is not None and not doc.artifacts()["prepared"]:
                # Cold document + a shared compute pool (multi-worker
                # daemon): offload the whole pipeline to a process so
                # concurrent clients use real cores instead of
                # contending for the GIL.  Warm documents stay
                # in-process where their resident kernels live.
                result = self._analyze_offloaded(
                    doc, algorithm, exact, state_limit, backend,
                    strategy=strategy, beam_width=beam_width,
                )
            if result is None:
                is_exact = exact or algorithm == "exact"
                prep = doc.prepared()
                index = (
                    doc.index()
                    if backend == "index"
                    and not is_exact
                    and algorithm in INDEX_AWARE
                    else None
                )
                engine = (
                    doc.engine()
                    if backend == "index" and is_exact
                    else None
                )
                result = analyze_prepared(
                    prep,
                    algorithm=algorithm,
                    exact=exact,
                    state_limit=state_limit,
                    backend=backend,
                    index=index,
                    engine=engine,
                    uri=doc.uri,
                    strategy=strategy,
                    beam_width=beam_width,
                )
            payload = analysis_result_to_dict(result)
            self.lru.put(key, (result, payload))
            if self.store is not None:
                self.store.put(key, result)
            self._count("computed", "server.computed")
            self._update_gauges()
            return result, payload, "computed"

    def _analyze_offloaded(
        self,
        doc: Document,
        algorithm: str,
        exact: bool,
        state_limit: int,
        backend: str,
        strategy: str = "bfs",
        beam_width: Optional[int] = None,
    ) -> Optional[AnalysisResult]:
        """Try one analysis on the shared compute pool.

        Returns ``None`` to fall back in-process: a failed item
        re-raises its typed error there (identical message to a
        non-offloaded run), and a crashed/broken pool degrades to the
        GIL-bound path rather than the request failing.
        """
        outcome = self.compute.run(
            WorkItem(
                label=doc.uri,
                source=doc.source,
                algorithm=algorithm,
                exact=exact,
                state_limit=state_limit,
                backend=backend,
                strategy=strategy,
                beam_width=beam_width,
            )
        )
        if outcome.status != STATUS_OK:
            return None
        self._count("offloaded", "server.offloaded")
        return outcome.result

    def _analyze_pooled(
        self,
        doc: Document,
        algorithm: str,
        exact: bool,
        state_limit: int,
        backend: str,
        timeout: float,
        strategy: str = "bfs",
        beam_width: Optional[int] = None,
    ) -> AnalysisResult:
        """Run one exact-exploration request under a preemptive budget.

        Reuses the farm pool: a worker process runs the analysis, and
        an overrun is terminated from outside — the only way to bound
        an exponential search that ignores cooperative deadlines.
        """
        item = WorkItem(
            label=doc.uri,
            source=doc.source,
            algorithm=algorithm,
            exact=exact,
            state_limit=state_limit,
            backend=backend,
            strategy=strategy,
            beam_width=beam_width,
        )
        outcome = run_pool([item], jobs=2, timeout=timeout)[0]
        if outcome.status == STATUS_TIMEOUT:
            raise RequestTimeout(
                f"request exceeded its {timeout}s budget ({doc.uri})"
            )
        if outcome.status != STATUS_OK:
            raise ReproError(
                outcome.error or f"analysis {outcome.status} ({doc.uri})"
            )
        return outcome.result

    # -- lint ------------------------------------------------------------

    def lint_document(
        self,
        uri: Optional[str] = None,
        text: Optional[str] = None,
        disable: Sequence[str] = (),
        select: Optional[Sequence[str]] = None,
        sarif: bool = False,
        client: Optional[str] = None,
    ) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]], str]:
        """One ``lint`` request: ``(payload, sarif doc or None, cache)``.

        The payload is :func:`repro.lint.output.lint_to_dict` — the CLI
        ``--lint --json`` stdout — with the document URI as the
        diagnostic path / SARIF ``artifactLocation`` (synthetic URIs
        for unsaved buffers pass through untouched).
        """
        from ..lint import lint_to_dict, run_lint, sarif_report

        doc = self._resolve(uri, text, client)
        with doc.lock:
            key = (
                tuple(disable),
                tuple(select) if select is not None else None,
            )
            result = doc._lint_cache.get(key)
            if result is not None:
                cache = "memory"
                self._count("lint_cache_hits", "server.lint_cache_hits")
            else:
                cache = "computed"
                result = run_lint(
                    doc.program(),
                    source=doc.source,
                    path=doc.uri,
                    disable=disable,
                    select=select,
                )
                doc._lint_cache[key] = result
                self._count("lint_runs", "server.lint_runs")
            sarif_doc = sarif_report([result]) if sarif else None
            return lint_to_dict(result), sarif_doc, cache

    # -- repair ----------------------------------------------------------

    def repair_document(
        self,
        uri: Optional[str] = None,
        text: Optional[str] = None,
        algorithm: str = "refined",
        backend: str = "index",
        state_limit: int = 200_000,
        max_fixes: int = 5,
        strategy: str = "bfs",
        beam_width: Optional[int] = None,
        client: Optional[str] = None,
    ) -> Tuple[Dict[str, Any], str]:
        """One ``repair`` request: the CLI ``--suggest-fixes --json``
        payload (analysis report + ``"repair"`` key), cache-aware.

        The underlying analysis comes from the resident front when the
        document is unchanged; only the repair synthesis itself re-runs
        on a cold repair key.
        """
        from ..repair import suggest_repairs

        doc = self._resolve(uri, text, client)
        repair_algorithm = "refined" if algorithm == "exact" else algorithm
        with doc.lock:
            result, payload, cache = self._analysis(
                doc,
                algorithm=algorithm,
                exact=False,
                state_limit=state_limit,
                backend=backend,
            )
            repair_key = "repair:" + cache_key(
                doc.program(),
                algorithm=repair_algorithm,
                state_limit=state_limit,
                strategy=strategy,
                beam_width=beam_width,
            ) + f":{max_fixes}"
            cached = self.lru.get(repair_key)
            if cached is not None:
                self._count("cache_hits", "server.cache_hits")
                return cached[1], "memory"
            report = suggest_repairs(
                result=result,
                algorithm=repair_algorithm,
                backend=backend,
                state_limit=state_limit,
                max_fixes=max_fixes,
                strategy=strategy,
                beam_width=beam_width,
            )
            # Re-render through the same reporting entry point the CLI
            # uses so the repair-bearing payload is byte-identical to
            # ``--suggest-fixes --json``.
            full = analysis_result_to_dict(result, repair=report)
            self.lru.put(repair_key, (report, full))
            self._count("repairs", "server.repairs")
            return full, cache

    # -- batch -----------------------------------------------------------

    def run_batch(
        self,
        items: Optional[Sequence[Dict[str, Any]]] = None,
        paths: Optional[Sequence[str]] = None,
        algorithm: str = "refined",
        state_limit: int = 200_000,
        jobs: int = 1,
        timeout: Optional[float] = None,
        backend: str = "index",
        lint: bool = False,
    ) -> Dict[str, Any]:
        """One ``batch`` request through the farm runner.

        ``items`` are in-memory ``{"label", "text"}`` pairs; ``paths``
        are files/dirs/globs collected exactly like the CLI ``--batch``
        positionals.  The farm reuses the session's disk store, so
        batch results warm the daemon and vice versa.
        """
        from ..farm.runner import collect_sources, run_batch

        pairs: List[Tuple[str, str]] = []
        if items:
            for i, item in enumerate(items):
                if "text" not in item:
                    raise ValueError(f"batch item {i} needs 'text'")
                pairs.append(
                    (str(item.get("label", f"item-{i}")), item["text"])
                )
        if paths:
            pairs.extend(collect_sources(paths))
        if not pairs:
            raise ValueError("batch needs 'items' or 'paths'")
        report = run_batch(
            pairs,
            algorithm=algorithm,
            state_limit=state_limit,
            jobs=jobs,
            timeout=timeout,
            cache=self.store if self.store is not None else False,
            backend=backend,
            lint=lint,
        )
        return report.to_dict()

    # -- status / flush --------------------------------------------------

    def status(self) -> Dict[str, Any]:
        self._update_gauges()
        namespaces = self.namespaces()
        with self._lock:
            counters = dict(self.counters)
        payload: Dict[str, Any] = {
            "protocol_version": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
            # Flat view (single-client payload shape unchanged): the
            # default namespace's documents, as every stdio client sees.
            "documents": [
                doc.to_dict()
                for doc in namespaces.get(DEFAULT_CLIENT, {}).values()
            ],
            "clients": {
                client: sorted(docs)
                for client, docs in sorted(namespaces.items())
                if docs
            },
            "counters": counters,
            "lru": self.lru.snapshot(),
            "store": (
                {
                    "dir": str(self.store.cache_dir),
                    "stats": self.store.stats.to_dict(),
                    "front": self.store.front.snapshot(),
                }
                if self.store is not None
                else None
            ),
            "algorithms": sorted(ALGORITHMS) + ["exact"],
        }
        metrics = obs.snapshot()
        if metrics is not None:
            payload["metrics"] = {
                "counters": metrics["counters"],
                "gauges": metrics["gauges"],
            }
        return payload

    def flush(self) -> int:
        """Persist resident results the disk store does not yet have.

        Stores are write-through, so this usually writes nothing; it
        exists for the shutdown path, where it guarantees the next
        daemon start is as warm as this one ended.
        """
        if self.store is None:
            return 0
        written = 0
        for key, value in self.lru.items():
            result = value[0]
            # Repair payload entries ride the LRU under "repair:" keys
            # but are not AnalysisResults; the store only takes those.
            if key.startswith("repair:"):
                continue
            if not self.store.on_disk(key):
                self.store.put(key, result)
                written += 1
        return written

"""The daemon proper: request loop, worker pool, graceful shutdown.

Structure::

    stdin ──reader (main thread)──▶ FairScheduler ──worker threads──▶ stdout
    HTTP connection threads ──────▶      │
                                         └─▶ shared Session

The reader (or an HTTP connection thread) decodes each request and
submits it to the :class:`~repro.server.scheduler.FairScheduler`; a
bounded pool of **worker threads** drains it, runs the handler against
the shared :class:`~repro.server.session.Session`, and delivers one
response per request through the entry's transport continuation.  The
scheduler dispatches interactive requests ahead of ``batch`` sweeps and
round-robins across clients, so no client or bulk job can starve the
rest; within one client, requests stay FIFO.  The queue is bounded
(:data:`DEFAULT_QUEUE_SIZE`) — overflow is rejected immediately with
``SERVER_BUSY`` rather than silently buffered.

The default is **one worker** (:data:`DEFAULT_WORKERS`), which keeps
the original stdio contract: responses in strict per-client arrival
order, no concurrent session access.  With ``workers > 1`` the session
serves requests from several threads at once — per-document locks keep
same-document requests serialized while different documents proceed in
parallel, and cold analyses are offloaded to a shared process pool so
concurrent clients use real cores instead of contending for the GIL.

Cancellation (``cancel`` method, ``params.id`` = the target request's
id, same client namespace): a still-queued request is removed and
answered with code 1004 immediately; an in-flight request is marked —
its worker discards the handler result and answers 1004 when it
returns (caches stay warm; the work is not torn down mid-flight).
``cancel`` itself is handled on the transport thread, never queued —
it cannot wait behind the very request it is cancelling.

Shutdown is graceful from all three triggers — a ``shutdown`` request,
SIGTERM, or SIGINT: transports stop accepting input, the workers drain
every request already queued (each still gets its response), resident
results are flushed to the disk store, and the process exits 0.
Per-request wall-clock budgets (``params.timeout``) run in a farm
worker process so an overrun is terminated preemptively; a timed-out
request answers with code 1001 and the daemon keeps serving.
"""

from __future__ import annotations

import signal
import sys
import threading
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

from .. import obs
from ..errors import ReproError
from ..farm.pool import SharedProcessPool
from .protocol import (
    ANALYSIS_ERROR,
    INTERNAL_ERROR,
    INVALID_PARAMS,
    METHOD_NOT_FOUND,
    REQUEST_CANCELLED,
    REQUEST_TIMEOUT,
    SERVER_BUSY,
    SHUTTING_DOWN,
    ProtocolError,
    Request,
    RequestTimeout,
    decode_request,
    dumps,
    error_response,
    response,
)
from .scheduler import DEFAULT_CLIENT, FairScheduler, ScheduledRequest
from .session import Session

__all__ = [
    "AnalysisServer",
    "DEFAULT_QUEUE_SIZE",
    "DEFAULT_WORKERS",
    "serve_stdio",
]

DEFAULT_QUEUE_SIZE = 64
DEFAULT_WORKERS = 1


class _SignalStop(Exception):
    """Raised in the serving loop by SIGTERM/SIGINT handlers."""

    def __init__(self, signum: int) -> None:
        super().__init__(f"signal {signum}")
        self.signum = signum


class AnalysisServer:
    """One daemon instance: a session plus the request machinery.

    Usable three ways: :meth:`serve` runs the full stdio loop;
    :meth:`submit` feeds the worker pool from any transport thread
    (the HTTP front end); :meth:`handle_line` / :meth:`handle_request`
    process a single request synchronously (the protocol tests and
    golden transcripts drive these directly, no threads involved).
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        workers: int = DEFAULT_WORKERS,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        if session is None:
            # Multi-worker daemons get a shared compute pool so cold
            # analyses run on real cores; one worker keeps everything
            # in-process, exactly like the original daemon.
            compute = (
                SharedProcessPool(jobs=workers) if workers > 1 else None
            )
            session = Session(compute=compute)
        self.session = session
        self.scheduler = FairScheduler(max_pending=queue_size)
        self.shutting_down = threading.Event()
        self.flushed: Optional[int] = None
        self._write_lock = threading.Lock()
        # Guards the worker bookkeeping below, never held across work.
        self._state_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._inflight: Dict[Tuple[str, Any], ScheduledRequest] = {}
        self._busy = 0
        self._handlers = {
            "analyze": self._handle_analyze,
            "lint": self._handle_lint,
            "repair": self._handle_repair,
            "batch": self._handle_batch,
            "didOpen": self._handle_did_open,
            "didChange": self._handle_did_change,
            "didClose": self._handle_did_close,
            "cancel": self._handle_cancel,
            "status": self._handle_status,
            "ping": self._handle_ping,
            "shutdown": self._handle_shutdown,
        }

    # -- single-request path ---------------------------------------------

    def handle_line(self, line: str) -> Dict[str, Any]:
        """Decode and serve one request line; always returns a response."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            return error_response(None, exc.code, str(exc))
        return self.handle_request(request)

    def handle_request(
        self, request: Request, client: Optional[str] = None
    ) -> Dict[str, Any]:
        """Serve one decoded request; exceptions become error responses.

        ``client`` is the transport-assigned namespace; a ``"client"``
        field on the request itself wins over it.
        """
        self.session._count("requests", "server.requests")
        if obs.is_enabled():
            obs.counter("server.requests.by_method", method=request.method).inc()
        namespace = request.client or client or DEFAULT_CLIENT
        handler = self._handlers.get(request.method)
        if handler is None:
            return error_response(
                request.id,
                METHOD_NOT_FOUND,
                f"unknown method {request.method!r}; methods: "
                + ", ".join(sorted(self._handlers)),
            )
        try:
            return response(request.id, handler(request.params, namespace))
        except RequestTimeout as exc:
            return error_response(request.id, REQUEST_TIMEOUT, str(exc))
        except ReproError as exc:
            return error_response(
                request.id,
                ANALYSIS_ERROR,
                f"{type(exc).__name__}: {exc}",
            )
        except (TypeError, ValueError, KeyError) as exc:
            return error_response(request.id, INVALID_PARAMS, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            return error_response(
                request.id,
                INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}",
            )

    # -- handlers --------------------------------------------------------

    def _handle_analyze(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        beam_width = params.get("beam_width")
        payload, cache = self.session.analyze_document(
            uri=params.get("uri"),
            text=params.get("text"),
            algorithm=params.get("algorithm", "refined"),
            exact=bool(params.get("exact", False)),
            state_limit=int(params.get("state_limit", 200_000)),
            backend=params.get("backend", "index"),
            timeout=params.get("timeout"),
            strategy=params.get("strategy", "bfs"),
            beam_width=int(beam_width) if beam_width is not None else None,
            client=client,
        )
        return {"report": payload, "cache": cache}

    def _handle_lint(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        payload, sarif_doc, cache = self.session.lint_document(
            uri=params.get("uri"),
            text=params.get("text"),
            disable=params.get("disable", ()),
            select=params.get("select"),
            sarif=bool(params.get("sarif", False)),
            client=client,
        )
        result: Dict[str, Any] = {"report": payload, "cache": cache}
        if sarif_doc is not None:
            result["sarif"] = sarif_doc
        return result

    def _handle_repair(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        beam_width = params.get("beam_width")
        payload, cache = self.session.repair_document(
            uri=params.get("uri"),
            text=params.get("text"),
            algorithm=params.get("algorithm", "refined"),
            backend=params.get("backend", "index"),
            state_limit=int(params.get("state_limit", 200_000)),
            max_fixes=int(params.get("max_fixes", 5)),
            strategy=params.get("strategy", "bfs"),
            beam_width=int(beam_width) if beam_width is not None else None,
            client=client,
        )
        return {"report": payload, "cache": cache}

    def _handle_batch(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        return {
            "report": self.session.run_batch(
                items=params.get("items"),
                paths=params.get("paths"),
                algorithm=params.get("algorithm", "refined"),
                state_limit=int(params.get("state_limit", 200_000)),
                jobs=int(params.get("jobs", 1)),
                timeout=params.get("timeout"),
                backend=params.get("backend", "index"),
                lint=bool(params.get("lint", False)),
            )
        }

    def _handle_did_open(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        uri = params["uri"]
        doc = self.session.open_document(
            uri,
            params["text"],
            version=int(params.get("version", 1)),
            client=client,
        )
        return {"uri": uri, "version": doc.version, "opened": True}

    def _handle_did_change(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        return self.session.change_document(
            params["uri"],
            params["text"],
            version=params.get("version"),
            ranges=params.get("ranges"),
            client=client,
        )

    def _handle_did_close(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        uri = params["uri"]
        return {
            "uri": uri,
            "closed": self.session.close_document(uri, client=client),
        }

    def _handle_cancel(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        """Cancel a queued or in-flight request of the same client.

        Queued: removed outright, answered ``REQUEST_CANCELLED`` here
        and now.  In-flight: cooperatively marked; its worker answers
        1004 when the handler returns.  Unknown ids (already answered,
        never seen) report ``cancelled: false``.
        """
        if "id" not in params:
            raise ValueError("cancel needs params.id (the request to cancel)")
        target = params["id"]
        entry = self.scheduler.cancel(client, target)
        if entry is not None:
            entry.respond(
                error_response(
                    target,
                    REQUEST_CANCELLED,
                    f"request {target!r} cancelled while queued",
                )
            )
            self.session._count("cancelled", "server.cancelled")
            self._gauge_queue()
            return {"id": target, "cancelled": True, "state": "queued"}
        with self._state_lock:
            running = self._inflight.get((client, target))
        if running is not None:
            running.cancelled.set()
            return {"id": target, "cancelled": True, "state": "running"}
        return {"id": target, "cancelled": False, "state": "unknown"}

    def _handle_status(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        payload = self.session.status()
        with self._state_lock:
            busy = self._busy
        payload["server"] = {
            "workers": self.workers,
            "busy": busy,
            "queue": self.scheduler.snapshot(),
        }
        return payload

    def _handle_ping(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        return {"pong": True}

    def _handle_shutdown(
        self, params: Dict[str, Any], client: str
    ) -> Dict[str, Any]:
        self.shutting_down.set()
        self.flushed = self.session.flush()
        return {"ok": True, "flushed": self.flushed}

    # -- worker pool ------------------------------------------------------

    def submit(
        self,
        request: Request,
        client: Optional[str] = None,
        respond: Callable[[Dict[str, Any]], None] = lambda reply: None,
    ) -> None:
        """Feed one request to the pool; ``respond`` is called exactly
        once with its response, on whichever thread produces it.

        ``cancel`` runs here on the calling (transport) thread — it
        must never wait behind the request it is cancelling.  Overflow
        and post-shutdown arrivals are answered immediately.
        """
        namespace = request.client or client or DEFAULT_CLIENT
        if request.method == "cancel":
            respond(self.handle_request(request, client=namespace))
            return
        if self.shutting_down.is_set():
            respond(
                error_response(
                    request.id, SHUTTING_DOWN, "server is shutting down"
                )
            )
            return
        entry = ScheduledRequest(
            request=request, client=namespace, respond=respond
        )
        if not self.scheduler.submit(entry):
            if self.shutting_down.is_set():
                respond(
                    error_response(
                        request.id,
                        SHUTTING_DOWN,
                        "server is shutting down",
                    )
                )
            else:
                respond(
                    error_response(
                        request.id,
                        SERVER_BUSY,
                        f"request queue is full "
                        f"({self.scheduler.max_pending} pending)",
                    )
                )
            return
        self._gauge_queue()

    @property
    def started(self) -> bool:
        """Whether the worker pool is running."""
        with self._state_lock:
            return self._started

    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        with self._state_lock:
            if self._started:
                return
            self._started = True
            for i in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-worker-{i}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def drain(self) -> None:
        """Refuse new requests, answer everything queued, stop workers."""
        self.scheduler.close()
        for thread in self._threads:
            thread.join()
        with self._state_lock:
            self._threads = []
            self._started = False
        if self.session.compute is not None:
            self.session.compute.close()

    def _worker_loop(self) -> None:
        while True:
            entry = self.scheduler.take()
            if entry is None:
                return
            self._gauge_queue()
            request = entry.request
            key = (entry.client, request.id)
            with self._state_lock:
                self._inflight[key] = entry
                self._busy += 1
                busy = self._busy
            self._gauge_busy(busy)
            try:
                reply = self.handle_request(request, client=entry.client)
            finally:
                with self._state_lock:
                    self._inflight.pop(key, None)
                    self._busy -= 1
                    busy = self._busy
                self._gauge_busy(busy)
            if entry.cancelled.is_set():
                # Cooperative in-flight cancel: the work completed and
                # warmed the caches, but the caller asked us not to
                # deliver it.
                reply = error_response(
                    request.id,
                    REQUEST_CANCELLED,
                    f"request {request.id!r} cancelled while running",
                )
                self.session._count("cancelled", "server.cancelled")
            entry.respond(reply)

    def _gauge_queue(self) -> None:
        if obs.is_enabled():
            obs.gauge("server.queue_depth").set(self.scheduler.depth())

    def _gauge_busy(self, busy: int) -> None:
        if obs.is_enabled():
            obs.gauge("server.workers_busy").set(busy)

    # -- stdio loop ------------------------------------------------------

    def _write(self, out: TextIO, obj: Dict[str, Any]) -> None:
        with self._write_lock:
            out.write(dumps(obj) + "\n")
            out.flush()

    def serve(
        self,
        stdin: Optional[TextIO] = None,
        stdout: Optional[TextIO] = None,
        install_signal_handlers: bool = True,
    ) -> int:
        """Run the stdio loop until EOF, ``shutdown``, or a signal.

        Returns the process exit code (0 for every graceful path).
        """
        stdin = stdin if stdin is not None else sys.stdin
        out = stdout if stdout is not None else sys.stdout

        previous: Dict[int, Any] = {}
        if install_signal_handlers:

            def _on_signal(signum: int, frame: Any) -> None:
                raise _SignalStop(signum)

            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous[sig] = signal.signal(sig, _on_signal)
                except ValueError:  # pragma: no cover - non-main thread
                    pass

        def respond(reply: Dict[str, Any]) -> None:
            self._write(out, reply)

        self.start()
        try:
            for line in stdin:
                if not line.strip():
                    continue
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    self._write(
                        out, error_response(None, exc.code, str(exc))
                    )
                    continue
                self.submit(request, respond=respond)
                if request.method == "shutdown":
                    # A worker answers it (after draining this client's
                    # earlier requests); the reader stops accepting now.
                    break
        except (_SignalStop, KeyboardInterrupt):
            self.shutting_down.set()
        finally:
            # Drain: everything already queued still gets its response.
            self.drain()
            if self.flushed is None:
                # Shutdown came from EOF or a signal, not a request;
                # flush here so the next start is just as warm.
                self.flushed = self.session.flush()
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        return 0


def serve_stdio(
    session: Optional[Session] = None,
    queue_size: int = DEFAULT_QUEUE_SIZE,
    workers: int = DEFAULT_WORKERS,
) -> int:
    """Create an :class:`AnalysisServer` and run it over stdio."""
    return AnalysisServer(
        session=session, queue_size=queue_size, workers=workers
    ).serve()

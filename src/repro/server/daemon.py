"""The daemon proper: request loop, worker thread, graceful shutdown.

Structure::

    stdin ──reader (main thread)──▶ bounded queue ──worker thread──▶ stdout

The reader decodes each line and enqueues it; a **single analysis
worker** drains the queue, runs the handler against the shared
:class:`~repro.server.session.Session`, and writes one response line
per request.  One worker means analysis requests are processed strictly
in arrival order and the session needs no locking; the bounded queue
(:data:`DEFAULT_QUEUE_SIZE`) keeps a flood of requests from buffering
unboundedly — overflow is rejected immediately with ``SERVER_BUSY``
rather than silently queued.

Shutdown is graceful from all three triggers — a ``shutdown`` request,
SIGTERM, or SIGINT: the reader stops accepting input, the worker drains
every request already queued (each still gets its response), resident
results are flushed to the disk store, and the process exits 0.
Per-request wall-clock budgets apply to exact-exploration requests
(``params.timeout``), which run in a farm worker process so an overrun
can be terminated preemptively; a timed-out request answers with code
1001 and the daemon keeps serving.
"""

from __future__ import annotations

import queue
import signal
import sys
import threading
from typing import Any, Dict, Optional, TextIO

from .. import obs
from ..errors import ReproError
from .protocol import (
    ANALYSIS_ERROR,
    INTERNAL_ERROR,
    INVALID_PARAMS,
    METHOD_NOT_FOUND,
    REQUEST_TIMEOUT,
    SERVER_BUSY,
    SHUTTING_DOWN,
    ProtocolError,
    Request,
    RequestTimeout,
    decode_request,
    dumps,
    error_response,
    response,
)
from .session import Session

__all__ = ["AnalysisServer", "DEFAULT_QUEUE_SIZE", "serve_stdio"]

DEFAULT_QUEUE_SIZE = 64

# Queue sentinel: no more requests will arrive, drain and stop.
_EOF = object()


class _SignalStop(Exception):
    """Raised in the reader loop by SIGTERM/SIGINT handlers."""

    def __init__(self, signum: int) -> None:
        super().__init__(f"signal {signum}")
        self.signum = signum


class AnalysisServer:
    """One daemon instance: a session plus the request machinery.

    Usable three ways: :meth:`serve` runs the full stdio loop;
    :meth:`handle_line` / :meth:`handle_request` process a single
    request synchronously (the HTTP front end and the protocol tests
    drive these directly, no threads involved).
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
    ) -> None:
        self.session = session if session is not None else Session()
        self.queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self.shutting_down = threading.Event()
        self.flushed: Optional[int] = None
        self._write_lock = threading.Lock()
        self._handlers = {
            "analyze": self._handle_analyze,
            "lint": self._handle_lint,
            "repair": self._handle_repair,
            "batch": self._handle_batch,
            "didOpen": self._handle_did_open,
            "didChange": self._handle_did_change,
            "didClose": self._handle_did_close,
            "status": self._handle_status,
            "ping": self._handle_ping,
            "shutdown": self._handle_shutdown,
        }

    # -- single-request path ---------------------------------------------

    def handle_line(self, line: str) -> Dict[str, Any]:
        """Decode and serve one request line; always returns a response."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            return error_response(None, exc.code, str(exc))
        return self.handle_request(request)

    def handle_request(self, request: Request) -> Dict[str, Any]:
        """Serve one decoded request; exceptions become error responses."""
        self.session._count("requests", "server.requests")
        if obs.is_enabled():
            obs.counter("server.requests.by_method", method=request.method).inc()
        handler = self._handlers.get(request.method)
        if handler is None:
            return error_response(
                request.id,
                METHOD_NOT_FOUND,
                f"unknown method {request.method!r}; methods: "
                + ", ".join(sorted(self._handlers)),
            )
        try:
            return response(request.id, handler(request.params))
        except RequestTimeout as exc:
            return error_response(request.id, REQUEST_TIMEOUT, str(exc))
        except ReproError as exc:
            return error_response(
                request.id,
                ANALYSIS_ERROR,
                f"{type(exc).__name__}: {exc}",
            )
        except (TypeError, ValueError, KeyError) as exc:
            return error_response(request.id, INVALID_PARAMS, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            return error_response(
                request.id,
                INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}",
            )

    # -- handlers --------------------------------------------------------

    def _handle_analyze(self, params: Dict[str, Any]) -> Dict[str, Any]:
        beam_width = params.get("beam_width")
        payload, cache = self.session.analyze_document(
            uri=params.get("uri"),
            text=params.get("text"),
            algorithm=params.get("algorithm", "refined"),
            exact=bool(params.get("exact", False)),
            state_limit=int(params.get("state_limit", 200_000)),
            backend=params.get("backend", "index"),
            timeout=params.get("timeout"),
            strategy=params.get("strategy", "bfs"),
            beam_width=int(beam_width) if beam_width is not None else None,
        )
        return {"report": payload, "cache": cache}

    def _handle_lint(self, params: Dict[str, Any]) -> Dict[str, Any]:
        payload, sarif_doc, cache = self.session.lint_document(
            uri=params.get("uri"),
            text=params.get("text"),
            disable=params.get("disable", ()),
            select=params.get("select"),
            sarif=bool(params.get("sarif", False)),
        )
        result: Dict[str, Any] = {"report": payload, "cache": cache}
        if sarif_doc is not None:
            result["sarif"] = sarif_doc
        return result

    def _handle_repair(self, params: Dict[str, Any]) -> Dict[str, Any]:
        beam_width = params.get("beam_width")
        payload, cache = self.session.repair_document(
            uri=params.get("uri"),
            text=params.get("text"),
            algorithm=params.get("algorithm", "refined"),
            backend=params.get("backend", "index"),
            state_limit=int(params.get("state_limit", 200_000)),
            max_fixes=int(params.get("max_fixes", 5)),
            strategy=params.get("strategy", "bfs"),
            beam_width=int(beam_width) if beam_width is not None else None,
        )
        return {"report": payload, "cache": cache}

    def _handle_batch(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "report": self.session.run_batch(
                items=params.get("items"),
                paths=params.get("paths"),
                algorithm=params.get("algorithm", "refined"),
                state_limit=int(params.get("state_limit", 200_000)),
                jobs=int(params.get("jobs", 1)),
                timeout=params.get("timeout"),
                backend=params.get("backend", "index"),
                lint=bool(params.get("lint", False)),
            )
        }

    def _handle_did_open(self, params: Dict[str, Any]) -> Dict[str, Any]:
        uri = params["uri"]
        doc = self.session.open_document(
            uri, params["text"], version=int(params.get("version", 1))
        )
        return {"uri": uri, "version": doc.version, "opened": True}

    def _handle_did_change(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.session.change_document(
            params["uri"],
            params["text"],
            version=params.get("version"),
            ranges=params.get("ranges"),
        )

    def _handle_did_close(self, params: Dict[str, Any]) -> Dict[str, Any]:
        uri = params["uri"]
        return {"uri": uri, "closed": self.session.close_document(uri)}

    def _handle_status(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.session.status()

    def _handle_ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True}

    def _handle_shutdown(self, params: Dict[str, Any]) -> Dict[str, Any]:
        self.shutting_down.set()
        self.flushed = self.session.flush()
        return {"ok": True, "flushed": self.flushed}

    # -- stdio loop ------------------------------------------------------

    def _write(self, out: TextIO, obj: Dict[str, Any]) -> None:
        with self._write_lock:
            out.write(dumps(obj) + "\n")
            out.flush()

    def _worker(self, out: TextIO) -> None:
        while True:
            item = self.queue.get()
            if item is _EOF:
                return
            self._write(out, self.handle_request(item))

    def serve(
        self,
        stdin: Optional[TextIO] = None,
        stdout: Optional[TextIO] = None,
        install_signal_handlers: bool = True,
    ) -> int:
        """Run the stdio loop until EOF, ``shutdown``, or a signal.

        Returns the process exit code (0 for every graceful path).
        """
        stdin = stdin if stdin is not None else sys.stdin
        out = stdout if stdout is not None else sys.stdout

        previous: Dict[int, Any] = {}
        if install_signal_handlers:

            def _on_signal(signum: int, frame: Any) -> None:
                raise _SignalStop(signum)

            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous[sig] = signal.signal(sig, _on_signal)
                except ValueError:  # pragma: no cover - non-main thread
                    pass

        worker = threading.Thread(
            target=self._worker, args=(out,), daemon=True
        )
        worker.start()
        try:
            for line in stdin:
                if not line.strip():
                    continue
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    self._write(
                        out, error_response(None, exc.code, str(exc))
                    )
                    continue
                if self.shutting_down.is_set():
                    self._write(
                        out,
                        error_response(
                            request.id,
                            SHUTTING_DOWN,
                            "server is shutting down",
                        ),
                    )
                    continue
                try:
                    self.queue.put_nowait(request)
                except queue.Full:
                    self._write(
                        out,
                        error_response(
                            request.id,
                            SERVER_BUSY,
                            f"request queue is full "
                            f"({self.queue.maxsize} pending)",
                        ),
                    )
                    continue
                if request.method == "shutdown":
                    # The worker answers it (after draining everything
                    # queued ahead); the reader stops accepting now.
                    break
        except (_SignalStop, KeyboardInterrupt):
            self.shutting_down.set()
        finally:
            # Drain: everything already queued still gets its response.
            self.queue.put(_EOF)
            worker.join()
            if self.flushed is None:
                # Shutdown came from EOF or a signal, not a request;
                # flush here so the next start is just as warm.
                self.flushed = self.session.flush()
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        return 0


def serve_stdio(
    session: Optional[Session] = None,
    queue_size: int = DEFAULT_QUEUE_SIZE,
) -> int:
    """Create an :class:`AnalysisServer` and run it over stdio."""
    return AnalysisServer(session=session, queue_size=queue_size).serve()

"""Optional HTTP front end over the same request machinery.

Stdlib-only (``http.server``); the daemon's primary transport is stdio,
and this exists for clients that would rather ``curl`` than manage a
child process::

    $ repro serve --http 127.0.0.1:8171
    $ curl -s localhost:8171/rpc -d \\
        '{"id":1,"method":"analyze","params":{"text":"..."}}'

Endpoints:

``POST /rpc``
    One protocol request per call, same JSON body and response as a
    stdio line (see :mod:`repro.server.protocol`).  A ``shutdown``
    request stops the HTTP server after the response is sent.
``GET /status``
    The ``status`` result directly (no JSON-RPC envelope).
``GET /healthz``
    ``{"ok": true}`` — liveness only, touches no session state.

Requests are served sequentially by the single HTTP thread, matching
the stdio loop's one-worker ordering guarantee; the session object is
shared, so stdio and HTTP can front the same daemon state in tests.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Optional, Tuple

from .daemon import AnalysisServer
from .protocol import dumps

__all__ = ["make_http_server", "serve_http"]

MAX_BODY_BYTES = 16 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-server"
    protocol_version = "HTTP/1.1"

    # The AnalysisServer rides on the HTTPServer instance (set by
    # make_http_server); BaseHTTPRequestHandler instantiates per request.
    @property
    def analysis(self) -> AnalysisServer:
        return self.server.analysis  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        # Default implementation writes access logs to stderr; the
        # daemon's chatter policy keeps even stderr quiet unless asked.
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._send_json(200, {"ok": True})
        elif self.path == "/status":
            self._send_json(200, self.analysis.session.status())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/rpc":
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                400, {"error": "body required (Content-Length)"}
            )
            return
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        reply = self.analysis.handle_line(body)
        self._send_json(200, reply)
        if self.analysis.shutting_down.is_set():
            # Stop accepting after the shutdown response is on the wire.
            self.server._BaseServer__shutdown_request = True  # type: ignore[attr-defined]


def make_http_server(
    analysis: AnalysisServer, host: str = "127.0.0.1", port: int = 0
) -> HTTPServer:
    """A bound (not yet serving) HTTP server sharing ``analysis``."""
    httpd = HTTPServer((host, port), _Handler)
    httpd.analysis = analysis  # type: ignore[attr-defined]
    return httpd


def serve_http(
    analysis: Optional[AnalysisServer] = None,
    host: str = "127.0.0.1",
    port: int = 8171,
) -> int:
    """Serve HTTP until a ``shutdown`` request or KeyboardInterrupt."""
    analysis = analysis if analysis is not None else AnalysisServer()
    httpd = make_http_server(analysis, host=host, port=port)
    try:
        httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        analysis.session.flush()
    return 0


def parse_hostport(spec: str, default_port: int = 8171) -> Tuple[str, int]:
    """``"host:port"`` / ``"host"`` / ``":port"`` → ``(host, port)``."""
    if ":" in spec:
        host, _, port_s = spec.rpartition(":")
        host = host or "127.0.0.1"
        try:
            return host, int(port_s)
        except ValueError:
            raise ValueError(f"invalid --http address {spec!r}") from None
    return spec or "127.0.0.1", default_port

"""Optional HTTP front end over the same request machinery.

Stdlib-only (``http.server``); the daemon's primary transport is stdio,
and this exists for clients that would rather ``curl`` than manage a
child process::

    $ repro serve --http 127.0.0.1:8171 --workers 4
    $ curl -s localhost:8171/rpc -d \\
        '{"id":1,"method":"analyze","params":{"text":"..."}}'

Endpoints:

``POST /rpc``
    One protocol request per call, same JSON body and response as a
    stdio line (see :mod:`repro.server.protocol`).  A ``shutdown``
    request stops the HTTP server after the response is sent.
``GET /status``
    The ``status`` result directly (no JSON-RPC envelope).
``GET /healthz``
    ``{"ok": true}`` — liveness only, touches no session state.

The server is a :class:`~http.server.ThreadingHTTPServer`: every
connection gets its own handler thread, so ``/healthz`` answers while
a slow ``analyze`` is in flight (a plain ``HTTPServer`` serialized
everything behind the analysis, which read as a dead daemon to any
health checker).  ``/rpc`` bodies are fed through the shared
:class:`~repro.server.scheduler.FairScheduler` to the worker pool; the
connection thread blocks until its response is produced, so each HTTP
client still sees plain request→response semantics.

Clients are namespaced: the request's own ``"client"`` field wins,
then the ``X-Repro-Client`` header, then a per-address default
(``http:<ip>``) — so two editors analyzing the same URI with different
buffers never clobber each other's document state.
"""

from __future__ import annotations

import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .daemon import AnalysisServer, _SignalStop
from .protocol import ProtocolError, decode_request, dumps, error_response
from .scheduler import DEFAULT_CLIENT

__all__ = ["make_http_server", "serve_http", "parse_hostport"]

MAX_BODY_BYTES = 16 * 1024 * 1024

CLIENT_HEADER = "X-Repro-Client"


class _Server(ThreadingHTTPServer):
    # Handler threads are joined by server_close(): a graceful stop
    # never abandons a connection mid-response.
    daemon_threads = False
    block_on_close = True


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-server"
    protocol_version = "HTTP/1.1"

    # The AnalysisServer rides on the HTTPServer instance (set by
    # make_http_server); BaseHTTPRequestHandler instantiates per request.
    @property
    def analysis(self) -> AnalysisServer:
        return self.server.analysis  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        # Default implementation writes access logs to stderr; the
        # daemon's chatter policy keeps even stderr quiet unless asked.
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _client_id(self, explicit: Optional[str]) -> str:
        """The session namespace for this connection."""
        if explicit:
            return explicit
        header = self.headers.get(CLIENT_HEADER)
        if header:
            return header
        return f"http:{self.client_address[0]}"

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        # Both GETs bypass the request queue on purpose: liveness and
        # introspection must answer while the workers are busy.
        if self.path == "/healthz":
            self._send_json(200, {"ok": True})
        elif self.path == "/status":
            self._send_json(
                200, self.analysis._handle_status({}, DEFAULT_CLIENT)
            )
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/rpc":
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                400, {"error": "body required (Content-Length)"}
            )
            return
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        try:
            request = decode_request(body)
        except ProtocolError as exc:
            self._send_json(200, error_response(None, exc.code, str(exc)))
            return
        client = self._client_id(request.client)
        if self.analysis.started:
            # Through the fair scheduler to the worker pool; this
            # connection thread parks until the response exists.
            done = threading.Event()
            box: Dict[str, Any] = {}

            def respond(reply: Dict[str, Any]) -> None:
                box["reply"] = reply
                done.set()

            self.analysis.submit(request, client=client, respond=respond)
            done.wait()
            reply = box["reply"]
        else:
            # No pool running (tests drive make_http_server directly):
            # serve synchronously on this connection thread.
            reply = self.analysis.handle_request(request, client=client)
        self._send_json(200, reply)
        if self.analysis.shutting_down.is_set():
            # Stop accepting after the shutdown response is on the wire.
            self.server._BaseServer__shutdown_request = True  # type: ignore[attr-defined]


def make_http_server(
    analysis: AnalysisServer, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A bound (not yet serving) HTTP server sharing ``analysis``."""
    httpd = _Server((host, port), _Handler)
    httpd.analysis = analysis  # type: ignore[attr-defined]
    return httpd


def serve_http(
    analysis: Optional[AnalysisServer] = None,
    host: str = "127.0.0.1",
    port: int = 8171,
    install_signal_handlers: bool = True,
) -> int:
    """Serve HTTP until ``shutdown``, SIGTERM, SIGINT, or Ctrl-C.

    Every stop is graceful: the worker pool drains (each accepted
    request still gets its response), resident results are flushed to
    the disk store, handler threads are joined, and 0 is returned —
    the same contract the stdio loop has always had.
    """
    analysis = analysis if analysis is not None else AnalysisServer()
    httpd = make_http_server(analysis, host=host, port=port)

    previous: Dict[int, Any] = {}
    if install_signal_handlers:

        def _on_signal(signum: int, frame: Any) -> None:
            raise _SignalStop(signum)

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, _on_signal)
            except ValueError:  # pragma: no cover - non-main thread
                pass

    analysis.start()
    try:
        httpd.serve_forever(poll_interval=0.2)
    except (_SignalStop, KeyboardInterrupt):
        analysis.shutting_down.set()
    finally:
        # Order matters: refuse + drain the queue first (releases any
        # connection threads parked on responses), then join handler
        # threads, then flush so the next start is just as warm.
        analysis.drain()
        httpd.server_close()
        if analysis.flushed is None:
            analysis.flushed = analysis.session.flush()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 0


def parse_hostport(spec: str, default_port: int = 8171) -> Tuple[str, int]:
    """``"host:port"`` / ``"host"`` / ``":port"`` → ``(host, port)``."""
    if ":" in spec:
        host, _, port_s = spec.rpartition(":")
        host = host or "127.0.0.1"
        try:
            return host, int(port_s)
        except ValueError:
            raise ValueError(f"invalid --http address {spec!r}") from None
    return spec or "127.0.0.1", default_port

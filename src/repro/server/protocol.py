"""Wire protocol: newline-delimited JSON-RPC-style framing.

One request per line, one response per line, in request order::

    {"id": 1, "method": "analyze", "params": {"uri": "f.adl", "text": "..."}}
    {"id": 1, "result": {"report": {...}, "cache": "computed"}}

Every request gets exactly one response — including the LSP-flavoured
document notifications (``didOpen``/``didChange``/``didClose``), which
acknowledge with the invalidation decision so editor clients can show
cache behaviour.  ``id`` may be any JSON scalar and is echoed verbatim;
requests without an ``id`` are answered with ``"id": null``.

Errors use JSON-RPC codes for protocol failures and a small positive
range for analysis-level failures::

    {"id": 1, "error": {"code": 1000, "message": "ParseError: ..."}}

Requests may carry a top-level ``"client"`` string naming the session
namespace they target; multi-client transports key per-client document
tables on it.  The ``cancel`` method (``params.id`` = the id to
cancel) drops a queued request or marks an in-flight one — the
cancelled request itself answers with code 1004.

Responses are rendered compactly (one line, no extra whitespace); the
embedded ``report`` payloads are plain dicts from :mod:`repro.reporting`
and :mod:`repro.lint.output`, so re-rendering them with
``json.dumps(report, indent=2)`` reproduces the one-shot CLI's stdout
byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "METHODS",
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "INTERNAL_ERROR",
    "ANALYSIS_ERROR",
    "REQUEST_TIMEOUT",
    "SERVER_BUSY",
    "SHUTTING_DOWN",
    "REQUEST_CANCELLED",
    "ProtocolError",
    "Request",
    "RequestTimeout",
    "decode_request",
    "dumps",
    "error_response",
    "response",
]

PROTOCOL_VERSION = 1

# The full method surface; the daemon's dispatch table mirrors this.
METHODS = (
    "analyze",
    "lint",
    "repair",
    "batch",
    "didOpen",
    "didChange",
    "didClose",
    "cancel",
    "status",
    "ping",
    "shutdown",
)

# JSON-RPC 2.0 protocol-failure codes.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# Application-level codes (positive, repro-specific).
ANALYSIS_ERROR = 1000  # lex/parse/validate/analysis failure
REQUEST_TIMEOUT = 1001  # per-request wall-clock budget exceeded
SERVER_BUSY = 1002  # bounded request queue is full
SHUTTING_DOWN = 1003  # request arrived after shutdown began
REQUEST_CANCELLED = 1004  # request cancelled via the ``cancel`` method


class ProtocolError(Exception):
    """A malformed request; carries the JSON-RPC error code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


class RequestTimeout(ReproError):
    """A request exceeded its wall-clock budget (code 1001)."""


@dataclass
class Request:
    """One decoded protocol request.

    ``client`` is the optional session namespace the request targets —
    multi-client transports (HTTP) key per-client document tables on
    it.  ``None`` means the transport's default namespace.
    """

    id: Any
    method: str
    params: Dict[str, Any] = field(default_factory=dict)
    client: Optional[str] = None


def decode_request(line: str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` on junk."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(PARSE_ERROR, f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            INVALID_REQUEST, "request must be a JSON object"
        )
    method = obj.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(
            INVALID_REQUEST, "request needs a string 'method'"
        )
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            INVALID_PARAMS, "'params' must be a JSON object"
        )
    client = obj.get("client")
    if client is not None and not isinstance(client, str):
        raise ProtocolError(
            INVALID_REQUEST, "'client' must be a string when present"
        )
    return Request(
        id=obj.get("id"), method=method, params=params, client=client
    )


def dumps(obj: Any) -> str:
    """One-line compact JSON — the only framing the protocol uses."""
    return json.dumps(obj, separators=(",", ":"))


def response(request_id: Any, result: Any) -> Dict[str, Any]:
    return {"id": request_id, "result": result}


def error_response(
    request_id: Any,
    code: int,
    message: str,
    data: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"id": request_id, "error": error}

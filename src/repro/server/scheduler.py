"""Fair two-level request scheduling for the daemon's worker pool.

The single-worker daemon processed requests in strict arrival order;
with a pool of workers serving many clients, arrival order is the wrong
policy twice over: a queued ``batch`` sweep would starve every
interactive ``analyze`` behind it, and one chatty client could starve
everyone else's requests even at the same priority.  The
:class:`FairScheduler` fixes both with the smallest policy that does:

* **two priority levels** — interactive methods (``analyze``, ``lint``,
  ``repair``, document notifications, ``status``…) always dispatch
  before ``batch`` requests;
* **round-robin across clients** within a level — after a client's
  request is taken, that client rotates to the back, so N clients each
  flooding the queue get served 1:1:…:1, not in arrival bursts;
* **FIFO within one client** at one level — a client's own requests
  never overtake each other, which is what keeps ``didOpen`` →
  ``analyze`` sequences coherent per client.

The queue is bounded (total across levels and clients): overflow is
reported to the submitter, which answers ``SERVER_BUSY`` — same
backpressure contract as the old single queue.

Cancellation: :meth:`cancel` removes a *queued* entry outright and
returns it (the daemon answers it with ``REQUEST_CANCELLED`` without
ever running it).  In-flight requests are past the scheduler; the
daemon tracks those in its own registry and marks their
:attr:`ScheduledRequest.cancelled` event instead.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from .protocol import Request

__all__ = [
    "BATCH_METHODS",
    "DEFAULT_CLIENT",
    "FairScheduler",
    "PRIORITY_BATCH",
    "PRIORITY_INTERACTIVE",
    "ScheduledRequest",
    "priority_of",
]

PRIORITY_INTERACTIVE = 0
PRIORITY_BATCH = 1

# Everything not named here is interactive: cheap, latency-sensitive,
# or a notification a client is blocked on.
BATCH_METHODS = frozenset({"batch"})

DEFAULT_CLIENT = "default"


def priority_of(method: str) -> int:
    """The scheduling level for ``method``."""
    return PRIORITY_BATCH if method in BATCH_METHODS else PRIORITY_INTERACTIVE


@dataclass
class ScheduledRequest:
    """One queued request plus everything needed to answer it.

    ``respond`` is the transport-specific continuation — write a line
    to stdout, release a waiting HTTP connection thread.  Every entry
    accepted by the scheduler is answered exactly once: by a worker, by
    the cancel path, or by the shutdown drain.
    """

    request: Request
    client: str = DEFAULT_CLIENT
    respond: Callable[[Dict[str, Any]], None] = lambda reply: None
    cancelled: threading.Event = field(default_factory=threading.Event)
    enqueued_at: float = field(default_factory=time.monotonic)


class FairScheduler:
    """Bounded two-level priority queue with per-client round-robin."""

    def __init__(self, max_pending: int = 64) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        # Per level: client id -> that client's FIFO of entries.  The
        # OrderedDict order *is* the round-robin rotation.
        self._levels: tuple = (
            OrderedDict(),  # PRIORITY_INTERACTIVE
            OrderedDict(),  # PRIORITY_BATCH
        )
        self._pending = 0
        self._closed = False

    # -- producer side ----------------------------------------------------

    def submit(self, entry: ScheduledRequest) -> bool:
        """Enqueue ``entry``; False when the queue is full or closed."""
        with self._available:
            if self._closed or self._pending >= self.max_pending:
                return False
            level: "OrderedDict[str, Deque[ScheduledRequest]]" = (
                self._levels[priority_of(entry.request.method)]
            )
            queue = level.get(entry.client)
            if queue is None:
                # New clients join the back of the rotation.
                queue = level[entry.client] = deque()
            queue.append(entry)
            self._pending += 1
            self._available.notify()
            return True

    def cancel(
        self, client: str, request_id: Any
    ) -> Optional[ScheduledRequest]:
        """Remove and return the queued request with ``request_id``.

        Matches the oldest queued entry of ``client`` whose request id
        equals ``request_id``; ``None`` when nothing queued matches
        (the request may be in flight, done, or unknown).
        """
        with self._available:
            for level in self._levels:
                queue = level.get(client)
                if not queue:
                    continue
                for entry in queue:
                    if entry.request.id == request_id:
                        queue.remove(entry)
                        if not queue:
                            del level[client]
                        self._pending -= 1
                        entry.cancelled.set()
                        return entry
        return None

    def close(self) -> None:
        """Refuse new submissions; wake workers so they can drain."""
        with self._available:
            self._closed = True
            self._available.notify_all()

    # -- consumer side ----------------------------------------------------

    def take(self) -> Optional[ScheduledRequest]:
        """Block for the next entry; ``None`` once closed and drained."""
        with self._available:
            while True:
                entry = self._pop_locked()
                if entry is not None:
                    self._pending -= 1
                    return entry
                if self._closed:
                    return None
                self._available.wait()

    def _pop_locked(self) -> Optional[ScheduledRequest]:
        for level in self._levels:
            while level:
                client, queue = next(iter(level.items()))
                if not queue:  # pragma: no cover - defensive
                    del level[client]
                    continue
                entry = queue.popleft()
                if queue:
                    # Served one: rotate this client to the back.
                    level.move_to_end(client)
                else:
                    del level[client]
                return entry
        return None

    # -- introspection ----------------------------------------------------

    def depth(self) -> int:
        """How many requests are currently queued."""
        with self._lock:
            return self._pending

    def snapshot(self) -> Dict[str, Any]:
        """Status payload: depth, bound, per-level client queue sizes."""
        with self._lock:
            return {
                "pending": self._pending,
                "max_pending": self.max_pending,
                "closed": self._closed,
                "levels": [
                    {client: len(queue) for client, queue in level.items()}
                    for level in self._levels
                ],
            }

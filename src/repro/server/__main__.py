"""Entry point: ``python -m repro.server`` / ``repro serve``.

Stdio is the wire, so *nothing* else may touch stdout — startup notes
and shutdown summaries go to stderr (and only with ``--verbose``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .. import obs
from ..farm.cache import ResultCache
from ..farm.pool import SharedProcessPool
from .daemon import DEFAULT_QUEUE_SIZE, DEFAULT_WORKERS, AnalysisServer
from .httpd import parse_hostport, serve_http
from .session import Session

__all__ = ["build_arg_parser", "main"]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Long-lived analysis daemon: newline-delimited JSON "
            "requests on stdin, one JSON response per line on stdout. "
            "See docs/SERVER.md for the protocol."
        ),
    )
    parser.add_argument(
        "--http",
        metavar="HOST:PORT",
        help=(
            "serve HTTP on this address instead of stdio "
            "(POST /rpc, GET /status)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "content-addressed result store for warm restarts "
            "(default: the farm cache directory; see REPRO_CACHE_DIR)"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="memory-only: skip the on-disk result store entirely",
    )
    parser.add_argument(
        "--lru-entries",
        type=int,
        default=256,
        metavar="N",
        help="resident result LRU capacity (default: 256)",
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=DEFAULT_QUEUE_SIZE,
        metavar="N",
        help=(
            "bounded request queue depth; overflow answers "
            f"SERVER_BUSY (default: {DEFAULT_QUEUE_SIZE})"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        metavar="N",
        help=(
            "worker threads serving requests concurrently; >1 also "
            "enables the shared process pool for cold analyses "
            f"(default: {DEFAULT_WORKERS} — strict arrival order)"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "enable the obs layer so 'status' responses include "
            "server.* counters and gauges"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="startup/shutdown notes on stderr (stdout stays protocol-pure)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.no_store:
        store = None
    elif args.cache_dir:
        store = ResultCache(cache_dir=args.cache_dir)
    else:
        store = ResultCache()
    if args.workers < 1:
        print("repro serve: --workers must be >= 1", file=sys.stderr)
        return 2
    compute = SharedProcessPool(jobs=args.workers) if args.workers > 1 else None
    session = Session(
        store=store, lru_entries=args.lru_entries, compute=compute
    )
    server = AnalysisServer(
        session=session, queue_size=args.queue_size, workers=args.workers
    )
    if args.metrics:
        obs.enable()
    if args.verbose:
        where = args.http if args.http else "stdio"
        print(
            f"repro server: protocol 1, {where}, "
            f"workers={args.workers}, "
            f"store={'off' if store is None else store.cache_dir}",
            file=sys.stderr,
        )
    try:
        if args.http:
            host, port = parse_hostport(args.http)
            code = serve_http(server, host=host, port=port)
        else:
            code = server.serve()
    finally:
        if args.verbose:
            print(
                f"repro server: stopped, flushed "
                f"{server.flushed or 0} result(s)",
                file=sys.stderr,
            )
    return code


if __name__ == "__main__":
    sys.exit(main())

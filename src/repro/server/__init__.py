"""``repro.server`` — a long-lived analysis daemon with session state.

The one-shot CLI re-pays parse, CLG build, and ``AnalysisIndex`` /
``WaveIndex`` construction on every invocation.  The server keeps that
hot state resident: a :class:`~repro.server.session.Session` owns
documents keyed by URI with version numbers, caching the prepared
pipeline (parsed program → inlined program → sync graph → indexes) per
document and finished reports in a shared
:class:`~repro.farm.cache.LruFront`, fronted by the farm's
content-addressed disk store so even a restarted daemon answers warm.

The wire protocol is newline-delimited JSON-RPC-style requests over
stdio (optionally HTTP via the stdlib server) — see
:mod:`repro.server.protocol` and ``docs/SERVER.md``::

    $ repro serve
    {"id": 1, "method": "analyze", "params": {"uri": "a.adl", "text": "..."}}
    {"id": 1, "result": {"report": {...}, "cache": "computed"}}
    {"id": 2, "method": "analyze", "params": {"uri": "a.adl"}}
    {"id": 2, "result": {"report": {...}, "cache": "memory"}}

Report payloads are byte-identical to the one-shot CLI's ``--json`` /
``--lint --json`` / ``--suggest-fixes --json`` output for the same
source (same :mod:`repro.reporting` functions, schema_version 4), so a
client can switch between CLI and daemon without reparsing anything.

``didChange`` requests carry edited source ranges; the
:class:`~repro.server.session.Document` uses the lint layer's
end-to-end spans plus canonical-form comparison to decide whether an
edit can keep the cached parse/CLG (whitespace/comment-only or
out-of-task edits → *partial* invalidation) or must rebuild (*full*),
with ``server.invalidations.partial`` / ``server.invalidations.full``
obs counters proving the reuse.

Start it with ``repro serve`` (or ``python -m repro.server``); requests
are processed by a bounded worker pool (``--workers``, default 1) fed
by a fair two-level scheduler — interactive requests dispatch ahead of
``batch`` sweeps, clients round-robin within a level — with per-client
document namespaces, ``cancel`` support for queued and in-flight
requests, per-request wall-clock timeouts dispatched through the farm
pool, and graceful SIGTERM/SIGINT shutdown (stdio *and* HTTP) that
drains the queue and flushes the cache.
"""

from __future__ import annotations

from .daemon import AnalysisServer, serve_stdio
from .httpd import serve_http
from .scheduler import FairScheduler, ScheduledRequest
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RequestTimeout,
    decode_request,
    dumps,
    error_response,
    response,
)
from .session import Document, Session

__all__ = [
    "AnalysisServer",
    "Document",
    "FairScheduler",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RequestTimeout",
    "ScheduledRequest",
    "Session",
    "decode_request",
    "dumps",
    "error_response",
    "response",
    "serve_http",
    "serve_stdio",
]

"""Appendix-A NP-hardness machinery: CNF, DPLL, and both reductions."""

from .cnf import CNF, Clause, Literal, random_cnf
from .dpll import is_satisfiable, solve
from .theorem2 import (
    Theorem2Instance,
    build_theorem2_program,
    find_unsequenceable_cycle,
)
from .theorem3 import (
    Theorem3Instance,
    build_theorem3_graph,
    find_constraint2_cycle,
)

__all__ = [
    "CNF",
    "Clause",
    "Literal",
    "Theorem2Instance",
    "Theorem3Instance",
    "build_theorem2_program",
    "build_theorem3_graph",
    "find_constraint2_cycle",
    "find_unsequenceable_cycle",
    "is_satisfiable",
    "random_cnf",
    "solve",
]

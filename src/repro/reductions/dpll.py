"""A small DPLL SAT solver — the reference oracle for the reductions.

Unit propagation + pure-literal elimination + branching on the most
frequent unassigned variable.  Plenty for the formula sizes the
reduction benchmarks use (tens of variables); the point of Theorems 2
and 3 is the *equivalence*, not solver performance.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .cnf import CNF, Clause, Literal

__all__ = ["solve", "is_satisfiable"]


def _simplify(
    clauses: Tuple[Tuple[Literal, ...], ...], var: int, value: bool
) -> Optional[Tuple[Tuple[Literal, ...], ...]]:
    """Assign ``var := value``; None signals an empty (false) clause."""
    out: List[Tuple[Literal, ...]] = []
    for clause in clauses:
        satisfied = False
        rest: List[Literal] = []
        for lit in clause:
            if lit.var == var:
                if lit.positive == value:
                    satisfied = True
                    break
            else:
                rest.append(lit)
        if satisfied:
            continue
        if not rest:
            return None
        out.append(tuple(rest))
    return tuple(out)


def _dpll(
    clauses: Tuple[Tuple[Literal, ...], ...],
    assignment: Dict[int, bool],
) -> Optional[Dict[int, bool]]:
    while True:
        if not clauses:
            return assignment
        # Unit propagation.
        unit = next((c[0] for c in clauses if len(c) == 1), None)
        if unit is not None:
            assignment[unit.var] = unit.positive
            reduced = _simplify(clauses, unit.var, unit.positive)
            if reduced is None:
                return None
            clauses = reduced
            continue
        # Pure literal elimination.
        polarity: Dict[int, Set[bool]] = {}
        for clause in clauses:
            for lit in clause:
                polarity.setdefault(lit.var, set()).add(lit.positive)
        pure = next(
            (
                (var, next(iter(p)))
                for var, p in polarity.items()
                if len(p) == 1
            ),
            None,
        )
        if pure is not None:
            var, value = pure
            assignment[var] = value
            reduced = _simplify(clauses, var, value)
            if reduced is None:  # pragma: no cover - pure can't falsify
                return None
            clauses = reduced
            continue
        break
    counts = Counter(lit.var for clause in clauses for lit in clause)
    var = counts.most_common(1)[0][0]
    for value in (True, False):
        reduced = _simplify(clauses, var, value)
        if reduced is None:
            continue
        result = _dpll(reduced, {**assignment, var: value})
        if result is not None:
            return result
    return None


def solve(cnf: CNF) -> Optional[Dict[int, bool]]:
    """A satisfying assignment, or None when unsatisfiable.

    Variables eliminated by simplification keep no entry; callers that
    need total assignments may default missing variables arbitrarily.
    """
    clauses = tuple(tuple(clause.literals) for clause in cnf.clauses)
    result = _dpll(clauses, {})
    if result is not None:
        assert cnf.evaluate(
            {v: result.get(v, True) for v in cnf.variables}
        ), "DPLL returned a non-model"
    return result


def is_satisfiable(cnf: CNF) -> bool:
    return solve(cnf) is not None

"""The Theorem-3 reduction: 3-SAT → deadlock cycles without
rendezvousing head nodes (paper, Appendix A, Theorem 3).

A sync *graph* (not a program: the paper notes the graph "cannot in
general correspond to an actual program") is built so that a deadlock
cycle valid under constraints 1 and 2 exists iff the 3-CNF formula is
satisfiable, proving NP-completeness of exact constraint-1+2 checking.

Construction: one task per literal, containing a top node and a
signaling group with sync edges to every top node of the next clause
group; *extra* sync edges join the top nodes of complementary literals
of the same variable.  Those extra edges add no new cycles (a cycle
using one would enter and leave a top node through sync edges,
violating constraint 1b), but they disqualify inconsistent head
choices under constraint 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Tuple

from ..lang.ast_nodes import Signal
from ..syncgraph.model import SyncGraph, SyncNode
from .cnf import CNF, Literal

__all__ = ["Theorem3Instance", "build_theorem3_graph", "find_constraint2_cycle"]


@dataclass(frozen=True)
class Theorem3Instance:
    """The built reduction graph plus top-node bookkeeping."""

    cnf: CNF
    graph: SyncGraph
    tops: Dict[Tuple[int, int], SyncNode]  # (clause, literal) 1-based


def build_theorem3_graph(cnf: CNF) -> Theorem3Instance:
    """Construct the Theorem-3 sync graph for a 3-CNF formula."""
    m = len(cnf.clauses)
    for clause in cnf.clauses:
        if len(clause) != 3:
            raise ValueError("the reduction requires exactly 3 literals/clause")
    task_names = [
        f"l_{i}_{j}" for i in range(1, m + 1) for j in (1, 2, 3)
    ]
    graph = SyncGraph(task_names)
    tops: Dict[Tuple[int, int], SyncNode] = {}
    senders: Dict[Tuple[int, int], List[SyncNode]] = {}

    for i in range(1, m + 1):
        q = (i % m) + 1
        for j in (1, 2, 3):
            name = f"l_{i}_{j}"
            top = graph.add_rendezvous(
                "accept", name, Signal(name, "top")
            )
            tops[(i, j)] = top
            graph.add_control_edge(graph.b, top)
            group: List[SyncNode] = []
            for r in (1, 2, 3):
                target = f"l_{q}_{r}"
                node = graph.add_rendezvous(
                    "send", name, Signal(target, "top")
                )
                graph.add_control_edge(top, node)
                graph.add_control_edge(node, graph.e)
                group.append(node)
            senders[(i, j)] = group

    graph.connect_sync_edges()

    # Extra sync edges between complementary tops of the same variable.
    by_polarity: Dict[Tuple[int, bool], List[SyncNode]] = {}
    for i, clause in enumerate(cnf.clauses, start=1):
        for j, lit in enumerate(clause.literals, start=1):
            by_polarity.setdefault((lit.var, lit.positive), []).append(
                tops[(i, j)]
            )
    for var in cnf.variables:
        for pos_top in by_polarity.get((var, True), ()):
            for neg_top in by_polarity.get((var, False), ()):
                graph.add_sync_edge(pos_top, neg_top)

    return Theorem3Instance(cnf=cnf, graph=graph, tops=tops)


def find_constraint2_cycle(
    instance: Theorem3Instance,
) -> Optional[Dict[int, bool]]:
    """Search for a deadlock cycle valid under constraints 1 and 2.

    Enumerates one top node per clause group (``3^m`` choices) and
    rejects choices with sync-edge-connected head pairs — constraint 2,
    checked against the actual built graph.  The cycle through any
    choice exists structurally (every signaling group reaches every
    next-group top).  Returns the induced assignment or None.
    """
    graph = instance.graph
    m = len(instance.cnf.clauses)
    per_clause: List[List[Tuple[Literal, SyncNode]]] = []
    for i, clause in enumerate(instance.cnf.clauses, start=1):
        per_clause.append(
            [
                (lit, instance.tops[(i, j)])
                for j, lit in enumerate(clause.literals, start=1)
            ]
        )
    for choice in product(*per_clause):
        heads = [node for (_, node) in choice]
        if any(
            graph.has_sync_edge(heads[a], heads[b])
            for a in range(m)
            for b in range(a + 1, m)
        ):
            continue
        assignment: Dict[int, bool] = {}
        consistent = True
        for lit, _ in choice:
            if assignment.get(lit.var, lit.positive) != lit.positive:
                consistent = False
                break
            assignment[lit.var] = lit.positive
        if not consistent:
            raise AssertionError(
                "constraint-2-valid head choice with inconsistent "
                "literals - the complementary sync edges are incomplete"
            )
        return assignment
    return None

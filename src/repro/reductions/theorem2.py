"""The Theorem-2 reduction: 3-SAT → deadlock cycles with unsequenceable
heads (paper, Appendix A, Figures 6–8).

Given a 3-CNF conjunction, a program is constructed whose sync graph
has a deadlock cycle valid under constraints 1 and 3a iff the formula
is satisfiable — so exact checking of those constraints is NP-hard.

Construction (Figure 7 templates):

* **literal tasks** ``l_<i>_<j>`` per clause ``i``, position ``j``:

  - a *top node* ``accept top`` that receives from the previous clause
    task group (or from the anti-ordering task, for positive literals);
  - a *signaling node group*: a conditional that sends ``top`` to
    exactly one of the three tasks of the next clause group (indices
    wrap around: ``q = (i mod m) + 1``);
  - an *order-sending node* tying positive and negated instances of the
    same variable together: positive tasks send
    ``ord_v.positive`` *after* the group, negated tasks send
    ``ord_v.negative`` *before* their top node;

* **anti-ordering tasks** ``anti_<i>_<j>``: one ``send l_i_j.top`` per
  positive literal task, so positive tops are free to execute at
  program start and acquire no spurious orderings;

* **ordering tasks** ``ord_v`` per variable with negated occurrences:
  accept ``positive`` once per positive occurrence, then ``negative``
  once per negated occurrence — forcing every negated top after every
  positive top of the same variable.

The companion checker enumerates head-node choices (one literal task
per clause — exponential, which is the theorem's point) and tests
pairwise sequenceability with the library's own ordering analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Tuple

from ..analysis.orderings import OrderingInfo, compute_orderings
from ..lang.ast_nodes import (
    Accept,
    Condition,
    If,
    Program,
    Send,
    Statement,
    TaskDecl,
)
from ..syncgraph.build import build_sync_graph
from ..syncgraph.model import SyncGraph, SyncNode
from .cnf import CNF, Literal

__all__ = [
    "Theorem2Instance",
    "build_theorem2_program",
    "find_unsequenceable_cycle",
]


def _literal_task_name(i: int, j: int) -> str:
    return f"l_{i}_{j}"


def _signaling_group(next_clause_tasks: List[str]) -> Statement:
    """Conditional sending ``top`` to exactly one next-group task."""
    t1, t2, t3 = next_clause_tasks
    return If(
        condition=Condition.unknown(),
        then_body=(Send(task=t1, message="top"),),
        else_body=(
            If(
                condition=Condition.unknown(),
                then_body=(Send(task=t2, message="top"),),
                else_body=(Send(task=t3, message="top"),),
            ),
        ),
    )


@dataclass(frozen=True)
class Theorem2Instance:
    """A built reduction instance: program plus bookkeeping maps."""

    cnf: CNF
    program: Program
    # (clause_index, literal_index) -> task name, both 1-based
    literal_tasks: Dict[Tuple[int, int], str]

    def top_node(
        self, graph: SyncGraph, i: int, j: int
    ) -> SyncNode:
        """The top (accept ``top``) sync node of literal task (i, j)."""
        task = self.literal_tasks[(i, j)]
        for node in graph.nodes_of_task(task):
            if node.kind == "accept" and node.signal.message == "top":
                return node
        raise KeyError((i, j))


def build_theorem2_program(cnf: CNF) -> Theorem2Instance:
    """Construct the Theorem-2 program for a 3-CNF formula."""
    m = len(cnf.clauses)
    for clause in cnf.clauses:
        if len(clause) != 3:
            raise ValueError("the reduction requires exactly 3 literals/clause")

    positive_occ: Dict[int, int] = {}
    negative_occ: Dict[int, int] = {}
    for clause in cnf.clauses:
        for lit in clause:
            bucket = positive_occ if lit.positive else negative_occ
            bucket[lit.var] = bucket.get(lit.var, 0) + 1
    ordered_vars = sorted(v for v in negative_occ)  # vars needing ord tasks

    tasks: List[TaskDecl] = []
    literal_tasks: Dict[Tuple[int, int], str] = {}

    for i, clause in enumerate(cnf.clauses, start=1):
        q = (i % m) + 1
        next_group = [_literal_task_name(q, j) for j in (1, 2, 3)]
        for j, lit in enumerate(clause.literals, start=1):
            name = _literal_task_name(i, j)
            literal_tasks[(i, j)] = name
            body: List[Statement] = []
            has_ord = lit.var in negative_occ
            if lit.positive:
                body.append(Accept(message="top"))
                body.append(_signaling_group(next_group))
                if has_ord:
                    body.append(
                        Send(task=f"ord_{lit.var}", message="positive")
                    )
            else:
                body.append(Send(task=f"ord_{lit.var}", message="negative"))
                body.append(Accept(message="top"))
                body.append(_signaling_group(next_group))
            tasks.append(TaskDecl(name=name, body=tuple(body)))
            if lit.positive:
                tasks.append(
                    TaskDecl(
                        name=f"anti_{i}_{j}",
                        body=(Send(task=name, message="top"),),
                    )
                )

    for var in ordered_vars:
        body = [
            Accept(message="positive")
            for _ in range(positive_occ.get(var, 0))
        ] + [Accept(message="negative") for _ in range(negative_occ[var])]
        tasks.append(TaskDecl(name=f"ord_{var}", body=tuple(body)))

    program = Program(name="theorem2", tasks=tuple(tasks))
    return Theorem2Instance(
        cnf=cnf, program=program, literal_tasks=literal_tasks
    )


def find_unsequenceable_cycle(
    instance: Theorem2Instance,
    graph: Optional[SyncGraph] = None,
    orderings: Optional[OrderingInfo] = None,
) -> Optional[Dict[int, bool]]:
    """Search for a deadlock cycle valid under constraints 1 and 3a.

    Enumerates one literal-task top node per clause (``3^m`` choices —
    deliberately exponential, mirroring the theorem) and rejects any
    choice with a sequenceable head pair, as judged by the library's
    own ordering analysis.  The cycle through the chosen heads always
    exists structurally (each signaling group reaches every next-group
    top), so a surviving choice is a valid cycle; its induced variable
    assignment is returned.  Returns None when no choice survives.
    """
    if graph is None:
        graph = build_sync_graph(instance.program)
    if orderings is None:
        orderings = compute_orderings(graph)
    m = len(instance.cnf.clauses)
    tops: List[List[Tuple[Literal, SyncNode]]] = []
    for i, clause in enumerate(instance.cnf.clauses, start=1):
        tops.append(
            [
                (lit, instance.top_node(graph, i, j))
                for j, lit in enumerate(clause.literals, start=1)
            ]
        )
    for choice in product(*tops):
        heads = [node for (_, node) in choice]
        valid = True
        for a in range(m):
            for b in range(a + 1, m):
                if orderings.sequenceable(heads[a], heads[b]):
                    valid = False
                    break
            if not valid:
                break
        if not valid:
            continue
        assignment: Dict[int, bool] = {}
        consistent = True
        for lit, _ in choice:
            if assignment.get(lit.var, lit.positive) != lit.positive:
                consistent = False
                break
            assignment[lit.var] = lit.positive
        if consistent:
            return assignment
        # A cycle whose heads are unsequenceable but literal-inconsistent
        # would contradict the construction; surface it loudly.
        raise AssertionError(
            "unsequenceable head choice with inconsistent literals - "
            "ordering analysis failed to derive a Theorem-2 ordering"
        )
    return None

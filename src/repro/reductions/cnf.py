"""3-CNF formulas: model, parsing helpers and random generation.

Substrate for the Appendix-A NP-hardness constructions (Theorems 2 and
3): both build synchronization structures from a 3-CNF formula such
that a constrained deadlock cycle exists iff the formula is
satisfiable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Literal", "Clause", "CNF", "random_cnf"]


@dataclass(frozen=True)
class Literal:
    """A variable occurrence: ``var`` (1-based index) and polarity."""

    var: int
    positive: bool = True

    def __post_init__(self) -> None:
        if self.var < 1:
            raise ValueError("variables are 1-based")

    def negate(self) -> "Literal":
        return Literal(self.var, not self.positive)

    def satisfied_by(self, assignment: Dict[int, bool]) -> Optional[bool]:
        value = assignment.get(self.var)
        if value is None:
            return None
        return value if self.positive else not value

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"x{self.var}" if self.positive else f"~x{self.var}"


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals (exactly 3 for the reductions)."""

    literals: Tuple[Literal, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "literals", tuple(self.literals))
        if not self.literals:
            raise ValueError("empty clause")

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "(" + " | ".join(str(lit) for lit in self.literals) + ")"


@dataclass(frozen=True)
class CNF:
    """A conjunction of clauses."""

    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "clauses", tuple(self.clauses))
        if not self.clauses:
            raise ValueError("empty formula")

    @staticmethod
    def of(*clauses: Sequence[Tuple[int, bool]]) -> "CNF":
        """Convenience: ``CNF.of([(1, True), (2, False), ...], ...)``."""
        return CNF(
            tuple(
                Clause(tuple(Literal(v, pos) for v, pos in clause))
                for clause in clauses
            )
        )

    @property
    def num_vars(self) -> int:
        return max(lit.var for clause in self.clauses for lit in clause)

    @property
    def variables(self) -> FrozenSet[int]:
        return frozenset(
            lit.var for clause in self.clauses for lit in clause
        )

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        return all(
            any(lit.satisfied_by(assignment) for lit in clause)
            for clause in self.clauses
        )

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return " & ".join(str(c) for c in self.clauses)


def random_cnf(
    num_vars: int,
    num_clauses: int,
    seed: int = 0,
    width: int = 3,
) -> CNF:
    """Random k-CNF with distinct variables inside each clause.

    At the classic ratio ``num_clauses ≈ 4.26 * num_vars`` roughly half
    of the generated formulas are satisfiable, which makes the
    reduction benchmarks exercise both outcomes.
    """
    if num_vars < width:
        raise ValueError(f"need at least {width} variables")
    rng = random.Random(seed)
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append(
            Clause(
                tuple(
                    Literal(v, rng.random() < 0.5) for v in variables
                )
            )
        )
    return CNF(tuple(clauses))

"""Structured, source-located diagnostics.

The shared currency of the front-end: semantic validation
(:mod:`repro.lang.validate`) and the lint engine (:mod:`repro.lint`)
both report findings as :class:`Diagnostic` values — a rule id, a
severity, a message, and (when the program came from source text) a
:class:`~repro.lang.source.Span`.  Keeping the type here, below both
packages, avoids an import cycle: ``lang`` must not depend on ``lint``.

Severities follow the SARIF 2.1.0 ``level`` vocabulary (``error`` /
``warning`` / ``note``), so every backend maps them without
translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .lang.source import Span

__all__ = ["Severity", "Related", "Diagnostic"]


class Severity:
    """Diagnostic severities, ordered; SARIF ``level`` names verbatim."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    _RANK = {ERROR: 3, WARNING: 2, NOTE: 1}

    @classmethod
    def rank(cls, severity: str) -> int:
        """Numeric rank for threshold comparisons (higher = worse)."""
        try:
            return cls._RANK[severity]
        except KeyError:
            raise ValueError(f"unknown severity {severity!r}") from None

    @classmethod
    def at_least(cls, severity: str, threshold: str) -> bool:
        return cls.rank(severity) >= cls.rank(threshold)


@dataclass(frozen=True)
class Related:
    """A secondary location attached to a diagnostic (e.g. the first
    declaration a duplicate clashes with, or the rendezvous a dead
    statement is stuck behind)."""

    message: str
    span: Optional[Span] = None
    task: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "message": self.message,
            "span": _span_dict(self.span),
            "task": self.task,
        }


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id, severity, message, and source locations.

    ``span`` is ``None`` for programs built programmatically (no source
    text); every formatter treats that as line/column 0.  ``task`` names
    the enclosing task or procedure when the finding is scoped to one.
    """

    rule_id: str
    severity: str
    message: str
    span: Optional[Span] = None
    task: Optional[str] = None
    related: Tuple[Related, ...] = ()

    def __post_init__(self) -> None:
        Severity.rank(self.severity)  # reject unknown severities early
        object.__setattr__(self, "related", tuple(self.related))

    @property
    def line(self) -> int:
        return self.span.line if self.span is not None else 0

    @property
    def column(self) -> int:
        return self.span.column if self.span is not None else 0

    def format(self, path: str = "<source>") -> str:
        """Human-readable one-liner: ``file:line:col: severity: msg [id]``."""
        return (
            f"{path}:{self.line}:{self.column}: {self.severity}: "
            f"{self.message} [{self.rule_id}]"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "span": _span_dict(self.span),
            "task": self.task,
            "related": [r.to_dict() for r in self.related],
        }

    def sort_key(self) -> Tuple[int, int, str, str]:
        return (self.line, self.column, self.rule_id, self.message)


def _span_dict(span: Optional[Span]) -> Optional[Dict[str, int]]:
    if span is None:
        return None
    return {
        "line": span.line,
        "column": span.column,
        "end_line": span.end_line,
        "end_column": span.end_column,
    }

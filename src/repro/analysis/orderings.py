"""Must-ordering facts and the ``SEQUENCEABLE`` vector (paper §4.1).

The paper derives node orderings from the sync graph with a dataflow
framework based on two rules (cf. Callahan & Subhlok's ``SCP`` lattice):

1. if ``r`` dominates ``s`` in the control flow graph of their task,
   ``r`` must precede ``s``;
2. if for every sync edge ``{r, s}``, ``s`` precedes some node ``t``,
   then ``r`` must precede ``t``.

**Soundness refinement.**  The refined algorithm uses ``SEQUENCEABLE``
to exclude co-head hypotheses, so the facts must hold on *partial*
executions — in particular on the prefix leading into a deadlock, where
some rendezvous never complete.  A naive reading of rule 2 ("orderings
among completed runs") derives facts that are vacuously true on a
program that *always* deadlocks and would certify it deadlock-free
(e.g. the two-task crossed-send program).  We therefore compute the
prefix-sound closure of the same two ideas:

* ``REL(x, h)`` — *"at any point of any execution, if ``x`` has
  completed its rendezvous then ``h`` has completed"* — derived from

  - ``x == h``;
  - ``h`` strictly dominates ``x`` in their task (completing ``x``
    means control passed ``h``'s completion) — rule 1;
  - ``REL(d, h)`` for some strict dominator ``d`` of ``x``;
  - ``partners(x)`` nonempty and ``REL(p, h)`` for **all** sync
    partners ``p`` of ``x`` (``x`` completes simultaneously with some
    partner) — rule 2;

* ``precedes(h, k)`` ≡ *"k is not reached until h has completed"* ≡
  ``REL(d, h)`` for some strict dominator ``d`` of ``k``.

Two sound strengthenings are applied on acyclic control flow:

* **transitivity** — ``REL(x, y)`` and ``REL(y, z)`` give ``REL(x, z)``;
* **counting** — when every accept node of a signal lies in one task in
  a domination chain and the signal has equally many send nodes,
  completing the *last* accept forces completion of every send (each
  node fires at most once, so ``n`` rendezvous consume all ``n``
  senders); symmetrically for chain-ordered sends.  This is the
  cardinality reasoning of Callahan & Subhlok's counting lattice and is
  what derives the positive-before-negative top-node orderings of the
  paper's Theorem-2 construction.

If ``precedes(h, k)`` or ``precedes(k, h)`` holds, the two nodes can
never be simultaneously waiting on an execution wave — exactly the
property the NO-SYNC marking needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from ..syncgraph.model import SyncGraph, SyncNode

__all__ = ["OrderingInfo", "compute_orderings"]


@dataclass
class OrderingInfo:
    """Prefix-sound must-ordering facts over rendezvous nodes.

    ``precedes[a]`` is the set of nodes ``b`` such that ``b`` cannot be
    reached before ``a`` has completed its rendezvous.
    """

    precedes: Dict[SyncNode, FrozenSet[SyncNode]]

    def must_precede(self, a: SyncNode, b: SyncNode) -> bool:
        return b in self.precedes.get(a, frozenset())

    def sequenceable(self, a: SyncNode, b: SyncNode) -> bool:
        return self.must_precede(a, b) or self.must_precede(b, a)

    def sequenceable_with(self, a: SyncNode) -> FrozenSet[SyncNode]:
        forward = self.precedes.get(a, frozenset())
        backward = {
            b for b, targets in self.precedes.items() if a in targets
        }
        return frozenset(forward | backward)

    @property
    def pair_count(self) -> int:
        """Number of ordered pairs (for reporting/benchmarks)."""
        return sum(len(v) for v in self.precedes.values())


def _task_control_graph(graph: SyncGraph, task: str) -> "nx.DiGraph":
    """Per-task control graph rooted at ``b``: the task's rendezvous
    nodes plus ``b``/``e`` with the control edges among them."""
    g = nx.DiGraph()
    nodes = set(graph.nodes_of_task(task))
    g.add_node(graph.b)
    g.add_node(graph.e)
    g.add_nodes_from(nodes)
    for src, dst in graph.control_edges():
        src_ok = src is graph.b or src in nodes
        dst_ok = dst is graph.e or dst in nodes
        if src_ok and dst_ok:
            g.add_edge(src, dst)
    return g


def strict_dominators(graph: SyncGraph) -> Dict[SyncNode, FrozenSet[SyncNode]]:
    """Strict rendezvous dominators of each node within its task.

    ``d ∈ strict_dominators[x]`` means every control path from program
    start to ``x`` in ``x``'s task passes through (and therefore
    completes) ``d`` first.
    """
    result: Dict[SyncNode, FrozenSet[SyncNode]] = {}
    for task in graph.tasks:
        g = _task_control_graph(graph, task)
        task_nodes = [n for n in g.nodes if n.is_rendezvous]
        if not task_nodes:
            continue
        idom = nx.immediate_dominators(g, graph.b)
        for node in task_nodes:
            doms: Set[SyncNode] = set()
            walker = node
            while walker in idom and idom[walker] is not walker:
                walker = idom[walker]
                if walker.is_rendezvous:
                    doms.add(walker)
            result[node] = frozenset(doms)
    for node in graph.rendezvous_nodes:
        result.setdefault(node, frozenset())
    return result


def _counting_seeds(
    graph: SyncGraph, doms: Dict[SyncNode, FrozenSet[SyncNode]]
) -> List[Tuple[SyncNode, SyncNode]]:
    """Counting-rule seed facts ``REL(last, other_side_node)``.

    For a signal whose accept (resp. send) nodes all sit in one task in
    a strict domination chain, with equally many nodes on the other
    side: completing the chain's last node forces completion of every
    node on the other side.  Only sound when nodes fire at most once,
    i.e. acyclic control flow — the caller checks that.
    """
    seeds: List[Tuple[SyncNode, SyncNode]] = []
    for signal in graph.signals:
        senders = graph.senders_of(signal)
        accepters = graph.accepters_of(signal)
        if not senders or not accepters or len(senders) != len(accepters):
            continue
        for side, other in ((accepters, senders), (senders, accepters)):
            tasks = {n.task for n in side}
            if len(tasks) != 1:
                continue
            chain = sorted(
                side, key=lambda n: sum(1 for m in side if m in doms[n])
            )
            ok = all(
                chain[i] in doms[chain[i + 1]] for i in range(len(chain) - 1)
            )
            if not ok:
                continue
            last = chain[-1]
            seeds.extend((last, o) for o in other)
    return seeds


def compute_orderings(
    graph: SyncGraph, max_iterations: int = 10_000
) -> OrderingInfo:
    """Least fixpoint of the prefix-sound REL closure; see module docs.

    Works for cyclic control flow too (every clause reads "has
    completed at least once"), but the counting and transitivity
    strengthenings assume each node fires at most once and are only
    applied on acyclic control subgraphs.
    """
    nodes = graph.rendezvous_nodes
    doms = strict_dominators(graph)
    acyclic = not graph.has_control_cycle()

    # rel[x] = set of h with REL(x, h): "x completed => h completed".
    rel: Dict[SyncNode, Set[SyncNode]] = {}
    for x in nodes:
        rel[x] = {x} | set(doms[x])
    if acyclic:
        for x, h in _counting_seeds(graph, doms):
            rel[x].add(h)

    for _ in range(max_iterations):
        changed = False
        for x in nodes:
            current = rel[x]
            before = len(current)
            for d in doms[x]:
                current |= rel[d]
            partners = graph.sync_neighbors(x)
            if partners:
                common: Set[SyncNode] = set(rel[partners[0]])
                for p in partners[1:]:
                    common &= rel[p]
                    if not common:
                        break
                current |= common
            if acyclic:
                # Transitive closure: x completed => y completed => ...
                for y in tuple(current):
                    current |= rel[y]
            if len(current) != before:
                changed = True
        if not changed:
            break

    precedes: Dict[SyncNode, Set[SyncNode]] = {n: set() for n in nodes}
    for k in nodes:
        reached_implies: Set[SyncNode] = set()
        for d in doms[k]:
            reached_implies |= rel[d]
        for h in reached_implies:
            if h is not k:
                precedes[h].add(k)
    return OrderingInfo(
        precedes={a: frozenset(bs) for a, bs in precedes.items()}
    )

"""Must-ordering facts and the ``SEQUENCEABLE`` vector (paper §4.1).

The paper derives node orderings from the sync graph with a dataflow
framework based on two rules (cf. Callahan & Subhlok's ``SCP`` lattice):

1. if ``r`` dominates ``s`` in the control flow graph of their task,
   ``r`` must precede ``s``;
2. if for every sync edge ``{r, s}``, ``s`` precedes some node ``t``,
   then ``r`` must precede ``t``.

**Soundness refinement.**  The refined algorithm uses ``SEQUENCEABLE``
to exclude co-head hypotheses, so the facts must hold on *partial*
executions — in particular on the prefix leading into a deadlock, where
some rendezvous never complete.  A naive reading of rule 2 ("orderings
among completed runs") derives facts that are vacuously true on a
program that *always* deadlocks and would certify it deadlock-free
(e.g. the two-task crossed-send program).  We therefore compute the
prefix-sound closure of the same two ideas:

* ``REL(x, h)`` — *"at any point of any execution, if ``x`` has
  completed its rendezvous then ``h`` has completed"* — derived from

  - ``x == h``;
  - ``h`` strictly dominates ``x`` in their task (completing ``x``
    means control passed ``h``'s completion) — rule 1;
  - ``REL(d, h)`` for some strict dominator ``d`` of ``x``;
  - ``partners(x)`` nonempty and ``REL(p, h)`` for **all** sync
    partners ``p`` of ``x`` (``x`` completes simultaneously with some
    partner) — rule 2;

* ``precedes(h, k)`` ≡ *"k is not reached until h has completed"* ≡
  ``REL(d, h)`` for some strict dominator ``d`` of ``k``.

Two sound strengthenings are applied on acyclic control flow:

* **transitivity** — ``REL(x, y)`` and ``REL(y, z)`` give ``REL(x, z)``;
* **counting** — when every accept node of a signal lies in one task in
  a domination chain and the signal has equally many send nodes,
  completing the *last* accept forces completion of every send (each
  node fires at most once, so ``n`` rendezvous consume all ``n``
  senders); symmetrically for chain-ordered sends.  This is the
  cardinality reasoning of Callahan & Subhlok's counting lattice and is
  what derives the positive-before-negative top-node orderings of the
  paper's Theorem-2 construction.

If ``precedes(h, k)`` or ``precedes(k, h)`` holds, the two nodes can
never be simultaneously waiting on an execution wave — exactly the
property the NO-SYNC marking needs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from .. import obs
from ..syncgraph.model import SyncGraph, SyncNode

__all__ = ["OrderingInfo", "compute_orderings"]


@dataclass
class OrderingInfo:
    """Prefix-sound must-ordering facts over rendezvous nodes.

    ``precedes[a]`` is the set of nodes ``b`` such that ``b`` cannot be
    reached before ``a`` has completed its rendezvous.
    """

    precedes: Dict[SyncNode, FrozenSet[SyncNode]]
    # Lazily built symmetric closure (forward ∪ backward per node); the
    # refined algorithm queries sequenceable_with once per head per
    # analysis, so the reverse map is materialized once instead of
    # re-scanning all of ``precedes`` per query.
    _seq_with: Optional[Dict[SyncNode, FrozenSet[SyncNode]]] = field(
        default=None, compare=False, repr=False
    )

    def must_precede(self, a: SyncNode, b: SyncNode) -> bool:
        return b in self.precedes.get(a, frozenset())

    def sequenceable(self, a: SyncNode, b: SyncNode) -> bool:
        return self.must_precede(a, b) or self.must_precede(b, a)

    def sequenceable_with(self, a: SyncNode) -> FrozenSet[SyncNode]:
        cache = self._seq_with
        if cache is None:
            backward: Dict[SyncNode, Set[SyncNode]] = {}
            for b, targets in self.precedes.items():
                for t in targets:
                    backward.setdefault(t, set()).add(b)
            cache = {
                node: frozenset(
                    self.precedes.get(node, frozenset())
                    | backward.get(node, set())
                )
                for node in set(self.precedes) | set(backward)
            }
            self._seq_with = cache
        return cache.get(a, frozenset())

    @property
    def pair_count(self) -> int:
        """Number of ordered pairs (for reporting/benchmarks)."""
        return sum(len(v) for v in self.precedes.values())


def _task_control_graph(graph: SyncGraph, task: str) -> "nx.DiGraph":
    """Per-task control graph rooted at ``b``: the task's rendezvous
    nodes plus ``b``/``e`` with the control edges among them."""
    g = nx.DiGraph()
    nodes = set(graph.nodes_of_task(task))
    g.add_node(graph.b)
    g.add_node(graph.e)
    g.add_nodes_from(nodes)
    for src, dst in graph.control_edges():
        src_ok = src is graph.b or src in nodes
        dst_ok = dst is graph.e or dst in nodes
        if src_ok and dst_ok:
            g.add_edge(src, dst)
    return g


def strict_dominators(graph: SyncGraph) -> Dict[SyncNode, FrozenSet[SyncNode]]:
    """Strict rendezvous dominators of each node within its task.

    ``d ∈ strict_dominators[x]`` means every control path from program
    start to ``x`` in ``x``'s task passes through (and therefore
    completes) ``d`` first.
    """
    result: Dict[SyncNode, FrozenSet[SyncNode]] = {}
    for task in graph.tasks:
        g = _task_control_graph(graph, task)
        task_nodes = [n for n in g.nodes if n.is_rendezvous]
        if not task_nodes:
            continue
        idom = nx.immediate_dominators(g, graph.b)
        for node in task_nodes:
            doms: Set[SyncNode] = set()
            walker = node
            while walker in idom and idom[walker] is not walker:
                walker = idom[walker]
                if walker.is_rendezvous:
                    doms.add(walker)
            result[node] = frozenset(doms)
    for node in graph.rendezvous_nodes:
        result.setdefault(node, frozenset())
    return result


def _counting_seeds(
    graph: SyncGraph, doms: Dict[SyncNode, FrozenSet[SyncNode]]
) -> List[Tuple[SyncNode, SyncNode]]:
    """Counting-rule seed facts ``REL(last, other_side_node)``.

    For a signal whose accept (resp. send) nodes all sit in one task in
    a strict domination chain, with equally many nodes on the other
    side: completing the chain's last node forces completion of every
    node on the other side.  Only sound when nodes fire at most once,
    i.e. acyclic control flow — the caller checks that.
    """
    seeds: List[Tuple[SyncNode, SyncNode]] = []
    for signal in graph.signals:
        senders = graph.senders_of(signal)
        accepters = graph.accepters_of(signal)
        if not senders or not accepters or len(senders) != len(accepters):
            continue
        for side, other in ((accepters, senders), (senders, accepters)):
            tasks = {n.task for n in side}
            if len(tasks) != 1:
                continue
            chain = sorted(
                side, key=lambda n: sum(1 for m in side if m in doms[n])
            )
            ok = all(
                chain[i] in doms[chain[i + 1]] for i in range(len(chain) - 1)
            )
            if not ok:
                continue
            last = chain[-1]
            seeds.extend((last, o) for o in other)
    return seeds


def compute_orderings(
    graph: SyncGraph, max_iterations: int = 10_000
) -> OrderingInfo:
    """Least fixpoint of the prefix-sound REL closure; see module docs.

    Works for cyclic control flow too (every clause reads "has
    completed at least once"), but the counting and transitivity
    strengthenings assume each node fires at most once and are only
    applied on acyclic control subgraphs.

    The fixpoint is solved with a reverse-dependency worklist over
    integer bitsets: a node is re-evaluated only when a fact it reads —
    a dominator's or sync partner's REL row, or (for the transitive
    clause) the row of a current member — actually grew, instead of the
    reference round-robin Gauss–Seidel sweeps that re-visit every node
    per round.  The work budget is ``max_iterations × |nodes|``
    evaluations (the sweep equivalent); exhausting it returns the
    partial fixpoint, which is sound (a subset of the derivable facts,
    so strictly less pruning) but imprecise, and warns.
    """
    nodes = graph.rendezvous_nodes
    n = len(nodes)
    if n == 0:
        return OrderingInfo(precedes={})
    rid = {node: i for i, node in enumerate(nodes)}
    doms = strict_dominators(graph)
    acyclic = not graph.has_control_cycle()

    dom_bits = [0] * n
    for x in nodes:
        xi = rid[x]
        for d in doms[x]:
            dom_bits[xi] |= 1 << rid[d]
    partner_ids: List[Tuple[int, ...]] = [
        tuple(rid[p] for p in graph.sync_neighbors(x)) for x in nodes
    ]

    # rel[x] = bitset of h with REL(x, h): "x completed => h completed".
    rel = [(1 << i) | dom_bits[i] for i in range(n)]
    if acyclic:
        for x, h in _counting_seeds(graph, doms):
            rel[rid[x]] |= 1 << rid[h]

    # Static reverse dependencies: when rel[y] grows, re-evaluate every
    # x that reads rel[y] through the dominator or all-partners clause.
    dep_static = [0] * n
    for i in range(n):
        bit = 1 << i
        m = dom_bits[i]
        while m:
            d = (m & -m).bit_length() - 1
            m &= m - 1
            dep_static[d] |= bit
        for p in partner_ids[i]:
            dep_static[p] |= bit

    # Dynamic reverse dependencies for the transitive clause:
    # member_of[y] = bitset of x with y ∈ rel[x], maintained as rows grow.
    member_of = [0] * n
    for i in range(n):
        bit = 1 << i
        m = rel[i]
        while m:
            y = (m & -m).bit_length() - 1
            m &= m - 1
            member_of[y] |= bit

    budget = max_iterations * n
    steps = 0
    exhausted = False
    worklist = (1 << n) - 1
    while worklist:
        if steps >= budget:
            exhausted = True
            break
        x = (worklist & -worklist).bit_length() - 1
        worklist &= worklist - 1
        steps += 1
        cur = rel[x]
        new = cur
        m = dom_bits[x]
        while m:
            d = (m & -m).bit_length() - 1
            m &= m - 1
            new |= rel[d]
        pids = partner_ids[x]
        if pids:
            common = rel[pids[0]]
            for p in pids[1:]:
                common &= rel[p]
                if not common:
                    break
            new |= common
        if acyclic:
            # Transitive closure: x completed => y completed => ...
            # One pass over the pre-clause members; re-enqueueing below
            # covers anything the new members imply.
            m = new
            while m:
                y = (m & -m).bit_length() - 1
                m &= m - 1
                new |= rel[y]
        if new != cur:
            delta = new & ~cur
            rel[x] = new
            bitx = 1 << x
            m = delta
            while m:
                y = (m & -m).bit_length() - 1
                m &= m - 1
                member_of[y] |= bitx
            deps = dep_static[x]
            if acyclic:
                # Readers of rel[x] via transitivity, plus x itself:
                # the rows of the members just gained are not folded in.
                deps |= member_of[x] | bitx
            worklist |= deps

    if exhausted:
        warnings.warn(
            f"compute_orderings exhausted its work budget "
            f"({max_iterations} sweep-equivalents over {n} nodes) before "
            f"convergence; returning the partial fixpoint (sound but "
            f"imprecise — fewer SEQUENCEABLE facts, less pruning)",
            RuntimeWarning,
            stacklevel=2,
        )
    if obs.is_enabled():
        obs.counter("orderings.worklist_steps").inc(steps)
        if exhausted:
            obs.counter("orderings.max_iterations_exhausted").inc()

    precedes_bits = [0] * n
    for k in range(n):
        reached_implies = 0
        m = dom_bits[k]
        while m:
            d = (m & -m).bit_length() - 1
            m &= m - 1
            reached_implies |= rel[d]
        m = reached_implies & ~(1 << k)
        while m:
            h = (m & -m).bit_length() - 1
            m &= m - 1
            precedes_bits[h] |= 1 << k
    precedes: Dict[SyncNode, FrozenSet[SyncNode]] = {}
    for h in range(n):
        targets: Set[SyncNode] = set()
        m = precedes_bits[h]
        while m:
            k = (m & -m).bit_length() - 1
            m &= m - 1
            targets.add(nodes[k])
        precedes[nodes[h]] = frozenset(targets)
    return OrderingInfo(precedes=precedes)

"""Result types shared by the deadlock and stall analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..lang.ast_nodes import Signal
from ..syncgraph.model import SyncNode

__all__ = [
    "Verdict",
    "DeadlockEvidence",
    "DeadlockReport",
    "StallVerdict",
    "StallReport",
]


class Verdict:
    """Deadlock analysis verdicts.

    ``CERTIFIED_FREE`` is definitive (the analyses are conservative);
    ``POSSIBLE_DEADLOCK`` may be a false alarm.
    """

    CERTIFIED_FREE = "certified-deadlock-free"
    POSSIBLE_DEADLOCK = "possible-deadlock"


@dataclass(frozen=True)
class DeadlockEvidence:
    """One possible deadlock found by a detector.

    ``head`` is the hypothesized head node (None for the naive
    algorithm, which reports whole components).  ``component`` is the
    strongly connected CLG component, projected back to sync-graph
    nodes.
    """

    component: FrozenSet[SyncNode]
    head: Optional[SyncNode] = None
    tail: Optional[SyncNode] = None

    @property
    def tasks(self) -> FrozenSet[str]:
        return frozenset(n.task for n in self.component if n.is_rendezvous)

    def describe(self) -> str:
        members = ", ".join(sorted(str(n) for n in self.component))
        prefix = f"head {self.head}: " if self.head is not None else ""
        return f"{prefix}cycle through {{{members}}}"


@dataclass
class DeadlockReport:
    """Outcome of a deadlock analysis run."""

    verdict: str
    algorithm: str
    evidence: List[DeadlockEvidence] = field(default_factory=list)
    loops_transformed: bool = False
    heads_examined: int = 0
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def deadlock_free(self) -> bool:
        return self.verdict == Verdict.CERTIFIED_FREE

    @property
    def possible_heads(self) -> FrozenSet[SyncNode]:
        return frozenset(
            e.head for e in self.evidence if e.head is not None
        )

    def describe(self) -> str:
        lines = [f"[{self.algorithm}] {self.verdict}"]
        if self.loops_transformed:
            lines.append("  (loops removed by the Lemma-1 unroll transform)")
        for ev in self.evidence:
            lines.append("  " + ev.describe())
        return "\n".join(lines)


class StallVerdict:
    """Stall analysis verdicts.

    Stall certification is intractable in general (Lemma 4), so UNKNOWN
    is a legitimate outcome for branching programs.
    """

    CERTIFIED_FREE = "certified-stall-free"
    POSSIBLE_STALL = "possible-stall"
    UNKNOWN = "unknown"


@dataclass
class StallReport:
    """Outcome of a stall analysis run.

    ``imbalanced`` lists signals whose send/accept node counts differ
    (after discounting co-dependent pairs), with their counts.
    """

    verdict: str
    method: str
    imbalanced: Dict[Signal, Tuple[int, int]] = field(default_factory=dict)
    transforms_applied: Tuple[str, ...] = ()
    notes: List[str] = field(default_factory=list)

    @property
    def stall_free(self) -> bool:
        return self.verdict == StallVerdict.CERTIFIED_FREE

    def describe(self) -> str:
        lines = [f"[{self.method}] {self.verdict}"]
        for sig, (sends, accepts) in sorted(
            self.imbalanced.items(), key=lambda kv: (kv[0].task, kv[0].message)
        ):
            lines.append(f"  signal {sig}: {sends} send(s) vs {accepts} accept(s)")
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)

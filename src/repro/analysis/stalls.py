"""Stallability analysis (paper, Section 5).

* **Lemma 3** — a program whose rendezvous are all unconditional is
  stall-free iff every signal has equally many send and accept nodes.
  The check is ``O(|N|)``.
* **Lemma 4** — with conditionally executed rendezvous, stall freedom
  requires balance over *every feasible linearized execution*, which is
  intractable; certification then returns UNKNOWN unless the source
  transforms of Section 5.1 (both-branches merge, co-dependent
  factoring) remove all conditional rendezvous.

``exact_stall_analysis`` uses exhaustive wave exploration as the
(exponential) oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..lang.ast_nodes import (
    Accept,
    For,
    If,
    Program,
    Send,
    Signal,
    Statement,
    While,
)
from ..lang.validate import collect_signals
from ..syncgraph.build import build_sync_graph
from ..waves.explore import explore
from .results import StallReport, StallVerdict

__all__ = [
    "signal_balance",
    "has_conditional_rendezvous",
    "lemma3_stall_analysis",
    "lemma4_stall_analysis",
    "stall_analysis",
    "exact_stall_analysis",
]


def signal_balance(program: Program) -> Dict[Signal, Tuple[int, int]]:
    """Per-signal ``(send_count, accept_count)`` over the whole program."""
    return collect_signals(program)


def _body_has_rendezvous(body: Tuple[Statement, ...]) -> bool:
    for stmt in body:
        if isinstance(stmt, (Send, Accept)):
            return True
        if isinstance(stmt, If):
            if _body_has_rendezvous(stmt.then_body) or _body_has_rendezvous(
                stmt.else_body
            ):
                return True
        elif isinstance(stmt, (While, For)):
            if _body_has_rendezvous(stmt.body):
                return True
    return False


def _conditional_rendezvous_in(body: Tuple[Statement, ...]) -> bool:
    """True if some rendezvous sits inside a conditional or loop."""
    for stmt in body:
        if isinstance(stmt, If):
            if _body_has_rendezvous(stmt.then_body) or _body_has_rendezvous(
                stmt.else_body
            ):
                return True
        elif isinstance(stmt, (While, For)):
            if _body_has_rendezvous(stmt.body):
                return True
    return False


def has_conditional_rendezvous(program: Program) -> bool:
    """True when some rendezvous executes only on certain paths.

    Lemma 3 applies exactly when this is False: every task then has a
    fixed rendezvous sequence, so per-signal node counts determine
    stallability.
    """
    return any(
        _conditional_rendezvous_in(task.body) for task in program.tasks
    )


def _conditional_signal_occurrences(
    program: Program,
) -> Dict[Signal, Tuple[int, int]]:
    """Per-signal (conditional_sends, conditional_accepts) counts."""

    def scan(
        task_name: str, body: Tuple[Statement, ...], conditional: bool
    ) -> None:
        for stmt in body:
            if isinstance(stmt, Send) and conditional:
                sig = Signal(stmt.task, stmt.message)
                counts.setdefault(sig, [0, 0])[0] += 1
            elif isinstance(stmt, Accept) and conditional:
                sig = Signal(task_name, stmt.message)
                counts.setdefault(sig, [0, 0])[1] += 1
            elif isinstance(stmt, If):
                scan(task_name, stmt.then_body, True)
                scan(task_name, stmt.else_body, True)
            elif isinstance(stmt, (While, For)):
                scan(task_name, stmt.body, True)

    counts: Dict[Signal, List[int]] = {}
    for task in program.tasks:
        scan(task.name, task.body, False)
    return {sig: (c[0], c[1]) for sig, c in counts.items()}


def lemma3_stall_analysis(
    program: Program,
    certified_codependent: Iterable[Signal] = (),
) -> StallReport:
    """The O(|N|) count-balance check; UNKNOWN on conditional rendezvous.

    ``certified_codependent`` implements the paper's first alternative
    for hard co-dependence cases (§5.1): the programmer certifies that a
    signal's conditional send/accept pair always executes together, so
    the pair is factored out of the count *and* out of the
    conditional-rendezvous obstruction.  A wrong certification makes
    the verdict unsafe — exactly the trade-off the paper states.
    """
    certified = set(certified_codependent)
    conditional = _conditional_signal_occurrences(program)
    blocking = {
        sig: counts
        for sig, counts in conditional.items()
        if sig not in certified
    }
    notes: List[str] = []
    if certified:
        notes.append(
            "programmer-certified co-dependent signals: "
            + ", ".join(sorted(str(s) for s in certified))
        )
    if blocking:
        return StallReport(
            verdict=StallVerdict.UNKNOWN,
            method="lemma3-counts",
            notes=notes
            + [
                "program has conditionally executed rendezvous; Lemma 3 "
                "does not apply (see Lemma 4)"
            ],
        )
    imbalanced = {}
    for sig, (sends, accepts) in signal_balance(program).items():
        if sig in certified:
            # a certified pair contributes one send and one accept that
            # either both execute or both do not: discount them
            cond_sends, cond_accepts = conditional.get(sig, (0, 0))
            sends -= cond_sends
            accepts -= cond_accepts
        if sends != accepts:
            imbalanced[sig] = (sends, accepts)
    verdict = (
        StallVerdict.CERTIFIED_FREE
        if not imbalanced
        else StallVerdict.POSSIBLE_STALL
    )
    return StallReport(
        verdict=verdict,
        method="lemma3-counts",
        imbalanced=imbalanced,
        notes=notes,
    )


def stall_analysis(
    program: Program,
    apply_transforms: bool = True,
    certified_codependent: Iterable[Signal] = (),
) -> StallReport:
    """Stall certification pipeline (Section 5.1).

    When the raw program has conditional rendezvous, the both-branches
    merge (Figure 5 b/c) and co-dependent factoring (Figure 5 d)
    transforms are applied to a fixpoint; if they eliminate every
    conditional rendezvous, Lemma 3 decides the transformed program.
    Otherwise UNKNOWN.  ``certified_codependent`` passes programmer
    certifications through to the count check (see
    :func:`lemma3_stall_analysis`).
    """
    transforms: List[str] = []
    current = program
    if has_conditional_rendezvous(current) and apply_transforms:
        # Imported lazily: transforms depend on the lang package only,
        # but stalls<->transforms would otherwise form an import cycle.
        from ..transforms.branch_merge import merge_branch_rendezvous
        from ..transforms.codependent import factor_codependent

        merged, merges = merge_branch_rendezvous(current)
        if merges:
            current = merged
            transforms.append(f"branch-merge x{merges}")
        factored, pairs = factor_codependent(current)
        if pairs:
            current = factored
            transforms.append(f"codependent-factoring x{len(pairs)}")
    report = lemma3_stall_analysis(current, certified_codependent)
    if report.verdict == StallVerdict.UNKNOWN:
        # Lemma 4's O(|N|) balance decision certifies programs whose
        # conditional arms carry identical signal counts, with no
        # rewriting at all.  Try both the transformed and the original
        # program: the branch-merge split can separate arms that were
        # net-balanced in the source.
        for candidate in (current, program):
            lemma4 = lemma4_stall_analysis(candidate)
            if lemma4.verdict != StallVerdict.UNKNOWN:
                lemma4.transforms_applied = tuple(transforms)
                return lemma4
    report.transforms_applied = tuple(transforms)
    if report.verdict == StallVerdict.UNKNOWN and transforms:
        report.notes.append(
            "source transforms applied but conditional rendezvous remain"
        )
    return report


def exact_stall_analysis(
    program: Program, state_limit: int = 200_000, backend: str = "index"
) -> StallReport:
    """Ground-truth stall check by exhaustive wave exploration."""
    result = explore(build_sync_graph(program), state_limit, backend=backend)
    if result.has_stall:
        stalled = sorted(
            {str(n) for c in result.stall_waves for n in c.stalls}
        )
        return StallReport(
            verdict=StallVerdict.POSSIBLE_STALL,
            method="exact-waves",
            notes=[f"stall nodes observed: {', '.join(stalled)}"],
        )
    return StallReport(
        verdict=StallVerdict.CERTIFIED_FREE, method="exact-waves"
    )


def _net_vector(
    task_name: str, body: Tuple[Statement, ...]
) -> "Dict[Signal, int] | None":
    """Constant net signal contribution of ``body``, or None if it varies.

    The *net* of a signal is (sends − accepts) contributed by this
    task.  A body has a constant net when every control path yields the
    same vector: leaves are constant; a conditional is constant iff
    both arms agree; a ``for`` loop multiplies its (constant) body net
    by the static trip count; a ``while`` loop is constant only when
    its body nets to zero — impossible for rendezvous-carrying bodies,
    since a task cannot accept its own sends.
    """
    net: Dict[Signal, int] = {}

    def add(vec: Dict[Signal, int], sign: int = 1) -> None:
        for sig, count in vec.items():
            net[sig] = net.get(sig, 0) + sign * count
            if net[sig] == 0:
                del net[sig]

    for stmt in body:
        if isinstance(stmt, Send):
            add({Signal(stmt.task, stmt.message): 1})
        elif isinstance(stmt, Accept):
            add({Signal(task_name, stmt.message): -1})
        elif isinstance(stmt, If):
            then_net = _net_vector(task_name, stmt.then_body)
            else_net = _net_vector(task_name, stmt.else_body)
            if then_net is None or else_net is None or then_net != else_net:
                return None
            add(then_net)
        elif isinstance(stmt, While):
            body_net = _net_vector(task_name, stmt.body)
            if body_net is None or body_net:
                return None  # nonzero per iteration: varies with count
        elif isinstance(stmt, For):
            body_net = _net_vector(task_name, stmt.body)
            if body_net is None:
                return None
            add({s: c * stmt.trip_count for s, c in body_net.items()})
    return net


def lemma4_stall_analysis(program: Program) -> StallReport:
    """Decide Lemma 4's balance condition over the all-paths model, O(|N|).

    Lemma 4: a program is stall-free iff every feasible linearized
    execution has balanced per-signal counts.  Linearizations choose
    independently per task, so *all* linearizations are balanced iff
    every task's net signal vector is path-independent and the constant
    vectors sum to zero — decidable in one recursive pass, no
    enumeration, no transforms:

    * all constant and summing to zero ⇒ **certified stall-free**
      (strictly more programs than Lemma 3: balanced conditionals and
      static ``for`` loops need no rewriting);
    * all constant but imbalanced ⇒ **possible stall** (every
      execution, feasible or not, is imbalanced);
    * some task varies ⇒ **unknown** — the imbalanced combinations may
      all be infeasible, which is where the intractability lives.

    ``for`` loops contribute their *exact* static trip counts, like the
    exact unroll transform — finer than the raw wave model, which
    over-approximates ``for`` as a conditional loop.  Certification
    therefore agrees with exhaustive exploration of the (exactly)
    unrolled program, not of the raw cyclic sync graph.
    """
    total: Dict[Signal, int] = {}
    for task in program.tasks:
        vec = _net_vector(task.name, task.body)
        if vec is None:
            return StallReport(
                verdict=StallVerdict.UNKNOWN,
                method="lemma4-net-vectors",
                notes=[
                    f"task {task.name!r} has path-dependent signal "
                    "counts; feasibility reasoning would be required"
                ],
            )
        for sig, count in vec.items():
            total[sig] = total.get(sig, 0) + count
            if total[sig] == 0:
                del total[sig]
    if not total:
        return StallReport(
            verdict=StallVerdict.CERTIFIED_FREE,
            method="lemma4-net-vectors",
        )
    # reconstruct send/accept shape for reporting: positive net means
    # surplus sends, negative surplus accepts
    imbalanced = {
        sig: ((count, 0) if count > 0 else (0, -count))
        for sig, count in total.items()
    }
    return StallReport(
        verdict=StallVerdict.POSSIBLE_STALL,
        method="lemma4-net-vectors",
        imbalanced=imbalanced,
    )

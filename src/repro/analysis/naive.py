"""The naive deadlock detection algorithm (paper, Section 3.1).

A depth-first search of the CLG finds a cycle iff the sync graph has a
cycle satisfying deadlock constraint 1 (the CLG's node splitting
enforces 1b).  No cycle in the CLG certifies the program deadlock-free:
every deadlock requires a constraint-1 cycle.

The algorithm assumes acyclic control flow; callers hand it programs
whose loops were removed by the Lemma-1 unroll transform (the
:mod:`repro.api` pipeline does this automatically and records it in the
report).
"""

from __future__ import annotations

from typing import FrozenSet, List

from .. import obs
from ..errors import AnalysisError
from ..syncgraph.clg import CLG, CLGNode, build_clg
from ..syncgraph.model import SyncGraph, SyncNode
from .results import DeadlockEvidence, DeadlockReport, Verdict

__all__ = ["naive_deadlock_analysis", "project_component"]


def project_component(component: FrozenSet[CLGNode]) -> FrozenSet[SyncNode]:
    """Map a CLG component back to its sync-graph nodes."""
    return frozenset(
        node.sync for node in component if node.sync is not None
    )


def naive_deadlock_analysis(
    graph: SyncGraph, clg: CLG | None = None
) -> DeadlockReport:
    """Certify deadlock-freedom by CLG cycle detection (Algorithm 1).

    Raises :class:`AnalysisError` when the sync graph still has control
    cycles — the CLG method is only valid on loop-free programs
    (Section 3.1.4).
    """
    if graph.has_control_cycle():
        raise AnalysisError(
            "naive CLG analysis requires acyclic control flow; apply "
            "repro.transforms.unroll.remove_loops first"
        )
    if clg is None:
        clg = build_clg(graph)
    with obs.span("naive.scc", clg_nodes=clg.node_count):
        components = clg.cyclic_components()
    if obs.is_enabled():
        obs.counter("naive.scc_passes").inc()
        obs.counter("naive.cyclic_components").inc(len(components))
    evidence: List[DeadlockEvidence] = [
        DeadlockEvidence(component=project_component(c)) for c in components
    ]
    verdict = Verdict.CERTIFIED_FREE if not evidence else Verdict.POSSIBLE_DEADLOCK
    return DeadlockReport(
        verdict=verdict,
        algorithm="naive-clg",
        evidence=evidence,
        stats={
            "clg_nodes": clg.node_count,
            "clg_edges": clg.edge_count,
            "cyclic_components": len(components),
        },
    )

"""Vectorized ordering computation — numpy backend.

Drop-in replacement for :func:`repro.analysis.orderings.compute_orderings`
computing the identical least fixpoint with dense boolean matrices:

* ``R[x, h]`` holds ``REL(x, h)`` ("x completed ⇒ h completed");
* the dominator clause becomes a boolean matrix product ``D @ R``;
* transitivity becomes ``R @ R``;
* the all-partners clause is a per-row ``AND`` reduction over partner
  rows, batched with ``numpy.logical_and.reduce``.

Equivalence with the reference implementation is enforced by a
hypothesis property test; the ablation benchmark
(``benchmarks/bench_orderings_backend.py``) compares the two.  The
measured result is itself instructive: on the long-chain graphs this
problem domain produces, the reference's incremental sparse sets beat
the dense ``O(n^3)``-per-sweep matrix products — dense vectorization
only pays on graphs whose REL relation is dense (many partners per
signal).  The backend is kept as a verified alternative and as the
honest ablation datapoint.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

import numpy as np

from ..syncgraph.model import SyncGraph, SyncNode
from .orderings import OrderingInfo, _counting_seeds, strict_dominators

__all__ = ["compute_orderings_matrix"]


def _bool_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean matrix product without integer overflow concerns."""
    return (a.astype(np.uint8) @ b.astype(np.uint8)) > 0


def compute_orderings_matrix(
    graph: SyncGraph, max_iterations: int = 10_000
) -> OrderingInfo:
    """Numpy-vectorized equivalent of ``compute_orderings``."""
    nodes = graph.rendezvous_nodes
    n = len(nodes)
    if n == 0:
        return OrderingInfo(precedes={})
    index = {node: i for i, node in enumerate(nodes)}
    doms = strict_dominators(graph)
    acyclic = not graph.has_control_cycle()

    # D[x, d] = d strictly dominates x.
    dom_matrix = np.zeros((n, n), dtype=bool)
    for x in nodes:
        xi = index[x]
        for d in doms[x]:
            dom_matrix[xi, index[d]] = True

    rel = np.eye(n, dtype=bool)
    rel |= dom_matrix  # h in DOM(x)  =>  REL(x, h)
    if acyclic:
        for x, h in _counting_seeds(graph, doms):
            rel[index[x], index[h]] = True

    partner_rows: List[np.ndarray] = []
    partner_of: List[int] = []
    for x in nodes:
        partners = graph.sync_neighbors(x)
        if partners:
            partner_of.append(index[x])
            partner_rows.append(
                np.array([index[p] for p in partners], dtype=np.intp)
            )

    for _ in range(max_iterations):
        before = rel.sum()
        # Dominator clause: rel[x] |= union of rel[d] over d in DOM(x).
        rel |= _bool_matmul(dom_matrix, rel)
        # All-partners clause.
        for xi, rows in zip(partner_of, partner_rows):
            rel[xi] |= np.logical_and.reduce(rel[rows], axis=0)
        if acyclic:
            # Transitivity: rel[x] |= rel[y] for every y in rel[x].
            rel |= _bool_matmul(rel, rel)
        if rel.sum() == before:
            break

    # precedes(h, k): some strict dominator d of k has REL(d, h).
    reached_implies = _bool_matmul(dom_matrix, rel)  # [k, h]
    np.fill_diagonal(reached_implies, False)
    precedes: Dict[SyncNode, FrozenSet[SyncNode]] = {}
    for h in nodes:
        hi = index[h]
        targets = frozenset(
            nodes[ki] for ki in np.nonzero(reached_implies[:, hi])[0]
        )
        precedes[h] = targets
    return OrderingInfo(precedes=precedes)

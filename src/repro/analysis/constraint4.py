"""The global deadlock condition — constraint 4 (paper, Section 3, Fig 3).

Constraint 4: when the head nodes of a deadlock execute simultaneously,
this must not imply that a node able to rendezvous with one of them is
also executing with them — otherwise the deadlock is always broken from
outside.

The paper's Figure 3 shows the archetype: node ``w`` in an outside task
can only rendezvous with ``t`` or with nodes that must execute *after*
``t``; hence whenever ``t`` is waiting, ``w``'s task is still parked at
``w`` and the pair ``{w, t}`` could rendezvous — so no anomalous wave
ever contains ``t``.  The paper leaves general application "under
investigation"; we implement the Figure-3 pattern as a sound global
strengthening of the refined algorithm.

Soundness of ``find_breaker`` (candidate ``t``, breaker ``w``):

* ``w`` is the unique first rendezvous of its task, so until ``w``
  rendezvouses, its task's wave entry is ``w``;
* every sync partner of ``w`` is ``t`` itself or a node not reachable
  until ``t`` has completed; so while ``t`` is waiting, ``w`` cannot
  have rendezvoused — its task is parked at ``w``;
* then any wave with ``t`` waiting has the ready pair ``{w, t}`` and is
  not anomalous.

Hence a breakable node never appears waiting on an anomalous wave: it
can be neither a deadlock head nor any other waiting member.  Marking
its ``t_i`` NO-SYNC in *every* head hypothesis (it may still be a
never-reached tail through ``t_o``) is sound and eliminates every
spurious cycle that needed ``t`` as a head.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from ..syncgraph.model import SyncGraph, SyncNode
from .coexec import CoExecInfo
from .index import AnalysisIndex
from .orderings import OrderingInfo, compute_orderings
from .refined import refined_deadlock_analysis
from .results import DeadlockReport

__all__ = ["find_breaker", "breakable_nodes", "constraint4_deadlock_analysis"]


def find_breaker(
    graph: SyncGraph, node: SyncNode, orderings: OrderingInfo
) -> Optional[SyncNode]:
    """A node ``w`` that always breaks waits at ``node`` (Figure 3 pattern).

    Returns None when no breaker exists.
    """
    for w in graph.sync_neighbors(node):
        if w.task == node.task:
            continue
        if graph.initial_options(w.task) != (w,):
            continue
        partners_ok = all(
            x is node or orderings.must_precede(node, x)
            for x in graph.sync_neighbors(w)
        )
        if partners_ok:
            return w
    return None


def breakable_nodes(
    graph: SyncGraph, orderings: Optional[OrderingInfo] = None
) -> FrozenSet[SyncNode]:
    """All rendezvous nodes that can never wait on an anomalous wave."""
    if orderings is None:
        orderings = compute_orderings(graph)
    return frozenset(
        node
        for node in graph.rendezvous_nodes
        if find_breaker(graph, node, orderings) is not None
    )


def constraint4_deadlock_analysis(
    graph: SyncGraph,
    orderings: Optional[OrderingInfo] = None,
    coexec: Optional[CoExecInfo] = None,
    backend: str = "index",
    index: Optional[AnalysisIndex] = None,
) -> DeadlockReport:
    """Refined analysis strengthened with constraint-4 breaker marks.

    Every breakable node loses head-entry sync edges in every head
    hypothesis, so cycles that can only be completed through a
    breakable head disappear.  ``backend``/``index`` pass through to
    :func:`refined_deadlock_analysis`.
    """
    if index is not None:
        orderings = index.orderings
    elif orderings is None:
        orderings = compute_orderings(graph)
    breakable = breakable_nodes(graph, orderings)
    report = refined_deadlock_analysis(
        graph,
        orderings=orderings,
        coexec=coexec,
        global_no_sync=breakable,
        backend=backend,
        index=index,
    )
    report.algorithm = "refined+constraint4"
    report.stats["breakable_nodes"] = len(breakable)
    return report

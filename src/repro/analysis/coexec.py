"""Co-executability approximation and the ``NOT-COEXEC`` vector.

Constraint 3b requires all head nodes of a deadlock cycle to be
*co-executable* in the sense of Callahan and Subhlok: executable in the
same run of the program.  Exact co-executability needs whole-program
path information; the paper assumes it "through other static analysis".

Our built-in approximation is intra-task and exact for acyclic control
flow: two rendezvous points of one task are co-executable iff one is
control-reachable from the other (a single run of a task follows one
path; two nodes both lie on some path iff one reaches the other).
Cross-task pairs default to co-executable (the conservative answer).
External facts — e.g. from a symbolic analysis — can be injected via
``extra_not_coexec``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from ..syncgraph.model import SyncGraph, SyncNode

__all__ = ["CoExecInfo", "compute_coexec"]


@dataclass
class CoExecInfo:
    """``NOT-COEXEC`` facts: pairs that can never execute in one run."""

    not_coexec: Dict[SyncNode, FrozenSet[SyncNode]]

    def not_coexecutable(self, a: SyncNode, b: SyncNode) -> bool:
        return b in self.not_coexec.get(a, frozenset())

    def not_coexec_with(self, a: SyncNode) -> FrozenSet[SyncNode]:
        return self.not_coexec.get(a, frozenset())

    @property
    def pair_count(self) -> int:
        return sum(len(v) for v in self.not_coexec.values()) // 2


def compute_coexec(
    graph: SyncGraph,
    extra_not_coexec: Iterable[Tuple[SyncNode, SyncNode]] = (),
) -> CoExecInfo:
    """Compute ``NOT-COEXEC`` for every rendezvous node.

    Intra-task rule: ``a`` and ``b`` of the same task are not
    co-executable when neither control-reaches the other (they sit on
    exclusive conditional branches).  With control cycles the
    reachability test is still safe — loop bodies reach themselves.
    """
    rendezvous = graph.rendezvous_nodes
    rid = {node: i for i, node in enumerate(rendezvous)}
    result: Dict[SyncNode, Set[SyncNode]] = {n: set() for n in rendezvous}

    # reach[i] = bitset of rendezvous nodes control-reachable from node
    # i (strict: i itself only when it lies on a cycle through itself).
    reach = [0] * len(rendezvous)
    for node in rendezvous:
        seen: Set[SyncNode] = set()
        stack = list(graph.control_successors(node))
        bits = 0
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            j = rid.get(cur)
            if j is not None:
                bits |= 1 << j
            stack.extend(graph.control_successors(cur))
        reach[rid[node]] = bits

    reached_by = [0] * len(rendezvous)
    for i, bits in enumerate(reach):
        bit_i = 1 << i
        m = bits
        while m:
            j = (m & -m).bit_length() - 1
            m &= m - 1
            reached_by[j] |= bit_i

    for task in graph.tasks:
        task_mask = 0
        for node in graph.nodes_of_task(task):
            task_mask |= 1 << rid[node]
        for node in graph.nodes_of_task(task):
            i = rid[node]
            m = task_mask & ~reach[i] & ~reached_by[i] & ~(1 << i)
            pairs = result[node]
            while m:
                j = (m & -m).bit_length() - 1
                m &= m - 1
                pairs.add(rendezvous[j])
    for a, b in extra_not_coexec:
        result[a].add(b)
        result[b].add(a)
    return CoExecInfo(
        not_coexec={n: frozenset(s) for n, s in result.items()}
    )

"""Co-executability approximation and the ``NOT-COEXEC`` vector.

Constraint 3b requires all head nodes of a deadlock cycle to be
*co-executable* in the sense of Callahan and Subhlok: executable in the
same run of the program.  Exact co-executability needs whole-program
path information; the paper assumes it "through other static analysis".

Our built-in approximation is intra-task and exact for acyclic control
flow: two rendezvous points of one task are co-executable iff one is
control-reachable from the other (a single run of a task follows one
path; two nodes both lie on some path iff one reaches the other).
Cross-task pairs default to co-executable (the conservative answer).
External facts — e.g. from a symbolic analysis — can be injected via
``extra_not_coexec``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from ..syncgraph.model import SyncGraph, SyncNode

__all__ = ["CoExecInfo", "compute_coexec"]


@dataclass
class CoExecInfo:
    """``NOT-COEXEC`` facts: pairs that can never execute in one run."""

    not_coexec: Dict[SyncNode, FrozenSet[SyncNode]]

    def not_coexecutable(self, a: SyncNode, b: SyncNode) -> bool:
        return b in self.not_coexec.get(a, frozenset())

    def not_coexec_with(self, a: SyncNode) -> FrozenSet[SyncNode]:
        return self.not_coexec.get(a, frozenset())

    @property
    def pair_count(self) -> int:
        return sum(len(v) for v in self.not_coexec.values()) // 2


def compute_coexec(
    graph: SyncGraph,
    extra_not_coexec: Iterable[Tuple[SyncNode, SyncNode]] = (),
) -> CoExecInfo:
    """Compute ``NOT-COEXEC`` for every rendezvous node.

    Intra-task rule: ``a`` and ``b`` of the same task are not
    co-executable when neither control-reaches the other (they sit on
    exclusive conditional branches).  With control cycles the
    reachability test is still safe — loop bodies reach themselves.
    """
    result: Dict[SyncNode, Set[SyncNode]] = {
        n: set() for n in graph.rendezvous_nodes
    }
    descendants: Dict[SyncNode, FrozenSet[SyncNode]] = {
        n: graph.control_descendants(n, strict=True)
        for n in graph.rendezvous_nodes
    }
    for task in graph.tasks:
        nodes = graph.nodes_of_task(task)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if b not in descendants[a] and a not in descendants[b]:
                    result[a].add(b)
                    result[b].add(a)
    for a, b in extra_not_coexec:
        result[a].add(b)
        result[b].add(a)
    return CoExecInfo(
        not_coexec={n: frozenset(s) for n, s in result.items()}
    )

"""Static analyses: orderings, co-executability, and the two algorithms."""

from .coexec import CoExecInfo, compute_coexec
from .confirm import (
    ConfirmationOutcome,
    ConfirmedReport,
    confirm_deadlock_report,
)
from .constraint4 import (
    breakable_nodes,
    constraint4_deadlock_analysis,
    find_breaker,
)
from .extensions import (
    combined_pairs_analysis,
    head_pairs_analysis,
    head_tail_analysis,
    k_pairs_analysis,
)
from .index import AnalysisIndex
from .naive import naive_deadlock_analysis, project_component
from .orderings import OrderingInfo, compute_orderings
from .refined import (
    coaccept_of,
    component_for_head,
    possible_heads,
    refined_deadlock_analysis,
)
from .results import (
    DeadlockEvidence,
    DeadlockReport,
    StallReport,
    StallVerdict,
    Verdict,
)
from .stalls import (
    exact_stall_analysis,
    has_conditional_rendezvous,
    lemma3_stall_analysis,
    lemma4_stall_analysis,
    signal_balance,
    stall_analysis,
)

__all__ = [
    "AnalysisIndex",
    "CoExecInfo",
    "ConfirmationOutcome",
    "ConfirmedReport",
    "DeadlockEvidence",
    "DeadlockReport",
    "OrderingInfo",
    "StallReport",
    "StallVerdict",
    "Verdict",
    "breakable_nodes",
    "coaccept_of",
    "constraint4_deadlock_analysis",
    "combined_pairs_analysis",
    "component_for_head",
    "compute_coexec",
    "confirm_deadlock_report",
    "compute_orderings",
    "exact_stall_analysis",
    "find_breaker",
    "has_conditional_rendezvous",
    "head_pairs_analysis",
    "head_tail_analysis",
    "k_pairs_analysis",
    "lemma3_stall_analysis",
    "lemma4_stall_analysis",
    "naive_deadlock_analysis",
    "possible_heads",
    "project_component",
    "refined_deadlock_analysis",
    "signal_balance",
    "stall_analysis",
]

"""Extensions of the refined algorithm (paper, Section 4.2).

The paper lists four accuracy/cost trade-offs beyond single-head
hypotheses:

1. **Head pairs** — hypothesize two head nodes at once; report only
   components containing both.  A deadlock cycle spans at least two
   tasks, so it has at least two head nodes; a pair hypothesis can
   additionally skip pairs that provably cannot co-head (sequenceable,
   sync-edge-connected, or not co-executable).
2. **Head–tail pairs** — hypothesize the node where the cycle leaves
   the head's task; report only components containing ``h_i`` and
   ``t_o``.
3. **Combined** — pairs of head–tail pairs.
4. **k pairs** — generalization with exhaustive search for short
   cycles; the ``k = 2`` case coincides with 3 plus an exhaustive
   two-task cycle check, which is what we implement.

Each function certifies deadlock-freedom when no hypothesis survives;
any surviving hypothesis is conservatively reported.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Optional, Set, Tuple

from .. import obs
from ..errors import AnalysisError
from ..syncgraph.clg import CLG, CLGEdge, CLGNode, EdgeKind, build_clg
from ..syncgraph.model import SyncGraph, SyncNode
from .coexec import CoExecInfo, compute_coexec
from .naive import project_component
from .orderings import OrderingInfo, compute_orderings
from .refined import coaccept_of, possible_heads
from .results import DeadlockEvidence, DeadlockReport, Verdict

__all__ = [
    "head_pairs_analysis",
    "head_tail_analysis",
    "combined_pairs_analysis",
    "k_pairs_analysis",
    "k_pairs_3_analysis",
]


def _prepare(
    graph: SyncGraph,
    clg: Optional[CLG],
    orderings: Optional[OrderingInfo],
    coexec: Optional[CoExecInfo],
) -> Tuple[CLG, OrderingInfo, CoExecInfo]:
    if graph.has_control_cycle():
        raise AnalysisError(
            "extension analyses require acyclic control flow; apply "
            "repro.transforms.unroll.remove_loops first"
        )
    return (
        clg if clg is not None else build_clg(graph),
        orderings if orderings is not None else compute_orderings(graph),
        coexec if coexec is not None else compute_coexec(graph),
    )


def _search(
    clg: CLG,
    required: Tuple[CLGNode, ...],
    no_sync: Set[CLGNode],
    do_not_enter: Set[CLGNode],
) -> Optional[FrozenSet[CLGNode]]:
    """Cyclic component of the pruned CLG containing all ``required``."""
    if any(n in do_not_enter or n in no_sync for n in required):
        return None

    def edge_ok(edge: CLGEdge) -> bool:
        if edge.kind != EdgeKind.SYNC:
            return True
        return edge.src not in no_sync and edge.dst not in no_sync

    def node_ok(node: CLGNode) -> bool:
        return node not in do_not_enter

    for component in clg.cyclic_components(edge_ok, node_ok):
        if all(n in component for n in required):
            return component
    return None


def _head_marks(
    graph: SyncGraph,
    clg: CLG,
    head: SyncNode,
    orderings: OrderingInfo,
    coexec: CoExecInfo,
    use_coaccept: bool = True,
) -> Tuple[Set[CLGNode], Set[CLGNode]]:
    """(no_sync, do_not_enter) marks for one hypothesized head."""
    no_sync: Set[CLGNode] = set()
    do_not_enter: Set[CLGNode] = set()
    for k in orderings.sequenceable_with(head):
        no_sync.add(clg.in_node(k))
    for k in graph.nodes_of_task(head.task):  # constraint 1c
        if k is not head:
            no_sync.add(clg.in_node(k))
    for k in graph.sync_neighbors(head):  # constraint 2
        no_sync.add(clg.in_node(k))
    if use_coaccept:
        for k in coaccept_of(graph, head):
            no_sync.add(clg.in_node(k))
            no_sync.add(clg.out_node(k))
    for k in coexec.not_coexec_with(head):
        do_not_enter.add(clg.in_node(k))
        do_not_enter.add(clg.out_node(k))
    return no_sync, do_not_enter


def head_pairs_analysis(
    graph: SyncGraph,
    clg: Optional[CLG] = None,
    orderings: Optional[OrderingInfo] = None,
    coexec: Optional[CoExecInfo] = None,
) -> DeadlockReport:
    """Extension 1: hypothesize pairs of head nodes.

    A pair is viable only if the two nodes are in different tasks, are
    not sequenceable, are co-executable, and cannot rendezvous with each
    other (constraint 2 — co-heads joined by a sync edge would let the
    wave advance).
    """
    clg, orderings, coexec = _prepare(graph, clg, orderings, coexec)
    heads = possible_heads(graph)
    evidence: List[DeadlockEvidence] = []
    examined = 0
    for h1, h2 in combinations(heads, 2):
        if h1.task == h2.task:
            continue
        if orderings.sequenceable(h1, h2):
            continue
        if coexec.not_coexecutable(h1, h2):
            continue
        if graph.has_sync_edge(h1, h2):
            continue
        examined += 1
        ns1, dne1 = _head_marks(graph, clg, h1, orderings, coexec)
        ns2, dne2 = _head_marks(graph, clg, h2, orderings, coexec)
        component = _search(
            clg,
            (clg.in_node(h1), clg.in_node(h2)),
            ns1 | ns2,
            dne1 | dne2,
        )
        if component is not None:
            evidence.append(
                DeadlockEvidence(
                    component=project_component(component), head=h1, tail=h2
                )
            )
    if obs.is_enabled():
        enumerated = len(heads) * (len(heads) - 1) // 2
        obs.counter(
            "extensions.pairs_enumerated", analysis="head-pairs"
        ).inc(enumerated)
        obs.counter(
            "extensions.pairs_examined", analysis="head-pairs"
        ).inc(examined)
    verdict = Verdict.CERTIFIED_FREE if not evidence else Verdict.POSSIBLE_DEADLOCK
    return DeadlockReport(
        verdict=verdict,
        algorithm="refined+head-pairs",
        evidence=evidence,
        heads_examined=examined,
        stats={"pairs_examined": examined},
    )


def _candidate_tails(
    graph: SyncGraph,
    head: SyncNode,
    coexec: CoExecInfo,
) -> Tuple[SyncNode, ...]:
    """Candidate tail nodes for ``head`` per the paper's criteria.

    ``t`` is reachable by control flow from ``head``, has a sync edge to
    exit through, and ``t ∉ COACCEPT[head] ∪ NOT-COEXEC[head]``.
    """
    coaccepts = set(coaccept_of(graph, head))
    blocked = coexec.not_coexec_with(head)
    tails = []
    for t in graph.control_descendants(head, strict=True):
        if not t.is_rendezvous or t.task != head.task:
            continue
        if t in coaccepts or t in blocked:
            continue
        if graph.sync_neighbors(t):
            tails.append(t)
    return tuple(tails)


def head_tail_analysis(
    graph: SyncGraph,
    clg: Optional[CLG] = None,
    orderings: Optional[OrderingInfo] = None,
    coexec: Optional[CoExecInfo] = None,
) -> DeadlockReport:
    """Extension 2: hypothesize (head, tail) pairs within one task.

    For a candidate pair, nodes not co-executable with the head *or*
    the tail are removed, sequenceable nodes lose head-entry sync edges,
    and COACCEPT marking is unnecessary (the exit node is fixed).  A
    head with no viable tail cannot head any cycle.
    """
    clg, orderings, coexec = _prepare(graph, clg, orderings, coexec)
    heads = possible_heads(graph)
    evidence: List[DeadlockEvidence] = []
    examined = 0
    for head in heads:
        for tail in _candidate_tails(graph, head, coexec):
            examined += 1
            # COACCEPT marking is unnecessary when the exit node is
            # hypothesized explicitly (paper, extensions discussion).
            no_sync, do_not_enter = _head_marks(
                graph, clg, head, orderings, coexec, use_coaccept=False
            )
            for k in coexec.not_coexec_with(tail):
                do_not_enter.add(clg.in_node(k))
                do_not_enter.add(clg.out_node(k))
            component = _search(
                clg,
                (clg.in_node(head), clg.out_node(tail)),
                no_sync,
                do_not_enter,
            )
            if component is not None:
                evidence.append(
                    DeadlockEvidence(
                        component=project_component(component),
                        head=head,
                        tail=tail,
                    )
                )
                break  # one surviving tail suffices to flag this head
    if obs.is_enabled():
        obs.counter(
            "extensions.pairs_enumerated", analysis="head-tail"
        ).inc(examined)
        obs.counter(
            "extensions.pairs_examined", analysis="head-tail"
        ).inc(examined)
    verdict = Verdict.CERTIFIED_FREE if not evidence else Verdict.POSSIBLE_DEADLOCK
    return DeadlockReport(
        verdict=verdict,
        algorithm="refined+head-tail",
        evidence=evidence,
        heads_examined=examined,
        stats={"head_tail_pairs_examined": examined},
    )


def combined_pairs_analysis(
    graph: SyncGraph,
    clg: Optional[CLG] = None,
    orderings: Optional[OrderingInfo] = None,
    coexec: Optional[CoExecInfo] = None,
    max_hypotheses: int = 250_000,
) -> DeadlockReport:
    """Extensions 3/4 (k=2): pairs of head–tail pairs.

    Every deadlock cycle spans at least two tasks, hence contributes at
    least two head–tail segments in distinct tasks; with ``k = 2`` the
    paper's exhaustive short-cycle search is therefore unnecessary (it
    is only required for ``k ≥ 3``, where two-task cycles would escape
    the distinct-pair hypotheses).  Raises :class:`AnalysisError` when
    the hypothesis space exceeds ``max_hypotheses`` — this extension is
    the expensive end of the paper's accuracy/cost spectrum.
    """
    clg, orderings, coexec = _prepare(graph, clg, orderings, coexec)
    evidence: List[DeadlockEvidence] = []
    pairs: List[Tuple[SyncNode, SyncNode]] = []
    for head in possible_heads(graph):
        for tail in _candidate_tails(graph, head, coexec):
            pairs.append((head, tail))
    total = len(pairs) * (len(pairs) - 1) // 2
    if total > max_hypotheses:
        raise AnalysisError(
            f"combined-pairs hypothesis space too large ({total} pairs); "
            f"raise max_hypotheses to force the run"
        )
    examined = 0
    for (h1, t1), (h2, t2) in combinations(pairs, 2):
        if h1.task == h2.task:
            continue
        if orderings.sequenceable(h1, h2):
            continue
        if coexec.not_coexecutable(h1, h2):
            continue
        if graph.has_sync_edge(h1, h2):
            continue
        examined += 1
        ns1, dne1 = _head_marks(
            graph, clg, h1, orderings, coexec, use_coaccept=False
        )
        ns2, dne2 = _head_marks(
            graph, clg, h2, orderings, coexec, use_coaccept=False
        )
        no_sync = ns1 | ns2
        do_not_enter = dne1 | dne2
        for k in coexec.not_coexec_with(t1) | coexec.not_coexec_with(t2):
            do_not_enter.add(clg.in_node(k))
            do_not_enter.add(clg.out_node(k))
        component = _search(
            clg,
            (
                clg.in_node(h1),
                clg.out_node(t1),
                clg.in_node(h2),
                clg.out_node(t2),
            ),
            no_sync,
            do_not_enter,
        )
        if component is not None:
            evidence.append(
                DeadlockEvidence(
                    component=project_component(component), head=h1, tail=h2
                )
            )
    if obs.is_enabled():
        obs.counter(
            "extensions.pairs_enumerated", analysis="combined-pairs"
        ).inc(total)
        obs.counter(
            "extensions.pairs_examined", analysis="combined-pairs"
        ).inc(examined)
    verdict = Verdict.CERTIFIED_FREE if not evidence else Verdict.POSSIBLE_DEADLOCK
    return DeadlockReport(
        verdict=verdict,
        algorithm="refined+combined-pairs",
        evidence=evidence,
        heads_examined=examined,
        stats={"pair_hypotheses_examined": examined},
    )


def _restricted_two_task_search(
    graph: SyncGraph,
    clg: CLG,
    orderings: OrderingInfo,
    coexec: CoExecInfo,
) -> List[DeadlockEvidence]:
    """Exhaustive search for cycles spanning exactly two tasks.

    For every ordered task pair the CLG is restricted to those tasks'
    split nodes and each head hypothesis from the first task is run
    inside the restriction.  Complete for two-task cycles: such a cycle
    only ever touches nodes of its two tasks.
    """
    from .refined import component_for_head

    evidence: List[DeadlockEvidence] = []
    heads_by_task: Dict[str, List[SyncNode]] = {}
    for head in possible_heads(graph):
        heads_by_task.setdefault(head.task, []).append(head)
    tasks = [t for t in graph.tasks if t in heads_by_task]
    for a_idx, task_a in enumerate(tasks):
        for task_b in tasks[a_idx + 1 :]:
            allowed_tasks = {task_a, task_b}

            def node_ok(node: CLGNode) -> bool:
                return node.sync is None or node.sync.task in allowed_tasks

            for head in heads_by_task[task_a]:
                ns, dne = _head_marks(graph, clg, head, orderings, coexec)
                dne = set(dne) | {
                    n for n in clg.nodes if not node_ok(n)
                }
                component = _search(clg, (clg.in_node(head),), ns, dne)
                if component is not None:
                    evidence.append(
                        DeadlockEvidence(
                            component=project_component(component),
                            head=head,
                        )
                    )
                    break  # one witness per task pair suffices
    return evidence


def k_pairs_analysis(
    graph: SyncGraph,
    k: int = 3,
    clg: Optional[CLG] = None,
    orderings: Optional[OrderingInfo] = None,
    coexec: Optional[CoExecInfo] = None,
    max_hypotheses: int = 500_000,
) -> DeadlockReport:
    """Extension 4 for general ``k``: hypothesize ``k`` head–tail pairs.

    Per the paper: a deadlock cycle either joins fewer than ``k`` tasks
    — handled by exhaustive search (cycles span ≥ 2 tasks, so only the
    2..k-1 task cases need it; the two-task case is searched directly
    and cycles of 3..k-1 tasks necessarily light up some smaller tuple,
    so they are covered by recursing on ``k-1``) — or some set of ``k``
    hypothesized pairs lies in one strong component.

    Cost grows as ``O(pairs^k)``; ``max_hypotheses`` guards the
    combinatorial explosion.  ``k = 2`` delegates to
    :func:`combined_pairs_analysis`.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if k == 2:
        report = combined_pairs_analysis(
            graph, clg, orderings, coexec, max_hypotheses
        )
        report.algorithm = "refined+k-pairs(2)"
        return report
    clg, orderings, coexec = _prepare(graph, clg, orderings, coexec)

    # Cycles spanning fewer than k tasks.  For k = 3 only two-task
    # cycles need exhaustive coverage (searched directly, restricted to
    # each task pair); for k > 3 the k-1 analysis covers 2..k-1 tasks.
    if k == 3:
        evidence: List[DeadlockEvidence] = list(
            _restricted_two_task_search(graph, clg, orderings, coexec)
        )
    else:
        smaller = k_pairs_analysis(
            graph, k - 1, clg, orderings, coexec, max_hypotheses
        )
        evidence = list(smaller.evidence)

    pairs: List[Tuple[SyncNode, SyncNode]] = []
    for head in possible_heads(graph):
        for tail in _candidate_tails(graph, head, coexec):
            pairs.append((head, tail))
    total = 1
    for i in range(k):
        total *= max(1, len(pairs) - i)
    if total > max_hypotheses:
        raise AnalysisError(
            f"k-pairs hypothesis space too large (~{total}); raise "
            "max_hypotheses to force the run"
        )
    examined = 0
    for combo in combinations(pairs, k):
        tasks_used = {h.task for h, _ in combo}
        if len(tasks_used) != k:
            continue
        viable = True
        for (h1, _), (h2, _) in combinations(combo, 2):
            if (
                orderings.sequenceable(h1, h2)
                or coexec.not_coexecutable(h1, h2)
                or graph.has_sync_edge(h1, h2)
            ):
                viable = False
                break
        if not viable:
            continue
        examined += 1
        no_sync: Set[CLGNode] = set()
        do_not_enter: Set[CLGNode] = set()
        required: List[CLGNode] = []
        for head, tail in combo:
            ns, dne = _head_marks(
                graph, clg, head, orderings, coexec, use_coaccept=False
            )
            no_sync |= ns
            do_not_enter |= dne
            for kk in coexec.not_coexec_with(tail):
                do_not_enter.add(clg.in_node(kk))
                do_not_enter.add(clg.out_node(kk))
            required.append(clg.in_node(head))
            required.append(clg.out_node(tail))
        component = _search(clg, tuple(required), no_sync, do_not_enter)
        if component is not None:
            evidence.append(
                DeadlockEvidence(
                    component=project_component(component),
                    head=combo[0][0],
                    tail=combo[1][0],
                )
            )
    if obs.is_enabled():
        obs.counter(
            "extensions.pairs_enumerated", analysis=f"k-pairs({k})"
        ).inc(total)
        obs.counter(
            "extensions.pairs_examined", analysis=f"k-pairs({k})"
        ).inc(examined)
    verdict = Verdict.CERTIFIED_FREE if not evidence else Verdict.POSSIBLE_DEADLOCK
    return DeadlockReport(
        verdict=verdict,
        algorithm=f"refined+k-pairs({k})",
        evidence=evidence,
        heads_examined=examined,
        stats={"k": k, "k_tuples_examined": examined},
    )


def k_pairs_3_analysis(graph: SyncGraph) -> DeadlockReport:
    """:func:`k_pairs_analysis` fixed at ``k = 3``.

    A named, picklable registry entry for ``repro.api.ALGORITHMS`` — a
    lambda there would make the registry unpicklable and leak into any
    state that captures an algorithm callable (farm workers, caches).
    """
    return k_pairs_analysis(graph, k=3)

"""Extensions of the refined algorithm (paper, Section 4.2).

The paper lists four accuracy/cost trade-offs beyond single-head
hypotheses:

1. **Head pairs** — hypothesize two head nodes at once; report only
   components containing both.  A deadlock cycle spans at least two
   tasks, so it has at least two head nodes; a pair hypothesis can
   additionally skip pairs that provably cannot co-head (sequenceable,
   sync-edge-connected, or not co-executable).
2. **Head–tail pairs** — hypothesize the node where the cycle leaves
   the head's task; report only components containing ``h_i`` and
   ``t_o``.
3. **Combined** — pairs of head–tail pairs.
4. **k pairs** — generalization with exhaustive search for short
   cycles; the ``k = 2`` case coincides with 3 plus an exhaustive
   two-task cycle check, which is what we implement.

Each function certifies deadlock-freedom when no hypothesis survives;
any surviving hypothesis is conservatively reported.

All four analyses run against a small marking/search engine with two
interchangeable implementations: :class:`_IndexOps` (the default
``backend="index"``) drives the bitset kernels of
:class:`~repro.analysis.index.AnalysisIndex` — one shared index, mark
vectors memoized across the O(N²)–O(N^k) combination loops, rooted
early-exit Tarjan — while :class:`_SetOps` (``backend="reference"``)
keeps the original per-hypothesis set marking over hashed CLG nodes as
the differential oracle.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from .. import obs
from ..errors import AnalysisError
from ..syncgraph.clg import CLG, CLGEdge, CLGNode, EdgeKind, build_clg
from ..syncgraph.model import SyncGraph, SyncNode
from .coexec import CoExecInfo, compute_coexec
from .index import AnalysisIndex
from .naive import project_component
from .orderings import OrderingInfo, compute_orderings
from .refined import BACKENDS, coaccept_of, possible_heads
from .results import DeadlockEvidence, DeadlockReport, Verdict

__all__ = [
    "head_pairs_analysis",
    "head_tail_analysis",
    "combined_pairs_analysis",
    "k_pairs_analysis",
    "k_pairs_3_analysis",
]


class _SetOps:
    """Reference marking/search engine over hashed CLG node sets."""

    empty: FrozenSet[CLGNode] = frozenset()

    def __init__(
        self,
        graph: SyncGraph,
        clg: CLG,
        orderings: OrderingInfo,
        coexec: CoExecInfo,
    ) -> None:
        self.graph = graph
        self.clg = clg
        self.orderings = orderings
        self.coexec = coexec

    def in_ref(self, node: SyncNode) -> CLGNode:
        return self.clg.in_node(node)

    def out_ref(self, node: SyncNode) -> CLGNode:
        return self.clg.out_node(node)

    def head_marks(
        self, head: SyncNode, use_coaccept: bool = True
    ) -> Tuple[Set[CLGNode], Set[CLGNode]]:
        return _head_marks(
            self.graph, self.clg, head, self.orderings, self.coexec,
            use_coaccept,
        )

    def tail_marks(self, tail: SyncNode) -> Set[CLGNode]:
        """DO-NOT-ENTER marks for nodes not co-executable with ``tail``."""
        clg = self.clg
        marks: Set[CLGNode] = set()
        for k in self.coexec.not_coexec_with(tail):
            marks.add(clg.in_node(k))
            marks.add(clg.out_node(k))
        return marks

    def task_restriction(self, tasks: Set[str]) -> Set[CLGNode]:
        """DO-NOT-ENTER marks removing split nodes outside ``tasks``."""
        return {
            n
            for n in self.clg.nodes
            if n.sync is not None and n.sync.task not in tasks
        }

    def search(
        self,
        required: Tuple[CLGNode, ...],
        no_sync: Set[CLGNode],
        do_not_enter: Set[CLGNode],
    ) -> Optional[FrozenSet[SyncNode]]:
        """Cyclic component containing all ``required``, projected."""
        if any(n in do_not_enter or n in no_sync for n in required):
            return None

        def edge_ok(edge: CLGEdge) -> bool:
            if edge.kind != EdgeKind.SYNC:
                return True
            return edge.src not in no_sync and edge.dst not in no_sync

        def node_ok(node: CLGNode) -> bool:
            return node not in do_not_enter

        for component in self.clg.cyclic_components(edge_ok, node_ok):
            if all(n in component for n in required):
                return project_component(component)
        return None


class _IndexOps:
    """Bitset marking/search engine over a shared :class:`AnalysisIndex`."""

    empty: int = 0

    def __init__(self, index: AnalysisIndex) -> None:
        self.index = index
        self.graph = index.graph
        self.clg = index.clg
        self.orderings = index.orderings
        self.coexec = index.coexec

    def in_ref(self, node: SyncNode) -> int:
        return self.index.in_id[node]

    def out_ref(self, node: SyncNode) -> int:
        return self.index.out_id[node]

    def head_marks(
        self, head: SyncNode, use_coaccept: bool = True
    ) -> Tuple[int, int]:
        return self.index.head_marks(head, use_coaccept)

    def tail_marks(self, tail: SyncNode) -> int:
        return self.index.not_coexec_bits[tail]

    def task_restriction(self, tasks: Set[str]) -> int:
        return self.index.task_restriction(tasks)

    def search(
        self, required: Tuple[int, ...], no_sync: int, do_not_enter: int
    ) -> Optional[FrozenSet[SyncNode]]:
        combined = no_sync | do_not_enter
        for r in required:
            if (combined >> r) & 1:
                return None
        # SCCs partition the pruned CLG, so the component of the first
        # required node is the only candidate containing all of them.
        ids, _visited = self.index.cyclic_component_ids(
            required[0], no_sync, do_not_enter
        )
        if ids is None:
            return None
        if len(required) > 1:
            id_set = set(ids)
            if any(r not in id_set for r in required[1:]):
                return None
        return self.index.project_ids(ids)


_Ops = Union[_SetOps, _IndexOps]


def _make_ops(
    graph: SyncGraph,
    clg: Optional[CLG],
    orderings: Optional[OrderingInfo],
    coexec: Optional[CoExecInfo],
    backend: str,
    index: Optional[AnalysisIndex],
) -> _Ops:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if graph.has_control_cycle():
        raise AnalysisError(
            "extension analyses require acyclic control flow; apply "
            "repro.transforms.unroll.remove_loops first"
        )
    if index is None:
        if clg is None:
            clg = build_clg(graph)
        if orderings is None:
            orderings = compute_orderings(graph)
        if coexec is None:
            coexec = compute_coexec(graph)
        if backend == "index":
            index = AnalysisIndex(
                graph, clg=clg, orderings=orderings, coexec=coexec
            )
    if backend == "index":
        assert index is not None
        return _IndexOps(index)
    if index is not None:
        return _SetOps(graph, index.clg, index.orderings, index.coexec)
    assert clg is not None and orderings is not None and coexec is not None
    return _SetOps(graph, clg, orderings, coexec)


def _head_marks(
    graph: SyncGraph,
    clg: CLG,
    head: SyncNode,
    orderings: OrderingInfo,
    coexec: CoExecInfo,
    use_coaccept: bool = True,
) -> Tuple[Set[CLGNode], Set[CLGNode]]:
    """(no_sync, do_not_enter) marks for one hypothesized head."""
    no_sync: Set[CLGNode] = set()
    do_not_enter: Set[CLGNode] = set()
    for k in orderings.sequenceable_with(head):
        no_sync.add(clg.in_node(k))
    for k in graph.nodes_of_task(head.task):  # constraint 1c
        if k is not head:
            no_sync.add(clg.in_node(k))
    for k in graph.sync_neighbors(head):  # constraint 2
        no_sync.add(clg.in_node(k))
    if use_coaccept:
        for k in coaccept_of(graph, head):
            no_sync.add(clg.in_node(k))
            no_sync.add(clg.out_node(k))
    for k in coexec.not_coexec_with(head):
        do_not_enter.add(clg.in_node(k))
        do_not_enter.add(clg.out_node(k))
    return no_sync, do_not_enter


def head_pairs_analysis(
    graph: SyncGraph,
    clg: Optional[CLG] = None,
    orderings: Optional[OrderingInfo] = None,
    coexec: Optional[CoExecInfo] = None,
    backend: str = "index",
    index: Optional[AnalysisIndex] = None,
) -> DeadlockReport:
    """Extension 1: hypothesize pairs of head nodes.

    A pair is viable only if the two nodes are in different tasks, are
    not sequenceable, are co-executable, and cannot rendezvous with each
    other (constraint 2 — co-heads joined by a sync edge would let the
    wave advance).
    """
    ops = _make_ops(graph, clg, orderings, coexec, backend, index)
    orderings, coexec = ops.orderings, ops.coexec
    heads = possible_heads(graph)
    evidence: List[DeadlockEvidence] = []
    examined = 0
    for h1, h2 in combinations(heads, 2):
        if h1.task == h2.task:
            continue
        if orderings.sequenceable(h1, h2):
            continue
        if coexec.not_coexecutable(h1, h2):
            continue
        if graph.has_sync_edge(h1, h2):
            continue
        examined += 1
        ns1, dne1 = ops.head_marks(h1)
        ns2, dne2 = ops.head_marks(h2)
        component = ops.search(
            (ops.in_ref(h1), ops.in_ref(h2)),
            ns1 | ns2,
            dne1 | dne2,
        )
        if component is not None:
            evidence.append(
                DeadlockEvidence(component=component, head=h1, tail=h2)
            )
    if obs.is_enabled():
        enumerated = len(heads) * (len(heads) - 1) // 2
        obs.counter(
            "extensions.pairs_enumerated", analysis="head-pairs"
        ).inc(enumerated)
        obs.counter(
            "extensions.pairs_examined", analysis="head-pairs"
        ).inc(examined)
    verdict = Verdict.CERTIFIED_FREE if not evidence else Verdict.POSSIBLE_DEADLOCK
    return DeadlockReport(
        verdict=verdict,
        algorithm="refined+head-pairs",
        evidence=evidence,
        heads_examined=examined,
        stats={"pairs_examined": examined},
    )


def _candidate_tails(
    graph: SyncGraph,
    head: SyncNode,
    coexec: CoExecInfo,
) -> Tuple[SyncNode, ...]:
    """Candidate tail nodes for ``head`` per the paper's criteria.

    ``t`` is reachable by control flow from ``head``, has a sync edge to
    exit through, and ``t ∉ COACCEPT[head] ∪ NOT-COEXEC[head]``.
    """
    coaccepts = set(coaccept_of(graph, head))
    blocked = coexec.not_coexec_with(head)
    tails = []
    for t in graph.control_descendants(head, strict=True):
        if not t.is_rendezvous or t.task != head.task:
            continue
        if t in coaccepts or t in blocked:
            continue
        if graph.sync_neighbors(t):
            tails.append(t)
    return tuple(tails)


def head_tail_analysis(
    graph: SyncGraph,
    clg: Optional[CLG] = None,
    orderings: Optional[OrderingInfo] = None,
    coexec: Optional[CoExecInfo] = None,
    backend: str = "index",
    index: Optional[AnalysisIndex] = None,
) -> DeadlockReport:
    """Extension 2: hypothesize (head, tail) pairs within one task.

    For a candidate pair, nodes not co-executable with the head *or*
    the tail are removed, sequenceable nodes lose head-entry sync edges,
    and COACCEPT marking is unnecessary (the exit node is fixed).  A
    head with no viable tail cannot head any cycle.
    """
    ops = _make_ops(graph, clg, orderings, coexec, backend, index)
    coexec = ops.coexec
    heads = possible_heads(graph)
    evidence: List[DeadlockEvidence] = []
    examined = 0
    for head in heads:
        for tail in _candidate_tails(graph, head, coexec):
            examined += 1
            # COACCEPT marking is unnecessary when the exit node is
            # hypothesized explicitly (paper, extensions discussion).
            no_sync, do_not_enter = ops.head_marks(head, use_coaccept=False)
            do_not_enter = do_not_enter | ops.tail_marks(tail)
            component = ops.search(
                (ops.in_ref(head), ops.out_ref(tail)),
                no_sync,
                do_not_enter,
            )
            if component is not None:
                evidence.append(
                    DeadlockEvidence(
                        component=component, head=head, tail=tail
                    )
                )
                break  # one surviving tail suffices to flag this head
    if obs.is_enabled():
        obs.counter(
            "extensions.pairs_enumerated", analysis="head-tail"
        ).inc(examined)
        obs.counter(
            "extensions.pairs_examined", analysis="head-tail"
        ).inc(examined)
    verdict = Verdict.CERTIFIED_FREE if not evidence else Verdict.POSSIBLE_DEADLOCK
    return DeadlockReport(
        verdict=verdict,
        algorithm="refined+head-tail",
        evidence=evidence,
        heads_examined=examined,
        stats={"head_tail_pairs_examined": examined},
    )


def combined_pairs_analysis(
    graph: SyncGraph,
    clg: Optional[CLG] = None,
    orderings: Optional[OrderingInfo] = None,
    coexec: Optional[CoExecInfo] = None,
    max_hypotheses: int = 250_000,
    backend: str = "index",
    index: Optional[AnalysisIndex] = None,
) -> DeadlockReport:
    """Extensions 3/4 (k=2): pairs of head–tail pairs.

    Every deadlock cycle spans at least two tasks, hence contributes at
    least two head–tail segments in distinct tasks; with ``k = 2`` the
    paper's exhaustive short-cycle search is therefore unnecessary (it
    is only required for ``k ≥ 3``, where two-task cycles would escape
    the distinct-pair hypotheses).  Raises :class:`AnalysisError` when
    the hypothesis space exceeds ``max_hypotheses`` — this extension is
    the expensive end of the paper's accuracy/cost spectrum.
    """
    ops = _make_ops(graph, clg, orderings, coexec, backend, index)
    return _combined_pairs(graph, ops, max_hypotheses)


def _combined_pairs(
    graph: SyncGraph, ops: _Ops, max_hypotheses: int
) -> DeadlockReport:
    orderings, coexec = ops.orderings, ops.coexec
    evidence: List[DeadlockEvidence] = []
    pairs: List[Tuple[SyncNode, SyncNode]] = []
    for head in possible_heads(graph):
        for tail in _candidate_tails(graph, head, coexec):
            pairs.append((head, tail))
    total = len(pairs) * (len(pairs) - 1) // 2
    if total > max_hypotheses:
        raise AnalysisError(
            f"combined-pairs hypothesis space too large ({total} pairs); "
            f"raise max_hypotheses to force the run"
        )
    examined = 0
    for (h1, t1), (h2, t2) in combinations(pairs, 2):
        if h1.task == h2.task:
            continue
        if orderings.sequenceable(h1, h2):
            continue
        if coexec.not_coexecutable(h1, h2):
            continue
        if graph.has_sync_edge(h1, h2):
            continue
        examined += 1
        ns1, dne1 = ops.head_marks(h1, use_coaccept=False)
        ns2, dne2 = ops.head_marks(h2, use_coaccept=False)
        no_sync = ns1 | ns2
        do_not_enter = (
            dne1 | dne2 | ops.tail_marks(t1) | ops.tail_marks(t2)
        )
        component = ops.search(
            (
                ops.in_ref(h1),
                ops.out_ref(t1),
                ops.in_ref(h2),
                ops.out_ref(t2),
            ),
            no_sync,
            do_not_enter,
        )
        if component is not None:
            evidence.append(
                DeadlockEvidence(component=component, head=h1, tail=h2)
            )
    if obs.is_enabled():
        obs.counter(
            "extensions.pairs_enumerated", analysis="combined-pairs"
        ).inc(total)
        obs.counter(
            "extensions.pairs_examined", analysis="combined-pairs"
        ).inc(examined)
    verdict = Verdict.CERTIFIED_FREE if not evidence else Verdict.POSSIBLE_DEADLOCK
    return DeadlockReport(
        verdict=verdict,
        algorithm="refined+combined-pairs",
        evidence=evidence,
        heads_examined=examined,
        stats={"pair_hypotheses_examined": examined},
    )


def _restricted_two_task_search(
    graph: SyncGraph, ops: _Ops
) -> List[DeadlockEvidence]:
    """Exhaustive search for cycles spanning exactly two tasks.

    For every ordered task pair the CLG is restricted to those tasks'
    split nodes and each head hypothesis from the first task is run
    inside the restriction.  Complete for two-task cycles: such a cycle
    only ever touches nodes of its two tasks.
    """
    evidence: List[DeadlockEvidence] = []
    heads_by_task: Dict[str, List[SyncNode]] = {}
    for head in possible_heads(graph):
        heads_by_task.setdefault(head.task, []).append(head)
    tasks = [t for t in graph.tasks if t in heads_by_task]
    for a_idx, task_a in enumerate(tasks):
        for task_b in tasks[a_idx + 1 :]:
            restriction = ops.task_restriction({task_a, task_b})
            for head in heads_by_task[task_a]:
                ns, dne = ops.head_marks(head)
                component = ops.search(
                    (ops.in_ref(head),), ns, dne | restriction
                )
                if component is not None:
                    evidence.append(
                        DeadlockEvidence(component=component, head=head)
                    )
                    break  # one witness per task pair suffices
    return evidence


def k_pairs_analysis(
    graph: SyncGraph,
    k: int = 3,
    clg: Optional[CLG] = None,
    orderings: Optional[OrderingInfo] = None,
    coexec: Optional[CoExecInfo] = None,
    max_hypotheses: int = 500_000,
    backend: str = "index",
    index: Optional[AnalysisIndex] = None,
) -> DeadlockReport:
    """Extension 4 for general ``k``: hypothesize ``k`` head–tail pairs.

    Per the paper: a deadlock cycle either joins fewer than ``k`` tasks
    — handled by exhaustive search (cycles span ≥ 2 tasks, so only the
    2..k-1 task cases need it; the two-task case is searched directly
    and cycles of 3..k-1 tasks necessarily light up some smaller tuple,
    so they are covered by recursing on ``k-1``) — or some set of ``k``
    hypothesized pairs lies in one strong component.

    Cost grows as ``O(pairs^k)``; ``max_hypotheses`` guards the
    combinatorial explosion.  ``k = 2`` delegates to
    :func:`combined_pairs_analysis`.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    ops = _make_ops(graph, clg, orderings, coexec, backend, index)
    return _k_pairs(graph, ops, k, max_hypotheses)


def _k_pairs(
    graph: SyncGraph, ops: _Ops, k: int, max_hypotheses: int
) -> DeadlockReport:
    if k == 2:
        report = _combined_pairs(graph, ops, max_hypotheses)
        report.algorithm = "refined+k-pairs(2)"
        return report
    orderings, coexec = ops.orderings, ops.coexec

    # Cycles spanning fewer than k tasks.  For k = 3 only two-task
    # cycles need exhaustive coverage (searched directly, restricted to
    # each task pair); for k > 3 the k-1 analysis covers 2..k-1 tasks.
    if k == 3:
        evidence: List[DeadlockEvidence] = list(
            _restricted_two_task_search(graph, ops)
        )
    else:
        smaller = _k_pairs(graph, ops, k - 1, max_hypotheses)
        evidence = list(smaller.evidence)

    pairs: List[Tuple[SyncNode, SyncNode]] = []
    for head in possible_heads(graph):
        for tail in _candidate_tails(graph, head, coexec):
            pairs.append((head, tail))
    total = 1
    for i in range(k):
        total *= max(1, len(pairs) - i)
    if total > max_hypotheses:
        raise AnalysisError(
            f"k-pairs hypothesis space too large (~{total}); raise "
            "max_hypotheses to force the run"
        )
    examined = 0
    for combo in combinations(pairs, k):
        tasks_used = {h.task for h, _ in combo}
        if len(tasks_used) != k:
            continue
        viable = True
        for (h1, _), (h2, _) in combinations(combo, 2):
            if (
                orderings.sequenceable(h1, h2)
                or coexec.not_coexecutable(h1, h2)
                or graph.has_sync_edge(h1, h2)
            ):
                viable = False
                break
        if not viable:
            continue
        examined += 1
        no_sync = ops.empty
        do_not_enter = ops.empty
        required = []
        for head, tail in combo:
            ns, dne = ops.head_marks(head, use_coaccept=False)
            no_sync = no_sync | ns
            do_not_enter = do_not_enter | dne | ops.tail_marks(tail)
            required.append(ops.in_ref(head))
            required.append(ops.out_ref(tail))
        component = ops.search(tuple(required), no_sync, do_not_enter)
        if component is not None:
            evidence.append(
                DeadlockEvidence(
                    component=component,
                    head=combo[0][0],
                    tail=combo[1][0],
                )
            )
    if obs.is_enabled():
        obs.counter(
            "extensions.pairs_enumerated", analysis=f"k-pairs({k})"
        ).inc(total)
        obs.counter(
            "extensions.pairs_examined", analysis=f"k-pairs({k})"
        ).inc(examined)
    verdict = Verdict.CERTIFIED_FREE if not evidence else Verdict.POSSIBLE_DEADLOCK
    return DeadlockReport(
        verdict=verdict,
        algorithm=f"refined+k-pairs({k})",
        evidence=evidence,
        heads_examined=examined,
        stats={"k": k, "k_tuples_examined": examined},
    )


def k_pairs_3_analysis(
    graph: SyncGraph, backend: str = "index"
) -> DeadlockReport:
    """:func:`k_pairs_analysis` fixed at ``k = 3``.

    A named, picklable registry entry for ``repro.api.ALGORITHMS`` — a
    lambda there would make the registry unpicklable and leak into any
    state that captures an algorithm callable (farm workers, caches).
    """
    return k_pairs_analysis(graph, k=3, backend=backend)

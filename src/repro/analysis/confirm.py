"""Bounded confirmation of possible-deadlock reports.

The polynomial detectors are conservative; when they report a possible
deadlock, a bounded exact search can often settle the question on
real-world-sized programs:

* a witness upgrades the verdict to **confirmed** with a concrete
  schedule;
* exhausting the wave space without an anomaly *disproves* the report
  (the alarm was false) — the program is certified after all;
* hitting the state budget leaves the verdict **possible**, faithfully
  — *unless* a deadlock wave was already discovered within the budget,
  in which case the search still returns its witness and the verdict is
  CONFIRMED (budget-faithful search keeps partial findings instead of
  discarding them).

The search runs on the indexed wave engine by default
(``backend="index"``; see :mod:`repro.waves.engine`).

This is a practical layer on top of the paper: it composes the paper's
cheap certification with its own exact semantics as an escalation path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..syncgraph.model import SyncGraph
from ..waves.witness import AnomalyWitness, search_anomaly_witness
from .results import DeadlockReport, Verdict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> confirm)
    from ..api import AnalysisResult

__all__ = [
    "ConfirmationOutcome",
    "ConfirmedReport",
    "confirm_deadlock_report",
    "confirm_analysis",
]


class ConfirmationOutcome:
    CONFIRMED = "confirmed-deadlock"
    REFUTED = "false-alarm-refuted"
    INCONCLUSIVE = "inconclusive-budget-exhausted"
    NOT_NEEDED = "not-needed-already-certified"
    # No witness exists in the *unrolled* graph, but the Lemma-1 guarded
    # copies bound loop iterations, so absence there does not refute a
    # deadlock needing more iterations.  Use :func:`confirm_analysis`
    # (which searches the pre-unroll graph) for a definitive answer.
    UNROLL_LIMITED = "refuted-modulo-loop-unroll"


@dataclass
class ConfirmedReport:
    """A deadlock report augmented with a confirmation attempt."""

    report: DeadlockReport
    outcome: str
    witness: Optional[AnomalyWitness] = None
    states_budget: int = 0

    @property
    def final_verdict(self) -> str:
        if self.outcome == ConfirmationOutcome.CONFIRMED:
            return ConfirmationOutcome.CONFIRMED
        if self.outcome == ConfirmationOutcome.REFUTED:
            return Verdict.CERTIFIED_FREE
        return self.report.verdict

    def describe(self) -> str:
        lines = [self.report.describe(), f"confirmation: {self.outcome}"]
        if self.witness is not None:
            lines.append(self.witness.describe())
        return "\n".join(lines)


def confirm_deadlock_report(
    graph: SyncGraph,
    report: DeadlockReport,
    state_limit: int = 100_000,
    backend: str = "index",
    loop_faithful: Optional[bool] = None,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> ConfirmedReport:
    """Attempt to confirm or refute a possible-deadlock report.

    Does nothing when the report already certifies the program.
    ``backend`` selects the wave-search kernel (bit-exact either way);
    ``strategy`` the expansion order (``"bfs"``, ``"astar"``, or
    ``"beam"`` with ``beam_width`` — see :mod:`repro.waves.guide`).
    Strategy never changes the outcome grading: a CONFIRMED witness is
    a real schedule whatever order found it, and REFUTED requires an
    unlimited, untruncated search (a truncated beam can only CONFIRM
    or stay INCONCLUSIVE).

    ``loop_faithful`` states whether ``graph`` reflects the program's
    true loop semantics.  When it does not (an approximate Lemma-1
    unroll — inferred from ``report.stats["unroll_approximated"]`` when
    left ``None``), an exhausted witness search yields
    :data:`ConfirmationOutcome.UNROLL_LIMITED` instead of REFUTED: the
    unrolled graph under-approximates loop behaviours, so absence of a
    witness there cannot certify the program.
    """
    if loop_faithful is None:
        loop_faithful = not report.stats.get("unroll_approximated", False)
    if report.deadlock_free:
        return ConfirmedReport(
            report=report,
            outcome=ConfirmationOutcome.NOT_NEEDED,
            states_budget=state_limit,
        )
    outcome = search_anomaly_witness(
        graph, kind="deadlock", state_limit=state_limit,
        backend=backend, strategy=strategy, beam_width=beam_width,
    )
    if outcome.witness is not None:
        return ConfirmedReport(
            report=report,
            outcome=ConfirmationOutcome.CONFIRMED,
            witness=outcome.witness,
            states_budget=state_limit,
        )
    if outcome.limited:
        return ConfirmedReport(
            report=report,
            outcome=ConfirmationOutcome.INCONCLUSIVE,
            states_budget=state_limit,
        )
    return ConfirmedReport(
        report=report,
        outcome=(
            ConfirmationOutcome.REFUTED
            if loop_faithful
            else ConfirmationOutcome.UNROLL_LIMITED
        ),
        states_budget=state_limit,
    )


def confirm_analysis(
    result: "AnalysisResult",
    state_limit: int = 100_000,
    backend: str = "index",
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> ConfirmedReport:
    """Confirm or refute one :func:`repro.api.analyze` result.

    Unlike calling :func:`confirm_deadlock_report` on
    ``result.sync_graph`` directly, this picks a *loop-faithful* search
    graph: when the analysis ran on an approximate Lemma-1 unroll, the
    witness search runs on the pre-unroll (inlined) graph instead —
    wave memoization keeps it terminating on cyclic control flow — so
    REFUTED outcomes genuinely certify the program.
    """
    graph = result.sync_graph
    if result.deadlock.stats.get("unroll_approximated"):
        from ..syncgraph.build import build_sync_graph
        from ..transforms.inline import inline_procedures

        inlined, _ = inline_procedures(result.program)
        graph = build_sync_graph(inlined)
    return confirm_deadlock_report(
        graph,
        result.deadlock,
        state_limit=state_limit,
        backend=backend,
        loop_faithful=True,
        strategy=strategy,
        beam_width=beam_width,
    )

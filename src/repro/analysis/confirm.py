"""Bounded confirmation of possible-deadlock reports.

The polynomial detectors are conservative; when they report a possible
deadlock, a bounded exact search can often settle the question on
real-world-sized programs:

* a witness upgrades the verdict to **confirmed** with a concrete
  schedule;
* exhausting the wave space without an anomaly *disproves* the report
  (the alarm was false) — the program is certified after all;
* hitting the state budget leaves the verdict **possible**, faithfully
  — *unless* a deadlock wave was already discovered within the budget,
  in which case the search still returns its witness and the verdict is
  CONFIRMED (budget-faithful search keeps partial findings instead of
  discarding them).

The search runs on the indexed wave engine by default
(``backend="index"``; see :mod:`repro.waves.engine`).

This is a practical layer on top of the paper: it composes the paper's
cheap certification with its own exact semantics as an escalation path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ExplorationLimitError
from ..syncgraph.model import SyncGraph
from ..waves.witness import AnomalyWitness, find_anomaly_witness
from .results import DeadlockReport, Verdict

__all__ = ["ConfirmationOutcome", "ConfirmedReport", "confirm_deadlock_report"]


class ConfirmationOutcome:
    CONFIRMED = "confirmed-deadlock"
    REFUTED = "false-alarm-refuted"
    INCONCLUSIVE = "inconclusive-budget-exhausted"
    NOT_NEEDED = "not-needed-already-certified"


@dataclass
class ConfirmedReport:
    """A deadlock report augmented with a confirmation attempt."""

    report: DeadlockReport
    outcome: str
    witness: Optional[AnomalyWitness] = None
    states_budget: int = 0

    @property
    def final_verdict(self) -> str:
        if self.outcome == ConfirmationOutcome.CONFIRMED:
            return ConfirmationOutcome.CONFIRMED
        if self.outcome == ConfirmationOutcome.REFUTED:
            return Verdict.CERTIFIED_FREE
        return self.report.verdict

    def describe(self) -> str:
        lines = [self.report.describe(), f"confirmation: {self.outcome}"]
        if self.witness is not None:
            lines.append(self.witness.describe())
        return "\n".join(lines)


def confirm_deadlock_report(
    graph: SyncGraph,
    report: DeadlockReport,
    state_limit: int = 100_000,
    backend: str = "index",
) -> ConfirmedReport:
    """Attempt to confirm or refute a possible-deadlock report.

    Does nothing when the report already certifies the program.
    ``backend`` selects the wave-search kernel (bit-exact either way).
    """
    if report.deadlock_free:
        return ConfirmedReport(
            report=report,
            outcome=ConfirmationOutcome.NOT_NEEDED,
            states_budget=state_limit,
        )
    try:
        witness = find_anomaly_witness(
            graph, kind="deadlock", state_limit=state_limit,
            backend=backend,
        )
    except ExplorationLimitError:
        return ConfirmedReport(
            report=report,
            outcome=ConfirmationOutcome.INCONCLUSIVE,
            states_budget=state_limit,
        )
    if witness is not None:
        return ConfirmedReport(
            report=report,
            outcome=ConfirmationOutcome.CONFIRMED,
            witness=witness,
            states_budget=state_limit,
        )
    return ConfirmedReport(
        report=report,
        outcome=ConfirmationOutcome.REFUTED,
        states_budget=state_limit,
    )

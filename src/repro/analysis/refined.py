"""The refined deadlock detection algorithm (paper, Section 4.2).

For every possible head node ``h``, the algorithm hypothesizes that
``h`` heads a deadlock cycle, prunes CLG edges that could only occur in
cycles spurious under that hypothesis, and searches for a strongly
connected component containing ``h_i``:

* nodes sequenceable with ``h`` cannot wait on the same execution wave,
  so they cannot be co-head nodes: their ``k_i`` CLG node loses its sync
  edges (they may still serve as *tail* nodes through ``k_o`` — tails
  never execute, so ordering facts do not constrain them; the paper
  makes the ``k_i``-only marking explicit in the extensions section);
* other nodes of ``h``'s own task cannot be co-heads either — a valid
  deadlock cycle enters each task exactly once (constraint 1c), so
  their ``k_i`` nodes lose sync edges as well;
* sync partners of ``h`` cannot be co-heads: two waiting wave nodes
  joined by a sync edge could rendezvous, so the wave would not be
  anomalous (constraint 2); their ``k_i`` nodes lose sync edges;
* accept nodes of the same signal type as an accept head ``h``
  (``COACCEPT[h]``) lose sync edges on both split nodes — by Lemma 2, a
  cycle leaving ``h``'s task through a same-type accept has a pair of
  head nodes that can rendezvous, violating constraint 2;
* nodes not co-executable with ``h`` (``NOT-COEXEC[h]``) are removed
  outright (DO-NOT-ENTER), approximating constraint 3b.

If no hypothesis yields a component, the program is certified
deadlock-free.  Any component is conservatively reported as a possible
deadlock.  Total cost is ``O(|N_CLG| · (|N_CLG| + |E_CLG|))``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .. import obs
from ..errors import AnalysisError
from ..syncgraph.clg import CLG, CLGEdge, CLGNode, EdgeKind, build_clg
from ..syncgraph.model import SyncGraph, SyncNode
from .coexec import CoExecInfo, compute_coexec
from .index import AnalysisIndex
from .naive import project_component
from .orderings import OrderingInfo, compute_orderings
from .results import DeadlockEvidence, DeadlockReport, Verdict

__all__ = [
    "possible_heads",
    "coaccept_of",
    "refined_deadlock_analysis",
    "component_for_head",
    "PRUNE_RULES",
    "BACKENDS",
]

# "index" runs the integer bitset kernels of repro.analysis.index;
# "reference" runs the original set-based path, kept as the oracle the
# differential tests compare against.
BACKENDS = ("index", "reference")

# Pruning rules, in marking order.  A node marked by several rules is
# attributed to the first that claims it (the counters measure where
# pruning power comes from, not set-theoretic overlap).
PRUNE_RULES = (
    "sequenceable",
    "same_task",
    "sync_partner",
    "coaccept",
    "constraint4",
    "not_coexec",
)


def possible_heads(graph: SyncGraph) -> Tuple[SyncNode, ...]:
    """``POSS-HEADS``: nodes with a sync edge and a rendezvous successor.

    A head node is entered via a sync edge and must traverse at least
    one control edge to a tail node (which exits via a sync edge), so a
    node with no rendezvous control successor cannot head a cycle.
    """
    heads = []
    for node in graph.rendezvous_nodes:
        if not graph.sync_neighbors(node):
            continue
        if any(
            succ.is_rendezvous for succ in graph.control_successors(node)
        ):
            heads.append(node)
    return tuple(heads)


def coaccept_of(graph: SyncGraph, node: SyncNode) -> Tuple[SyncNode, ...]:
    """``COACCEPT[node]``: other accepts of the same signal type.

    Empty for signaling (send) nodes, per the paper.
    """
    if node.kind != "accept":
        return ()
    assert node.signal is not None
    return tuple(
        other for other in graph.accepters_of(node.signal) if other is not node
    )


def component_for_head(
    graph: SyncGraph,
    clg: CLG,
    head: SyncNode,
    orderings: OrderingInfo,
    coexec: CoExecInfo,
    use_coaccept: bool = True,
    global_no_sync: FrozenSet[SyncNode] = frozenset(),
    prune_counts: Optional[Dict[str, int]] = None,
) -> Optional[FrozenSet[CLGNode]]:
    """Run one head hypothesis; return the cyclic component of ``h_i``.

    Returns None when the pruned CLG has no cycle through ``h_i`` —
    i.e. ``head`` cannot head any constraint-1 cycle surviving the
    SEQUENCEABLE / COACCEPT / NOT-COEXEC eliminations.

    ``global_no_sync`` carries hypothesis-independent head exclusions
    (nodes proven unable to wait on any anomalous wave, e.g. by the
    constraint-4 breaker check): their ``k_i`` loses sync edges.

    ``prune_counts``, when given, accumulates per-rule pruning
    effectiveness (``<rule>_nodes`` marks and ``<rule>_sync_edges`` /
    ``not_coexec_edges`` actual removals, rules per :data:`PRUNE_RULES`)
    across calls.  It adds an extra edge sweep per head, so the
    observability layer only requests it when enabled.
    """
    no_sync: Set[CLGNode] = {clg.in_node(k) for k in global_no_sync}
    do_not_enter: Set[CLGNode] = set()
    for k in orderings.sequenceable_with(head):
        no_sync.add(clg.in_node(k))
    for k in graph.nodes_of_task(head.task):  # constraint 1c
        if k is not head:
            no_sync.add(clg.in_node(k))
    for k in graph.sync_neighbors(head):  # constraint 2
        no_sync.add(clg.in_node(k))
    if use_coaccept:
        for k in coaccept_of(graph, head):
            no_sync.add(clg.in_node(k))
            no_sync.add(clg.out_node(k))
    for k in coexec.not_coexec_with(head):
        do_not_enter.add(clg.in_node(k))
        do_not_enter.add(clg.out_node(k))

    if prune_counts is not None:
        _count_pruning(
            graph,
            clg,
            head,
            orderings,
            coexec,
            global_no_sync,
            use_coaccept,
            do_not_enter,
            prune_counts,
        )

    h_i = clg.in_node(head)
    if h_i in do_not_enter or h_i in no_sync:
        return None

    def edge_ok(edge: CLGEdge) -> bool:
        if edge.kind != EdgeKind.SYNC:
            return True
        return edge.src not in no_sync and edge.dst not in no_sync

    def node_ok(node: CLGNode) -> bool:
        return node not in do_not_enter

    for component in clg.cyclic_components(edge_ok, node_ok):
        if h_i in component:
            return component
    return None


def _count_pruning(
    graph: SyncGraph,
    clg: CLG,
    head: SyncNode,
    orderings: OrderingInfo,
    coexec: CoExecInfo,
    global_no_sync: FrozenSet[SyncNode],
    use_coaccept: bool,
    do_not_enter: Set[CLGNode],
    prune_counts: Dict[str, int],
) -> None:
    """Accumulate per-rule pruning effectiveness for one hypothesis.

    ``<rule>_nodes`` counts CLG node marks/removals; ``<rule>_sync_edges``
    counts sync edges actually suppressed by that rule's NO-SYNC marks
    (``not_coexec_edges`` counts all edges lost to DO-NOT-ENTER node
    removal).  Attribution is first-match in :data:`PRUNE_RULES` order.
    """
    coacc: Set[CLGNode] = set()
    if use_coaccept:
        for k in coaccept_of(graph, head):
            coacc.add(clg.in_node(k))
            coacc.add(clg.out_node(k))
    rule_marks = (
        (
            "sequenceable",
            {clg.in_node(k) for k in orderings.sequenceable_with(head)},
        ),
        (
            "same_task",
            {
                clg.in_node(k)
                for k in graph.nodes_of_task(head.task)
                if k is not head
            },
        ),
        (
            "sync_partner",
            {clg.in_node(k) for k in graph.sync_neighbors(head)},
        ),
        ("coaccept", coacc),
        ("constraint4", {clg.in_node(k) for k in global_no_sync}),
    )
    claimed: Dict[CLGNode, str] = {}
    for rule, marks in rule_marks:
        fresh = [n for n in marks if n not in claimed]
        for n in fresh:
            claimed[n] = rule
        prune_counts[f"{rule}_nodes"] = prune_counts.get(
            f"{rule}_nodes", 0
        ) + len(fresh)
    prune_counts["not_coexec_nodes"] = prune_counts.get(
        "not_coexec_nodes", 0
    ) + len(do_not_enter)

    for edge in clg.edges():
        if edge.src in do_not_enter or edge.dst in do_not_enter:
            prune_counts["not_coexec_edges"] = (
                prune_counts.get("not_coexec_edges", 0) + 1
            )
            continue
        if edge.kind != EdgeKind.SYNC:
            continue
        rule = claimed.get(edge.src) or claimed.get(edge.dst)
        if rule is not None:
            key = f"{rule}_sync_edges"
            prune_counts[key] = prune_counts.get(key, 0) + 1


def refined_deadlock_analysis(
    graph: SyncGraph,
    clg: Optional[CLG] = None,
    orderings: Optional[OrderingInfo] = None,
    coexec: Optional[CoExecInfo] = None,
    use_coaccept: bool = True,
    global_no_sync: FrozenSet[SyncNode] = frozenset(),
    backend: str = "index",
    index: Optional[AnalysisIndex] = None,
) -> DeadlockReport:
    """Algorithm 2: per-head SCC search with spurious-cycle elimination.

    Precomputed ``orderings``/``coexec`` may be passed in (e.g. enriched
    with external co-executability facts); otherwise the built-in
    conservative approximations are used.

    ``backend`` selects the SCC/marking machinery: ``"index"`` (the
    default) runs the bitset kernels of :class:`AnalysisIndex`,
    ``"reference"`` the original set-based path.  Both produce
    identical reports — verdict, evidence and stats (including the
    pruning counters).  A prebuilt ``index`` may be shared across
    analyses; it supersedes ``clg``/``orderings``/``coexec``.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if graph.has_control_cycle():
        raise AnalysisError(
            "refined analysis requires acyclic control flow; apply "
            "repro.transforms.unroll.remove_loops first"
        )
    with obs.span("refined.precompute", backend=backend):
        if index is not None:
            clg = index.clg
            orderings = index.orderings
            coexec = index.coexec
        else:
            if clg is None:
                clg = build_clg(graph)
            if orderings is None:
                orderings = compute_orderings(graph)
            if coexec is None:
                coexec = compute_coexec(graph)
            if backend == "index":
                index = AnalysisIndex(
                    graph, clg=clg, orderings=orderings, coexec=coexec
                )

    observing = obs.is_enabled()
    prune_counts: Optional[Dict[str, int]] = {} if observing else None
    heads = possible_heads(graph)
    evidence: List[DeadlockEvidence] = []
    visited_total = 0
    with obs.span("refined.heads", heads=len(heads), backend=backend):
        if backend == "index":
            assert index is not None
            global_mask = index.in_mask(global_no_sync)
            for head in heads:
                no_sync, do_not_enter = index.head_marks(head, use_coaccept)
                no_sync |= global_mask
                if prune_counts is not None:
                    index.accumulate_prune_counts(
                        head, use_coaccept, global_mask, do_not_enter,
                        prune_counts,
                    )
                h_id = index.in_id[head]
                if ((do_not_enter | no_sync) >> h_id) & 1:
                    continue
                ids, visited = index.cyclic_component_ids(
                    h_id, no_sync, do_not_enter
                )
                visited_total += visited
                if ids is not None:
                    evidence.append(
                        DeadlockEvidence(
                            component=index.project_ids(ids), head=head
                        )
                    )
        else:
            for head in heads:
                component = component_for_head(
                    graph,
                    clg,
                    head,
                    orderings,
                    coexec,
                    use_coaccept,
                    global_no_sync,
                    prune_counts,
                )
                if component is not None:
                    evidence.append(
                        DeadlockEvidence(
                            component=project_component(component), head=head
                        )
                    )
    verdict = Verdict.CERTIFIED_FREE if not evidence else Verdict.POSSIBLE_DEADLOCK
    stats = {
        "clg_nodes": clg.node_count,
        "clg_edges": clg.edge_count,
        "poss_heads": len(heads),
        "ordered_pairs": orderings.pair_count,
        "not_coexec_pairs": coexec.pair_count,
    }
    if observing:
        obs.counter("refined.heads_examined").inc(len(heads))
        obs.counter("refined.scc_passes").inc(len(heads))
        obs.counter("refined.components_flagged").inc(len(evidence))
        if backend == "index":
            obs.counter("refined.tarjan_nodes_visited").inc(visited_total)
        assert prune_counts is not None
        for rule in PRUNE_RULES:
            obs.counter("refined.pruned_nodes", rule=rule).inc(
                prune_counts.get(f"{rule}_nodes", 0)
            )
            edge_key = (
                "not_coexec_edges"
                if rule == "not_coexec"
                else f"{rule}_sync_edges"
            )
            obs.counter("refined.pruned_edges", rule=rule).inc(
                prune_counts.get(edge_key, 0)
            )
        stats["pruning"] = dict(sorted(prune_counts.items()))
    return DeadlockReport(
        verdict=verdict,
        algorithm="refined",
        evidence=evidence,
        heads_examined=len(heads),
        stats=stats,
    )

"""Integer-indexed bitset kernels for the refined algorithm family.

The reference implementations in :mod:`repro.analysis.refined` and
:mod:`repro.analysis.extensions` run each head hypothesis through
per-edge Python closures over hashed :class:`CLGNode` sets and
re-enumerate *every* SCC of the pruned CLG.  That is faithful to the
paper but leaves large constant factors on the table.  This module
provides :class:`AnalysisIndex`: built once per sync graph, it

* assigns dense integer ids to CLG nodes (``clg.node_index`` order) and
  stores the CLG as CSR-style int adjacency arrays, split into sync
  and non-sync (control/internal) edges — the only distinction the
  NO-SYNC marking needs;
* precomputes, per rendezvous node, the pruning mark vectors of the
  refined algorithm as int bitsets: SEQUENCEABLE-with (symmetric),
  same-task (constraint 1c), sync-partners (constraint 2), COACCEPT
  (Lemma 2) and NOT-COEXEC (constraint 3b);
* runs an iterative Tarjan kernel rooted at the hypothesis node that
  takes ``no_sync`` / ``do_not_enter`` exclusion bitsets directly and
  early-exits as soon as the root's component is decided: nodes
  unreachable from ``h_i`` are never visited, and components other
  than ``h_i``'s are never materialized.

Mark vectors are memoized per ``(head, use_coaccept)`` so the
extension analyses stop recomputing them inside their O(N²)–O(N^k)
combination loops.

Everything here must be observationally equivalent to the reference
set-based paths (same verdicts, same evidence, same ``stats`` —
including the per-rule pruning counters); the hypothesis differential
tests in ``tests/test_index.py`` enforce that.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .. import obs
from ..syncgraph.clg import CLG, EdgeKind, build_clg
from ..syncgraph.model import SyncGraph, SyncNode
from .coexec import CoExecInfo, compute_coexec
from .orderings import OrderingInfo, compute_orderings

__all__ = ["AnalysisIndex"]


def _coaccept(graph: SyncGraph, node: SyncNode) -> Tuple[SyncNode, ...]:
    # Same semantics as refined.coaccept_of; duplicated locally because
    # refined imports this module for its indexed backend.
    if node.kind != "accept":
        return ()
    assert node.signal is not None
    return tuple(
        other for other in graph.accepters_of(node.signal) if other is not node
    )


class AnalysisIndex:
    """Dense-id bitset view of one sync graph + CLG.

    Construct once and share across ``refined_deadlock_analysis``,
    ``constraint4`` and all four extension analyses via their
    ``index=`` parameter.  The precomputed ``clg`` / ``orderings`` /
    ``coexec`` are exposed so callers can hand the same objects to the
    reference path for differential runs.
    """

    def __init__(
        self,
        graph: SyncGraph,
        clg: Optional[CLG] = None,
        orderings: Optional[OrderingInfo] = None,
        coexec: Optional[CoExecInfo] = None,
    ) -> None:
        self.graph = graph
        self.clg = clg if clg is not None else build_clg(graph)
        self.orderings = (
            orderings if orderings is not None else compute_orderings(graph)
        )
        self.coexec = coexec if coexec is not None else compute_coexec(graph)

        clg = self.clg
        node_index = clg.node_index
        nodes = clg.nodes
        n = len(nodes)
        self.node_count = n
        self._sync_of: List[Optional[SyncNode]] = [
            node.sync for node in nodes
        ]

        self.in_id: Dict[SyncNode, int] = {}
        self.out_id: Dict[SyncNode, int] = {}
        in_bits = 0
        out_bits = 0
        for s in graph.rendezvous_nodes:
            i = node_index[clg.in_node(s)]
            o = node_index[clg.out_node(s)]
            self.in_id[s] = i
            self.out_id[s] = o
            in_bits |= 1 << i
            out_bits |= 1 << o
        self.in_bits = in_bits
        self.out_bits = out_bits
        self.split_bits = in_bits | out_bits
        self.full_mask = (1 << n) - 1

        # CSR adjacency, split by the only distinction pruning needs:
        # sync edges (suppressible by NO-SYNC) vs control/internal.
        plain_start = [0] * (n + 1)
        sync_start = [0] * (n + 1)
        plain_dst: List[int] = []
        sync_dst: List[int] = []
        succ_all = [0] * n
        pred_all = [0] * n
        sync_succ = [0] * n
        sync_pred = [0] * n
        self_loops = 0
        for v, node in enumerate(nodes):
            for edge in clg.out_edges(node):
                w = node_index[edge.dst]
                succ_all[v] |= 1 << w
                pred_all[w] |= 1 << v
                if v == w:
                    self_loops |= 1 << v
                if edge.kind == EdgeKind.SYNC:
                    sync_dst.append(w)
                    sync_succ[v] |= 1 << w
                    sync_pred[w] |= 1 << v
                else:
                    plain_dst.append(w)
            plain_start[v + 1] = len(plain_dst)
            sync_start[v + 1] = len(sync_dst)
        self.plain_start = plain_start
        self.plain_dst = plain_dst
        self.sync_start = sync_start
        self.sync_dst = sync_dst
        self.succ_all_bits = succ_all
        self.pred_all_bits = pred_all
        self.sync_succ_bits = sync_succ
        self.sync_pred_bits = sync_pred
        self.self_loop_bits = self_loops

        # Per-head pruning mark vectors (in-node side unless noted).
        seq_bits: Dict[SyncNode, int] = {}
        same_task_bits: Dict[SyncNode, int] = {}
        partner_bits: Dict[SyncNode, int] = {}
        coaccept_bits: Dict[SyncNode, int] = {}
        not_coexec_bits: Dict[SyncNode, int] = {}
        task_bits: Dict[str, int] = {}
        in_id = self.in_id
        out_id = self.out_id
        for s in graph.rendezvous_nodes:
            m = 0
            for k in self.orderings.sequenceable_with(s):
                m |= 1 << in_id[k]
            seq_bits[s] = m
            m = 0
            for k in graph.sync_neighbors(s):
                m |= 1 << in_id[k]
            partner_bits[s] = m
            m = 0
            for k in _coaccept(graph, s):
                m |= (1 << in_id[k]) | (1 << out_id[k])
            coaccept_bits[s] = m
            m = 0
            for k in self.coexec.not_coexec_with(s):
                m |= (1 << in_id[k]) | (1 << out_id[k])
            not_coexec_bits[s] = m
        for task in graph.tasks:
            t_in = 0
            t_all = 0
            for k in graph.nodes_of_task(task):
                t_in |= 1 << in_id[k]
                t_all |= (1 << in_id[k]) | (1 << out_id[k])
            task_bits[task] = t_all
            for k in graph.nodes_of_task(task):
                same_task_bits[k] = t_in & ~(1 << in_id[k])
        self.seq_bits = seq_bits
        self.same_task_bits = same_task_bits
        self.partner_bits = partner_bits
        self.coaccept_bits = coaccept_bits
        self.not_coexec_bits = not_coexec_bits
        self.task_bits = task_bits

        self._mark_cache: Dict[Tuple[SyncNode, bool], Tuple[int, int]] = {}
        if obs.is_enabled():
            obs.counter("index.builds").inc()
            obs.gauge("index.nodes").set(n)

    # -- mark vectors ------------------------------------------------------

    def head_marks(
        self, head: SyncNode, use_coaccept: bool = True
    ) -> Tuple[int, int]:
        """``(no_sync, do_not_enter)`` bitsets for one hypothesized head.

        Memoized: the extension analyses query the same head inside
        O(N²)–O(N^k) combination loops.
        """
        key = (head, use_coaccept)
        cached = self._mark_cache.get(key)
        observing = obs.is_enabled()
        if cached is not None:
            if observing:
                obs.counter("index.mark_cache_hits").inc()
            return cached
        no_sync = (
            self.seq_bits[head]
            | self.same_task_bits[head]
            | self.partner_bits[head]
        )
        if use_coaccept:
            no_sync |= self.coaccept_bits[head]
        marks = (no_sync, self.not_coexec_bits[head])
        self._mark_cache[key] = marks
        if observing:
            obs.counter("index.mark_cache_misses").inc()
        return marks

    def in_mask(self, nodes: Iterable[SyncNode]) -> int:
        """Bitset of the ``k_i`` ids of ``nodes``."""
        m = 0
        for k in nodes:
            m |= 1 << self.in_id[k]
        return m

    def task_restriction(self, tasks: Iterable[str]) -> int:
        """DO-NOT-ENTER bits removing every split node outside ``tasks``."""
        allowed = 0
        for task in tasks:
            allowed |= self.task_bits[task]
        return self.split_bits & ~allowed

    def project_ids(self, ids: Iterable[int]) -> FrozenSet[SyncNode]:
        """Component ids → sync-graph nodes (``project_component``)."""
        sync_of = self._sync_of
        return frozenset(
            sync_of[i] for i in ids if sync_of[i] is not None
        )

    # -- the kernel --------------------------------------------------------

    def cyclic_component_ids(
        self, root: int, no_sync: int, do_not_enter: int
    ) -> Tuple[Optional[List[int]], int]:
        """Cyclic SCC of ``root`` in the pruned CLG, plus nodes visited.

        Iterative Tarjan rooted at ``root`` only: sync edges incident to
        a ``no_sync`` endpoint and all edges incident to a
        ``do_not_enter`` node are skipped via bit tests.  Early exit —
        the DFS never leaves ``root``'s reachable set, components other
        than ``root``'s pop unmaterialized, and the walk stops the
        moment ``root``'s own component pops.  Returns ``(ids, visited)``
        with ``ids`` None when the component is acyclic (singleton
        without a self-loop); ``visited`` counts discovered nodes, the
        quantity the early exit saves versus a full enumeration.

        Callers must pre-check that ``root`` itself is not excluded.
        """
        plain_start = self.plain_start
        plain_dst = self.plain_dst
        sync_start = self.sync_start
        sync_dst = self.sync_dst
        excluded = do_not_enter
        ns_or_dne = no_sync | do_not_enter

        index: Dict[int, int] = {root: 0}
        lowlink: Dict[int, int] = {root: 0}
        on_stack = 1 << root
        stack = [root]
        counter = 1

        def neighbors(v: int) -> List[int]:
            out = [
                w
                for w in plain_dst[plain_start[v] : plain_start[v + 1]]
                if not (excluded >> w) & 1
            ]
            if not (no_sync >> v) & 1:
                out += [
                    w
                    for w in sync_dst[sync_start[v] : sync_start[v + 1]]
                    if not (ns_or_dne >> w) & 1
                ]
            return out

        work: List[Tuple[int, Iterable[int]]] = [
            (root, iter(neighbors(root)))
        ]
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack |= 1 << w
                    work.append((w, iter(neighbors(w))))
                    advanced = True
                    break
                if (on_stack >> w) & 1 and index[w] < lowlink[v]:
                    lowlink[v] = index[w]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
            if lowlink[v] == index[v]:
                if v == root:
                    # The root is the first node discovered, hence the
                    # root of its own SCC: everything still on the
                    # Tarjan stack is the component.  Decided — stop.
                    if len(stack) > 1 or (self.self_loop_bits >> root) & 1:
                        return stack, len(index)
                    return None, len(index)
                member = stack.pop()
                on_stack &= ~(1 << member)
                while member != v:
                    member = stack.pop()
                    on_stack &= ~(1 << member)
        return None, len(index)  # pragma: no cover - root always pops

    # -- pruning-effectiveness counters ------------------------------------

    def accumulate_prune_counts(
        self,
        head: SyncNode,
        use_coaccept: bool,
        global_no_sync: int,
        do_not_enter: int,
        counts: Dict[str, int],
    ) -> None:
        """Bitset replication of ``refined._count_pruning``.

        Same attribution rules: first-match claiming in PRUNE_RULES
        order for node marks; sync edges attributed src-first (the src
        of a sync edge is always an out-node, claimable only by
        COACCEPT); DO-NOT-ENTER removals claim all incident edges.
        ``<rule>_nodes`` keys are always written, edge keys only when
        non-zero — matching the reference's incremental dict writes.
        """
        rule_marks = (
            ("sequenceable", self.seq_bits[head]),
            ("same_task", self.same_task_bits[head]),
            ("sync_partner", self.partner_bits[head]),
            ("coaccept", self.coaccept_bits[head] if use_coaccept else 0),
            ("constraint4", global_no_sync),
        )
        claimed_all = 0
        claim: Dict[str, int] = {}
        for rule, marks in rule_marks:
            fresh = marks & ~claimed_all
            claimed_all |= fresh
            claim[rule] = fresh
            counts[f"{rule}_nodes"] = counts.get(
                f"{rule}_nodes", 0
            ) + fresh.bit_count()
        dne = do_not_enter
        counts["not_coexec_nodes"] = counts.get(
            "not_coexec_nodes", 0
        ) + dne.bit_count()

        succ_all = self.succ_all_bits
        pred_all = self.pred_all_bits
        nce = 0
        m = dne
        while m:
            v = (m & -m).bit_length() - 1
            m &= m - 1
            # Out-edges of a removed node, plus in-edges from surviving
            # sources (counting each edge between two removed nodes once).
            nce += succ_all[v].bit_count()
            nce += (pred_all[v] & ~dne).bit_count()
        if nce:
            counts["not_coexec_edges"] = counts.get("not_coexec_edges", 0) + nce

        sync_succ = self.sync_succ_bits
        sync_pred = self.sync_pred_bits
        src_claimed = claim["coaccept"] & self.out_bits
        src_count = 0
        m = src_claimed & ~dne
        while m:
            v = (m & -m).bit_length() - 1
            m &= m - 1
            src_count += (sync_succ[v] & ~dne).bit_count()
        for rule, fresh in claim.items():
            count = src_count if rule == "coaccept" else 0
            m = fresh & self.in_bits & ~dne
            while m:
                w = (m & -m).bit_length() - 1
                m &= m - 1
                count += (sync_pred[w] & ~dne & ~src_claimed).bit_count()
            if count:
                key = f"{rule}_sync_edges"
                counts[key] = counts.get(key, 0) + count

"""Batch-analysis farm: parallel scheduling + content-addressed caching.

The farm turns the one-shot :func:`repro.analyze` pipeline into a
corpus engine:

* :mod:`repro.farm.cache` — results keyed by a canonical hash of the
  parsed program, the algorithm, the state limit, and a bump-on-change
  pipeline version stamp; memory LRU over a pickle-per-entry directory.
* :mod:`repro.farm.pool` — fault-isolated
  :class:`~concurrent.futures.ProcessPoolExecutor` workers with
  per-item timeouts and crash containment, plus a serial fallback.
* :mod:`repro.farm.runner` — the batch driver: file/dir/glob
  collection, cache-first scheduling, and schema-versioned
  :class:`~repro.farm.runner.BatchReport` output (JSON and JSONL).

Typical use::

    from repro.farm import collect_sources, run_batch

    report = run_batch(
        collect_sources(["workloads/"]), jobs=4, cache=True
    )
    print(report.describe())

Library users who already hold sources or parsed programs can instead
call :func:`repro.analyze_many`, which routes through the same runner.
"""

from .cache import (
    CACHE_FORMAT,
    PIPELINE_VERSION,
    CacheStats,
    LruFront,
    ResultCache,
    cache_key,
    canonical_source,
    default_cache_dir,
)
from .pool import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    WorkItem,
    WorkOutcome,
    run_pool,
)
from .runner import (
    BATCH_SCHEMA_VERSION,
    BatchReport,
    ItemReport,
    collect_sources,
    run_batch,
)

__all__ = [
    "BATCH_SCHEMA_VERSION",
    "CACHE_FORMAT",
    "PIPELINE_VERSION",
    "STATUS_CRASHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "BatchReport",
    "CacheStats",
    "LruFront",
    "ItemReport",
    "ResultCache",
    "WorkItem",
    "WorkOutcome",
    "cache_key",
    "canonical_source",
    "collect_sources",
    "default_cache_dir",
    "run_batch",
    "run_pool",
]

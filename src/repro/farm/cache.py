"""Content-addressed result cache for the batch-analysis farm.

An analysis run is a pure function of (canonical program, algorithm,
state limit, pipeline version), so its :class:`~repro.api.AnalysisResult`
can be keyed by a hash of those inputs and reused across runs and
processes.  Keys hash the *parsed* program rendered back through the
pretty-printer, not raw source bytes — comments and whitespace never
reach the AST, so edits that cannot change the analysis cannot change
the key either.

:data:`PIPELINE_VERSION` is a bump-on-change stamp folded into every
key.  Any PR that changes analysis semantics (detector logic, the
transforms, sync-graph construction, result dataclasses) must bump it;
stale entries then simply stop being addressable and age out, so no
explicit invalidation pass is needed.

The cache is two-level: an in-memory LRU front (per
:class:`ResultCache` instance) over a pickle-per-entry disk backend
(shared across processes).  Disk entries that fail to load for any
reason — truncated writes, unpickling errors, a key mismatch, an old
format — are treated as misses and deleted, never raised.

Entries are pickles: only point a cache at directories you trust, the
same caveat as pytest's or mypy's cache.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional, OrderedDict as OrderedDictT, Union
from collections import OrderedDict

from ..lang.ast_nodes import Program
from ..lang.parser import parse_program
from ..lang.pretty import pretty

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> farm)
    from ..api import AnalysisResult

__all__ = [
    "PIPELINE_VERSION",
    "CACHE_FORMAT",
    "CacheStats",
    "LruFront",
    "ResultCache",
    "cache_key",
    "canonical_source",
    "default_cache_dir",
]

# Bump whenever analysis semantics change: detector logic, transforms,
# sync-graph construction, or the shape of AnalysisResult.  Old entries
# become unaddressable (different key), so they are never served stale.
# v3: budget-faithful exact exploration — analyze(exact=...) now returns
# a partial possible-deadlock report with stats["exploration_limited"]
# instead of raising on budget exhaustion (PR 5).
# v4: exact exploration of loop programs walks the pre-unroll graph when
# Lemma-1 only approximated (stats gain unroll_approximated /
# explored_pre_unroll_graph), and lint-enabled batch entries store a
# {"analysis", "lint_counts"} wrapper (PR 7).
# v5: AnalysisResult gained the source-provenance ``uri`` field
# (repro.server in-memory buffers); older pickles miss the attribute.
# v6: guided exact search — exact reports gained stats["strategy"] (and
# beam_width/beam_truncated for beam runs), and the search strategy /
# beam width joined the cache key: budget-limited runs legitimately
# differ by expansion order, so strategies must not share entries.
PIPELINE_VERSION = 6

# On-disk envelope format, independent of analysis semantics.
CACHE_FORMAT = 1

# Distinguishes "key absent" from a legitimately cached None.
_MISS = object()


def canonical_source(program: Union[str, "Program"]) -> str:
    """The whitespace/comment-neutral form of ``program``.

    Source text is parsed and unparsed; comments are dropped by the
    lexer and layout is normalised by the pretty-printer, so two sources
    differing only in formatting canonicalise identically.  Parse errors
    propagate — an unparseable program has no canonical form.
    """
    if isinstance(program, str):
        program = parse_program(program)
    return pretty(program)


def cache_key(
    program: Union[str, "Program"],
    algorithm: str = "refined",
    state_limit: int = 200_000,
    exact: bool = False,
    lint: bool = False,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> str:
    """Content hash addressing one analysis run.

    Mirrors the :func:`repro.api.analyze` signature plus the farm's
    ``lint`` switch: everything that can change the stored entry is
    hashed, nothing else is.  Lint-enabled entries carry extra payload
    (per-rule diagnostic counts), so they live under distinct keys
    rather than shadowing plain analysis results.  ``strategy`` and
    ``beam_width`` are part of the key because a *budget-limited* exact
    run's verdict legitimately depends on expansion order (an
    exhaustive run does not, but the stats payload still differs);
    ``backend`` stays out — both kernels are bit-exact.
    """
    stamp = "\n".join(
        (
            f"pipeline={PIPELINE_VERSION}",
            f"algorithm={algorithm}",
            f"state_limit={state_limit}",
            f"exact={exact}",
            f"lint={lint}",
            f"strategy={strategy}",
            f"beam_width={beam_width}",
            canonical_source(program),
        )
    )
    return hashlib.sha256(stamp.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    errors: int = 0  # corrupted/unreadable disk entries, counted as misses

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "errors": self.errors,
        }


class LruFront:
    """A bounded, introspectable LRU map: the in-memory cache front.

    Extracted from :class:`ResultCache` so any long-lived holder of hot
    analysis state — the result cache, :class:`repro.server.Session` —
    shares one LRU implementation with uniform size/hit/miss
    introspection (:meth:`snapshot`), instead of each growing a private
    ``OrderedDict`` with ad-hoc counters.

    Thread-safe: the daemon's worker pool shares one front across
    workers, and both the ``OrderedDict`` reordering in :meth:`get` and
    the bare counter increments are read-modify-write sequences that
    corrupt under interleaving (``move_to_end`` on a key another thread
    just evicted raises ``KeyError``; racing ``hits += 1`` loses
    counts).  Every public operation holds one internal lock; the
    critical sections are dict probes, so contention is negligible next
    to the analyses the front memoises.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDictT[str, object] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str, default=None):
        """The value for ``key`` (refreshing recency), else ``default``."""
        with self._lock:
            if key not in self._entries:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]

    def put(self, key: str, value) -> int:
        """Store ``key`` and return how many entries were evicted."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            return evicted

    def items(self):
        """Current ``(key, value)`` pairs, least recently used first."""
        with self._lock:
            return list(self._entries.items())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        # Pure membership probe: no recency refresh, no counter churn.
        with self._lock:
            return key in self._entries

    def snapshot(self) -> dict:
        """Introspection payload for status endpoints / obs gauges."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class ResultCache:
    """Two-level cache: in-memory LRU over a pickle-per-entry directory.

    ``memory_entries`` bounds the LRU front only; the disk backend is
    unbounded (entries are small and content-addressed, ``clear()``
    wipes them).  Disk writes are atomic (temp file + ``os.replace``),
    so a killed run never leaves a half-written entry that a later run
    would trip over — and if anything else corrupts an entry, loading it
    counts as a miss and deletes the file.

    Safe to share across threads: the front is an internally locked
    :class:`LruFront`, the stats counters are guarded here, temp-file
    names include the thread id, and the content-addressed entries
    themselves are immutable (racing writers of one key store identical
    bytes).
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        memory_entries: int = 256,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.memory_entries = memory_entries
        self.stats = CacheStats()
        self.front = LruFront(max_entries=memory_entries)
        # Guards the bare CacheStats counters; the front locks itself.
        self._stats_lock = threading.Lock()

    # -- paths -----------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        # Two-level fan-out keeps any one directory small.
        return self.cache_dir / key[:2] / f"{key}.pkl"

    # -- lookup ----------------------------------------------------------

    def get(self, key: str) -> Optional["AnalysisResult"]:
        """The cached result for ``key``, or None (miss)."""
        cached = self.front.get(key, _MISS)
        if cached is not _MISS:
            with self._stats_lock:
                self.stats.hits += 1
            return cached
        result = self._load_disk(key)
        if result is None:
            with self._stats_lock:
                self.stats.misses += 1
            return None
        self._remember(key, result)
        with self._stats_lock:
            self.stats.hits += 1
        return result

    def put(self, key: str, result: "AnalysisResult") -> None:
        """Store ``result`` under ``key`` (memory + disk)."""
        self._remember(key, result)
        path = self._entry_path(key)
        envelope = {"format": CACHE_FORMAT, "key": key, "result": result}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # pid + thread id: concurrent daemon workers storing the
            # same key must not collide on the temp file either.
            tmp = path.with_suffix(
                f".tmp.{os.getpid()}.{threading.get_ident()}"
            )
            with open(tmp, "wb") as fh:
                pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            with self._stats_lock:
                self.stats.stores += 1
        except OSError:
            # A read-only or full cache dir degrades to memory-only.
            with self._stats_lock:
                self.stats.errors += 1

    def contains(self, key: str) -> bool:
        """Whether ``key`` is resident (front or disk), without loading.

        A pure probe: no stats churn, no LRU refresh, no unpickling —
        used by flush paths that only need to know if a store round-trip
        can be skipped.
        """
        return key in self.front or self.on_disk(key)

    def on_disk(self, key: str) -> bool:
        """Whether ``key`` has a disk entry — i.e. survives this
        process.  Flush paths use this rather than :meth:`contains`,
        which the memory front would satisfy even after the file is
        gone."""
        return self._entry_path(key).exists()

    def clear(self) -> None:
        """Drop the memory front and delete every disk entry."""
        self.front.clear()
        if not self.cache_dir.exists():
            return
        for entry in self.cache_dir.glob("??/*.pkl"):
            try:
                entry.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        """Number of entries on disk."""
        if not self.cache_dir.exists():
            return 0
        return sum(1 for _ in self.cache_dir.glob("??/*.pkl"))

    # -- internals -------------------------------------------------------

    def _remember(self, key: str, result: "AnalysisResult") -> None:
        evicted = self.front.put(key, result)
        with self._stats_lock:
            self.stats.evictions += evicted

    def _load_disk(self, key: str) -> Optional["AnalysisResult"]:
        path = self._entry_path(key)
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
            if (
                not isinstance(envelope, dict)
                or envelope.get("format") != CACHE_FORMAT
                or envelope.get("key") != key
            ):
                raise ValueError("cache entry envelope mismatch")
            return envelope["result"]
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupted, truncated, or foreign entry: a miss, not a
            # crash.  Delete it so the slot heals on the next store.
            with self._stats_lock:
                self.stats.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

"""Fault-isolated parallel execution of analysis work items.

The pool wraps :class:`concurrent.futures.ProcessPoolExecutor` with the
two guarantees a batch run needs and the executor alone does not give:

* **Per-item timeouts.**  A running task cannot be cancelled through
  the executor API, so when an item overruns its deadline the pool
  marks it ``TIMEOUT``, terminates the worker processes, rebuilds the
  executor, and requeues the innocent in-flight items.
* **Crash containment.**  A worker dying (segfault, ``os._exit``, OOM
  kill) breaks the whole executor and poisons every in-flight future.
  The pool rebuilds the executor and re-runs the poisoned items in
  *quarantine* — one at a time — so the next crash unambiguously
  identifies the culprit: an item that crashes while running alone is
  marked ``CRASHED`` and the rest of the batch continues at full
  parallelism.  (``max_crash_retries`` caps repeated multi-item
  breakages as a safety valve.)

Ordinary Python exceptions inside :func:`analyze` never surface as
future exceptions at all: the worker catches them and returns a
``FAILED`` outcome carrying the traceback, so one malformed program
cannot take down a batch.

``jobs=1`` runs everything serially in-process — no fork/spawn, no
pickling, and therefore no preemptive timeouts or crash isolation
(documented fallback for platforms without usable multiprocessing).

Fault injection: setting ``REPRO_FARM_INJECT_CRASH`` to a substring of
an item label makes the worker die via ``os._exit`` on that item, and
``REPRO_FARM_INJECT_HANG`` makes it sleep forever.  These exist so
crash/timeout containment stays testable end-to-end (tests and CI
drills); both are inert unless explicitly set.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs

__all__ = [
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_CRASHED",
    "SharedProcessPool",
    "WorkItem",
    "WorkOutcome",
    "run_pool",
]

STATUS_OK = "ok"
STATUS_FAILED = "failed"  # exception in the worker (parse/analysis error)
STATUS_TIMEOUT = "timeout"  # exceeded the per-item deadline
STATUS_CRASHED = "crashed"  # worker process died

_CRASH_ENV = "REPRO_FARM_INJECT_CRASH"
_HANG_ENV = "REPRO_FARM_INJECT_HANG"


@dataclass(frozen=True)
class WorkItem:
    """One program to analyze, fully described by picklable values.

    ``lint`` additionally runs the lint rules over the source and
    reports per-rule diagnostic counts alongside the analysis result.
    """

    label: str
    source: str
    algorithm: str = "refined"
    exact: bool = False
    state_limit: int = 200_000
    backend: str = "index"
    lint: bool = False
    strategy: str = "bfs"
    beam_width: Optional[int] = None


@dataclass
class WorkOutcome:
    """What happened to one :class:`WorkItem`.

    ``result`` is set only for ``ok``; ``error`` carries the worker
    traceback for ``failed`` and a short description for
    ``timeout``/``crashed``.  ``lint_counts`` maps rule id to
    diagnostic count for lint-enabled items (``{}`` when the source
    lints clean, ``None`` when linting was off or never ran).
    """

    label: str
    status: str
    result: Optional[object] = field(default=None, repr=False)
    error: Optional[str] = None
    duration_s: float = 0.0
    lint_counts: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def _maybe_inject_fault(label: str) -> None:
    crash = os.environ.get(_CRASH_ENV)
    if crash and crash in label:
        os._exit(86)
    hang = os.environ.get(_HANG_ENV)
    if hang and hang in label:
        while True:  # pragma: no cover - killed by the parent
            time.sleep(60)


def analyze_item(item: WorkItem) -> WorkOutcome:
    """Default worker: run the full pipeline on one item.

    Module-level (hence picklable for spawn-based pools) and
    exception-total: every Python failure becomes a ``FAILED`` outcome.
    """
    # Pool workers inherit the parent's obs session under fork; their
    # copy is never exported, so don't pay for recording into it.  In
    # the serial fallback this runs in the parent itself, whose session
    # must survive.
    if multiprocessing.parent_process() is not None:
        obs.disable()
    _maybe_inject_fault(item.label)
    start = time.perf_counter()
    try:
        from ..api import analyze

        result = analyze(
            item.source,
            algorithm=item.algorithm,
            exact=item.exact,
            state_limit=item.state_limit,
            backend=item.backend,
            strategy=item.strategy,
            beam_width=item.beam_width,
        )
        lint_counts = None
        if item.lint:
            from ..lint import lint_source

            counts: Dict[str, int] = {}
            for diag in lint_source(item.source, path=item.label).diagnostics:
                counts[diag.rule_id] = counts.get(diag.rule_id, 0) + 1
            lint_counts = counts
        return WorkOutcome(
            label=item.label,
            status=STATUS_OK,
            result=result,
            duration_s=time.perf_counter() - start,
            lint_counts=lint_counts,
        )
    except Exception:
        return WorkOutcome(
            label=item.label,
            status=STATUS_FAILED,
            error=traceback.format_exc(),
            duration_s=time.perf_counter() - start,
        )


def _mp_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class SharedProcessPool:
    """A long-lived process executor for request-at-a-time offload.

    :func:`run_pool` spins up a fresh executor per call — right for a
    batch, wasteful for a daemon that offloads one analysis per request
    and would otherwise pay pool startup on every one.  This keeps a
    single :class:`ProcessPoolExecutor` alive across requests and is
    safe to call from many threads at once (the daemon's worker pool
    shares one instance).

    Deliberately *no* per-item preemptive timeout: killing the shared
    pool to stop one overrun would take every other client's in-flight
    work with it.  Requests with a wall-clock budget keep going through
    :func:`run_pool` (private pool, preemptive kill); everything here
    is expected to finish.  A broken pool (worker death) is discarded
    and lazily rebuilt; the poisoned call reports ``CRASHED`` so the
    caller can fall back to in-process execution.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None

    def _discard_executor(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def run(
        self,
        item: WorkItem,
        worker: Callable[[WorkItem], WorkOutcome] = analyze_item,
    ) -> WorkOutcome:
        """Run one item in a pool process, blocking until it finishes."""
        started = time.monotonic()
        try:
            with self._lock:
                if self._executor is None:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.jobs, mp_context=_mp_context()
                    )
                future = self._executor.submit(worker, item)
            return future.result()
        except BrokenProcessPool:
            self._discard_executor()
            obs.counter("farm.worker.crashes").inc()
            return WorkOutcome(
                label=item.label,
                status=STATUS_CRASHED,
                error=(
                    "worker process died while analyzing this item; "
                    "the shared pool was rebuilt"
                ),
                duration_s=time.monotonic() - started,
            )
        except Exception:
            return WorkOutcome(
                label=item.label,
                status=STATUS_FAILED,
                error=traceback.format_exc(),
                duration_s=time.monotonic() - started,
            )

    def close(self) -> None:
        """Shut the executor down; a later :meth:`run` rebuilds it."""
        self._discard_executor()

    def __enter__(self) -> "SharedProcessPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def run_pool(
    items: Sequence[WorkItem],
    jobs: int = 1,
    timeout: Optional[float] = None,
    worker: Callable[[WorkItem], WorkOutcome] = analyze_item,
    max_crash_retries: int = 2,
) -> List[WorkOutcome]:
    """Run ``worker`` over ``items``, returning outcomes in input order.

    ``timeout`` is the per-item wall-clock budget in seconds (pool mode
    only; the serial fallback cannot preempt a running analysis).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1:
        return [worker(item) for item in items]
    return _run_parallel(items, jobs, timeout, worker, max_crash_retries)


def _run_parallel(
    items: Sequence[WorkItem],
    jobs: int,
    timeout: Optional[float],
    worker: Callable[[WorkItem], WorkOutcome],
    max_crash_retries: int,
) -> List[WorkOutcome]:
    ctx = _mp_context()
    results: List[Optional[WorkOutcome]] = [None] * len(items)
    pending: deque = deque(enumerate(items))
    # Items poisoned by a pool breakage, re-run one at a time so the
    # next crash pins down which of them is the crasher.
    quarantine: deque = deque()
    crash_counts: Dict[int, int] = {}
    executor: Optional[ProcessPoolExecutor] = None
    # future -> (index, item, started_at)
    inflight: Dict[object, Tuple[int, WorkItem, float]] = {}

    def spin_up() -> ProcessPoolExecutor:
        nonlocal executor
        if executor is None:
            executor = ProcessPoolExecutor(
                max_workers=jobs, mp_context=ctx
            )
        return executor

    def tear_down() -> None:
        """Kill worker processes and discard the executor.

        ``shutdown`` alone would leave a hung/stuck worker running
        forever; terminating the processes is the whole point, and the
        ``_processes`` map is the only handle the executor exposes
        (stable in CPython since 3.3, guarded anyway).
        """
        nonlocal executor
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        executor = None

    def handle_crash_of_inflight() -> None:
        """The pool broke: every in-flight item was poisoned.

        A lone in-flight item is definitively the crasher — nothing
        else could have killed the pool — and is marked CRASHED.
        Otherwise the whole cohort moves to quarantine to be re-run one
        at a time, charging each a crash strike; ``max_crash_retries``
        strikes marks an item CRASHED even without a solo conviction
        (safety valve against pathological repeated breakage).
        """
        obs.counter("farm.worker.crashes").inc()
        entries = sorted(inflight.values(), key=lambda entry: entry[0])
        inflight.clear()
        for idx, item, started in entries:
            crash_counts[idx] = crash_counts.get(idx, 0) + 1
            if len(entries) == 1 or crash_counts[idx] > max_crash_retries:
                results[idx] = WorkOutcome(
                    label=item.label,
                    status=STATUS_CRASHED,
                    error=(
                        "worker process died while analyzing this item"
                        + (
                            ""
                            if len(entries) == 1
                            else f" (poisoned {crash_counts[idx]} pool"
                            " breakages)"
                        )
                        + "; see stderr for the worker's exit context"
                    ),
                    duration_s=time.monotonic() - started,
                )
            else:
                quarantine.append((idx, item))
        tear_down()

    try:
        while pending or quarantine or inflight:
            if quarantine:
                # Drain suspects strictly one at a time: wait for the
                # pool to empty, then fly a single item so any breakage
                # convicts it alone.
                if not inflight:
                    idx, item = quarantine.popleft()
                    fut = spin_up().submit(worker, item)
                    inflight[fut] = (idx, item, time.monotonic())
            else:
                while pending and len(inflight) < jobs:
                    idx, item = pending.popleft()
                    fut = spin_up().submit(worker, item)
                    inflight[fut] = (idx, item, time.monotonic())

            if timeout is not None:
                now = time.monotonic()
                next_deadline = min(
                    started + timeout for (_, _, started) in inflight.values()
                )
                wait_s = min(0.5, max(0.01, next_deadline - now))
            else:
                wait_s = 0.5
            done, _ = wait(
                set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
            )

            broke = False
            for fut in done:
                idx, item, started = inflight.pop(fut)
                try:
                    outcome = fut.result()
                except BrokenProcessPool:
                    # Put it back for crash accounting with the rest of
                    # the in-flight set.
                    inflight[fut] = (idx, item, started)
                    broke = True
                except Exception:
                    outcome = WorkOutcome(
                        label=item.label,
                        status=STATUS_FAILED,
                        error=traceback.format_exc(),
                        duration_s=time.monotonic() - started,
                    )
                    results[idx] = outcome
                else:
                    results[idx] = outcome
            if broke:
                handle_crash_of_inflight()
                continue

            if timeout is not None:
                now = time.monotonic()
                overdue = [
                    (fut, entry)
                    for fut, entry in inflight.items()
                    if now - entry[2] > timeout
                ]
                if overdue:
                    for fut, (idx, item, started) in overdue:
                        del inflight[fut]
                        results[idx] = WorkOutcome(
                            label=item.label,
                            status=STATUS_TIMEOUT,
                            error=(
                                f"exceeded the per-item timeout of "
                                f"{timeout:g}s"
                            ),
                            duration_s=now - started,
                        )
                    # The executor cannot cancel a running task: kill
                    # the workers and requeue the innocent in-flight
                    # items (no crash strike — the pool did not break,
                    # we broke it).
                    for fut, (idx, item, _) in sorted(inflight.items(),
                                                      key=lambda kv: -kv[1][0]):
                        pending.appendleft((idx, item))
                    inflight.clear()
                    tear_down()
    finally:
        tear_down()

    assert all(outcome is not None for outcome in results)
    return results  # type: ignore[return-value]

"""Batch driver: collect ADL sources, consult the cache, schedule the pool.

The runner is the piece that turns the one-shot ``analyze`` pipeline
into a corpus engine: it accepts files, directories, and glob patterns
(plus in-memory programs via :func:`repro.api.analyze_many`), checks
the content-addressed cache before spending any worker time, fans the
misses out across the :mod:`pool <repro.farm.pool>`, stores fresh
results back, and emits a schema-versioned :class:`BatchReport` whose
JSON/JSONL serialisation reuses :mod:`repro.reporting`.

Instrumented with :mod:`repro.obs`: spans ``farm.run`` /
``farm.collect`` / ``farm.schedule`` and counters ``farm.cache.hits``,
``farm.cache.misses``, ``farm.items.analyzed``, ``farm.items.failed``,
``farm.items.timeout``, ``farm.worker.crashes`` (the last one lives in
the pool).
"""

from __future__ import annotations

import glob as _glob
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..errors import ReproError
from ..lang.ast_nodes import Program
from ..lang.pretty import pretty
from .cache import PIPELINE_VERSION, ResultCache, cache_key
from .pool import (
    STATUS_FAILED,
    STATUS_OK,
    WorkItem,
    WorkOutcome,
    run_pool,
)

__all__ = [
    "BATCH_SCHEMA_VERSION",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_OFF",
    "BatchReport",
    "ItemReport",
    "collect_sources",
    "run_batch",
]

# 1: initial batch schema — per-item records (label, status, cache,
#    duration_s, program, deadlock, stall, error) plus a summary record
#    with totals; JSONL tags records with "kind".
# 2: lint-enabled batches — item records gain "lint_counts" (rule id ->
#    diagnostic count, {} when clean) and the summary record gains
#    "lint" ({"enabled", "diagnostics"}).
BATCH_SCHEMA_VERSION = 2

CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_OFF = "off"


@dataclass
class ItemReport:
    """Outcome of one batch item (see :data:`pool` statuses)."""

    label: str
    status: str
    cache: str = CACHE_OFF  # "hit" | "miss" | "off"
    duration_s: float = 0.0
    error: Optional[str] = None
    result: Optional[object] = field(default=None, repr=False)
    lint_counts: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> dict:
        from ..reporting import summary_result_to_dict

        payload: dict = {
            "label": self.label,
            "status": self.status,
            "cache": self.cache,
            "duration_s": round(self.duration_s, 6),
            "error": self.error,
        }
        if self.result is not None:
            payload.update(summary_result_to_dict(self.result))
        if self.lint_counts is not None:
            payload["lint_counts"] = dict(sorted(self.lint_counts.items()))
        return payload


@dataclass
class BatchReport:
    """Everything one batch run produced, in submission order."""

    items: List[ItemReport]
    algorithm: str
    state_limit: int
    jobs: int
    timeout: Optional[float] = None
    cache_enabled: bool = True
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    lint_enabled: bool = False

    @property
    def results(self) -> List[Optional[object]]:
        """Per-item :class:`~repro.api.AnalysisResult`, input order;
        ``None`` for items that failed, timed out, or crashed."""
        return [item.result for item in self.items]

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def counts(self) -> dict:
        counts: dict = {}
        for item in self.items:
            counts[item.status] = counts.get(item.status, 0) + 1
        return counts

    @property
    def deadlock_free(self) -> bool:
        """True iff every item analyzed clean: no failures and no
        possible-deadlock verdicts."""
        return self.ok and all(
            item.result.deadlock.deadlock_free for item in self.items
        )

    def summary_dict(self) -> dict:
        return {
            "schema_version": BATCH_SCHEMA_VERSION,
            "pipeline_version": PIPELINE_VERSION,
            "algorithm": self.algorithm,
            "state_limit": self.state_limit,
            "jobs": self.jobs,
            "timeout": self.timeout,
            "items": len(self.items),
            "counts": self.counts,
            "cache": {
                "enabled": self.cache_enabled,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "lint": {
                "enabled": self.lint_enabled,
                "diagnostics": sum(
                    sum(item.lint_counts.values())
                    for item in self.items
                    if item.lint_counts is not None
                ),
            },
            "wall_time_s": round(self.wall_time_s, 6),
        }

    def to_dict(self) -> dict:
        payload = self.summary_dict()
        payload["item_reports"] = [item.to_dict() for item in self.items]
        return payload

    def to_jsonl(self) -> str:
        """One JSON object per line: every item, then the summary.

        Each record carries ``"kind"`` (``"item"`` / ``"summary"``) and
        ``"schema_version"`` so consumers can stream without buffering.
        """
        lines = []
        for item in self.items:
            record = {"kind": "item", "schema_version": BATCH_SCHEMA_VERSION}
            record.update(item.to_dict())
            lines.append(json.dumps(record, sort_keys=True))
        summary = {"kind": "summary"}
        summary.update(self.summary_dict())
        lines.append(json.dumps(summary, sort_keys=True))
        return "\n".join(lines) + "\n"

    def describe(self) -> str:
        lines = []
        for item in self.items:
            if item.ok:
                verdict = item.result.deadlock.verdict
                stall = item.result.stall.verdict
                detail = f"{verdict}; {stall}"
            else:
                detail = (item.error or "").strip().splitlines()
                detail = detail[-1] if detail else item.status
            if item.lint_counts is not None:
                lint = (
                    ", ".join(
                        f"{rule}={n}"
                        for rule, n in sorted(item.lint_counts.items())
                    )
                    or "clean"
                )
                detail = f"{detail}; lint: {lint}"
            lines.append(
                f"{item.label}: {item.status} [cache {item.cache}] {detail}"
            )
        counts = ", ".join(
            f"{status}={n}" for status, n in sorted(self.counts.items())
        )
        lines.append(
            f"batch: {len(self.items)} item(s) in {self.wall_time_s:.2f}s "
            f"({counts}; cache {self.cache_hits} hit(s), "
            f"{self.cache_misses} miss(es))"
        )
        return "\n".join(lines)


def collect_sources(
    specs: Sequence[Union[str, Path]],
) -> List[Tuple[str, str]]:
    """Expand files, directories, and glob patterns into
    ``(label, source_text)`` pairs, sorted within each spec and
    de-duplicated across specs.

    Directories are searched recursively for ``*.adl``.  A spec that
    matches nothing raises :class:`~repro.errors.ReproError`.
    """
    seen = set()
    collected: List[Tuple[str, str]] = []
    for spec in specs:
        path = Path(spec)
        if path.is_dir():
            matches = sorted(path.rglob("*.adl"))
        elif path.is_file():
            matches = [path]
        else:
            matches = sorted(Path(p) for p in _glob.glob(str(spec)))
        if not matches:
            raise ReproError(f"no ADL sources match {str(spec)!r}")
        for match in matches:
            key = str(match.resolve())
            if key in seen:
                continue
            seen.add(key)
            collected.append((str(match), match.read_text()))
    return collected


def run_batch(
    programs: Iterable[Union[str, Program, Tuple[str, str]]],
    algorithm: str = "refined",
    exact: bool = False,
    state_limit: int = 200_000,
    jobs: int = 1,
    timeout: Optional[float] = None,
    cache: Union[ResultCache, str, Path, bool, None] = None,
    backend: str = "index",
    lint: bool = False,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> BatchReport:
    """Analyze many programs with caching and parallelism.

    ``programs`` may mix ``(label, source)`` pairs (as produced by
    :func:`collect_sources`), bare source strings, and parsed
    :class:`~repro.lang.ast_nodes.Program` objects.  ``cache`` selects
    the result cache: an existing :class:`ResultCache`, a directory,
    ``True`` for the default directory, or ``None``/``False`` to
    disable caching.  Verdicts are identical to calling
    :func:`repro.api.analyze` per program — the farm only changes how
    the work is scheduled and memoised.

    ``backend`` picks the analysis kernel (see
    :data:`repro.api.BACKEND_AWARE`).  It is deliberately *not* part of
    the cache key: both kernels are bit-exact, so their results are
    interchangeable cache entries.  ``strategy``/``beam_width`` steer
    exact exploration (see :mod:`repro.waves.guide`) and *are* keyed —
    a budget-limited run's findings depend on expansion order.

    ``lint`` additionally runs the lint rules over every item; each
    :class:`ItemReport` then carries ``lint_counts`` (rule id ->
    diagnostic count) and lint-enabled cache entries are stored under
    their own keys with the counts alongside the analysis result.
    """
    started = time.perf_counter()
    result_cache = _coerce_cache(cache)
    with obs.span(
        "farm.run", algorithm=algorithm, jobs=jobs,
        cache=result_cache is not None,
    ):
        with obs.span("farm.collect"):
            labelled = _labelled_sources(programs)

        reports: List[Optional[ItemReport]] = [None] * len(labelled)
        work: List[Tuple[int, WorkItem, Optional[str]]] = []
        for idx, (label, source) in enumerate(labelled):
            key = None
            if result_cache is not None:
                try:
                    key = cache_key(
                        source, algorithm, state_limit, exact, lint,
                        strategy=strategy, beam_width=beam_width,
                    )
                except ReproError:
                    # Unparseable: let the worker produce the FAILED
                    # outcome (uniform error reporting), uncached.
                    key = None
                else:
                    hit = result_cache.get(key)
                    if hit is not None:
                        obs.counter("farm.cache.hits").inc()
                        result, lint_counts = _unwrap_entry(hit, lint)
                        reports[idx] = ItemReport(
                            label=label,
                            status=STATUS_OK,
                            cache=CACHE_HIT,
                            result=result,
                            lint_counts=lint_counts,
                        )
                        continue
                    obs.counter("farm.cache.misses").inc()
            work.append(
                (
                    idx,
                    WorkItem(
                        label=label,
                        source=source,
                        algorithm=algorithm,
                        exact=exact,
                        state_limit=state_limit,
                        backend=backend,
                        lint=lint,
                        strategy=strategy,
                        beam_width=beam_width,
                    ),
                    key,
                )
            )

        with obs.span("farm.schedule", items=len(work)):
            outcomes = run_pool(
                [item for (_, item, _) in work], jobs=jobs, timeout=timeout
            )

        for (idx, _, key), outcome in zip(work, outcomes):
            reports[idx] = _item_from_outcome(
                outcome, result_cache, key, lint
            )

        assert all(report is not None for report in reports)
        items: List[ItemReport] = reports  # type: ignore[assignment]
        hits = sum(1 for item in items if item.cache == CACHE_HIT)
        misses = sum(1 for item in items if item.cache == CACHE_MISS)
        if obs.is_enabled():
            obs.counter("farm.items.analyzed").inc(
                sum(1 for item in items if item.ok and item.cache != CACHE_HIT)
            )
            failed = sum(1 for item in items if item.status == STATUS_FAILED)
            timed_out = sum(
                1 for item in items if item.status == "timeout"
            )
            if failed:
                obs.counter("farm.items.failed").inc(failed)
            if timed_out:
                obs.counter("farm.items.timeout").inc(timed_out)
    return BatchReport(
        items=items,
        algorithm=algorithm,
        state_limit=state_limit,
        jobs=jobs,
        timeout=timeout,
        cache_enabled=result_cache is not None,
        wall_time_s=time.perf_counter() - started,
        cache_hits=hits,
        cache_misses=misses,
        lint_enabled=lint,
    )


def _coerce_cache(
    cache: Union[ResultCache, str, Path, bool, None],
) -> Optional[ResultCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache_dir=cache)


def _labelled_sources(
    programs: Iterable[Union[str, Program, Tuple[str, str]]],
) -> List[Tuple[str, str]]:
    labelled: List[Tuple[str, str]] = []
    for i, entry in enumerate(programs):
        if isinstance(entry, tuple):
            label, source = entry
        elif isinstance(entry, Program):
            label, source = entry.name, pretty(entry)
        else:
            label, source = f"program-{i}", entry
        labelled.append((label, source))
    return labelled


def _unwrap_entry(entry: object, lint: bool):
    """Split a cache entry into (analysis result, lint counts).

    Lint-enabled runs store a ``{"analysis", "lint_counts"}`` wrapper
    under their own keys; plain runs store the bare result.  A foreign
    shape under a lint key (impossible via this module, cheap to guard)
    degrades to no counts rather than crashing.
    """
    if lint and isinstance(entry, dict) and "analysis" in entry:
        return entry["analysis"], entry.get("lint_counts")
    return entry, None


def _item_from_outcome(
    outcome: WorkOutcome,
    result_cache: Optional[ResultCache],
    key: Optional[str],
    lint: bool,
) -> ItemReport:
    if outcome.ok and result_cache is not None and key is not None:
        entry = (
            {"analysis": outcome.result, "lint_counts": outcome.lint_counts}
            if lint
            else outcome.result
        )
        result_cache.put(key, entry)
    return ItemReport(
        label=outcome.label,
        status=outcome.status,
        cache=(
            CACHE_OFF
            if result_cache is None or key is None
            else CACHE_MISS
        ),
        duration_s=outcome.duration_s,
        error=outcome.error,
        result=outcome.result,
        lint_counts=outcome.lint_counts,
    )

"""Sync graph construction from a program's per-task CFGs.

For each task CFG, non-rendezvous nodes are erased: a control edge
``(r, s)`` is added to ``E_C`` whenever the CFG has a path from ``r`` to
``s`` through non-rendezvous nodes only.  ``b`` gets an edge to each
rendezvous point reachable from the task entry without crossing another
rendezvous, each rendezvous with a rendezvous-free path to the task exit
gets an edge to ``e``, and a task whose entry reaches its exit without
any rendezvous contributes a ``(b, e)`` edge (the task may terminate
without synchronizing).

Loops in the source produce control cycles in ``E_C``; analyses that
require acyclic control flow (the CLG algorithms) apply the Lemma-1
unroll transform *before* building the sync graph.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..cfg.build import build_cfgs
from ..cfg.graph import CFGNode, NodeKind, TaskCFG
from ..lang.ast_nodes import Accept, Program, Send, Signal
from .model import SyncGraph, SyncNode

__all__ = ["build_sync_graph"]


def build_sync_graph(program: Program) -> SyncGraph:
    """Build ``SG_P`` for ``program`` (CFG construction included)."""
    cfgs = build_cfgs(program)
    sg = SyncGraph([t.name for t in program.tasks])

    node_map: Dict[CFGNode, SyncNode] = {}
    for task in program.tasks:
        cfg = cfgs[task.name]
        for cfg_node in cfg.rendezvous_nodes:
            stmt = cfg_node.stmt
            if isinstance(stmt, Send):
                signal = Signal(stmt.task, stmt.message)
                node_map[cfg_node] = sg.add_rendezvous(
                    "send", task.name, signal, cfg_node
                )
            elif isinstance(stmt, Accept):
                signal = Signal(task.name, stmt.message)
                node_map[cfg_node] = sg.add_rendezvous(
                    "accept", task.name, signal, cfg_node
                )
            else:  # pragma: no cover - builder guarantees rendezvous stmt
                raise TypeError(f"rendezvous CFG node without statement: {cfg_node}")

    for task in program.tasks:
        _add_task_control_edges(sg, cfgs[task.name], node_map)

    sg.connect_sync_edges()
    return sg


def _rendezvous_frontier(cfg: TaskCFG, start: CFGNode) -> tuple[Set[CFGNode], bool]:
    """Rendezvous nodes reachable from ``start`` through non-rendezvous
    nodes, and whether the task exit is reachable the same way.

    ``start`` itself is *not* treated as a barrier (so the frontier of a
    rendezvous node is the set of next rendezvous after it).
    """
    frontier: Set[CFGNode] = set()
    reaches_exit = False
    seen: Set[CFGNode] = set()
    stack: List[CFGNode] = list(cfg.successors(start))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node.is_rendezvous:
            frontier.add(node)
            continue
        if node is cfg.exit:
            reaches_exit = True
            continue
        stack.extend(cfg.successors(node))
    return frontier, reaches_exit


def _add_task_control_edges(
    sg: SyncGraph, cfg: TaskCFG, node_map: Dict[CFGNode, SyncNode]
) -> None:
    frontier, skips = _rendezvous_frontier(cfg, cfg.entry)
    for cfg_node in frontier:
        sg.add_control_edge(sg.b, node_map[cfg_node])
    if skips:
        sg.mark_task_skippable(cfg.task)
    for cfg_node in cfg.rendezvous_nodes:
        src = node_map[cfg_node]
        nxt, reaches_exit = _rendezvous_frontier(cfg, cfg_node)
        for dst_cfg in nxt:
            sg.add_control_edge(src, node_map[dst_cfg])
        if reaches_exit:
            sg.add_control_edge(src, sg.e)

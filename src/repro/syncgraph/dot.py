"""Graphviz DOT export for sync graphs and CLGs.

The paper presents every example as a drawing (nodes of the same task
arranged vertically); these exporters regenerate comparable figures.
The output is plain DOT text — no graphviz dependency is required to
produce it.
"""

from __future__ import annotations

from typing import List

from .clg import CLG, EdgeKind
from .model import SyncGraph

__all__ = ["sync_graph_to_dot", "clg_to_dot"]


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def sync_graph_to_dot(sg: SyncGraph, name: str = "sync_graph") -> str:
    """Render ``sg`` as DOT: solid control edges, dashed sync edges.

    Tasks become vertical clusters, matching the paper's figure layout.
    """
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    lines.append(f"  b [shape=circle, label={_quote('b')}];")
    lines.append(f"  e [shape=circle, label={_quote('e')}];")
    for task in sg.tasks:
        lines.append(f"  subgraph cluster_{task} {{")
        lines.append(f"    label={_quote(task)};")
        for node in sg.nodes_of_task(task):
            shape = "box" if node.kind == "send" else "ellipse"
            lines.append(
                f"    n{node.uid} [shape={shape}, label={_quote(node.label)}];"
            )
        lines.append("  }")
    for src, dst in sg.control_edges():
        s = "b" if src is sg.b else ("e" if src is sg.e else f"n{src.uid}")
        d = "b" if dst is sg.b else ("e" if dst is sg.e else f"n{dst.uid}")
        lines.append(f"  {s} -> {d};")
    for a, c in sg.sync_edges():
        lines.append(f"  n{a.uid} -> n{c.uid} [dir=none, style=dashed];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def clg_to_dot(clg: CLG, name: str = "clg") -> str:
    """Render a CLG as DOT; sync-derived edges are dashed."""

    def node_id(node) -> str:
        if node.sync is None:
            return node.side
        return f"n{node.sync.uid}_{node.side}"

    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    for node in clg.nodes:
        label = str(node)
        lines.append(f"  {node_id(node)} [label={_quote(label)}];")
    for edge in clg.edges():
        style = "dashed" if edge.kind == EdgeKind.SYNC else "solid"
        lines.append(
            f"  {node_id(edge.src)} -> {node_id(edge.dst)} [style={style}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"

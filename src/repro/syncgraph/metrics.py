"""Size and cost metrics for sync graphs and CLGs.

Gives users (and the CLI's ``--stats`` flag) the numbers the paper's
complexity statements are phrased in: ``|N|``, ``|E_C|``, ``|E_S|``,
``|N_CLG|``, ``|E_CLG|``, the refined algorithm's
``O(|N_CLG|·(|N_CLG|+|E_CLG|))`` work bound, and an upper bound on the
wave-space size (the product of per-task position counts) that
quantifies what exhaustive analysis would face.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .clg import CLG, build_clg
from .model import SyncGraph

__all__ = ["GraphMetrics", "compute_metrics"]


@dataclass(frozen=True)
class GraphMetrics:
    """Aggregate size/cost figures for one program's representations."""

    tasks: int
    rendezvous_nodes: int
    control_edges: int
    sync_edges: int
    signals: int
    max_task_nodes: int
    clg_nodes: int
    clg_edges: int
    refined_work_bound: int
    wave_space_bound: int
    has_control_cycle: bool

    def to_dict(self) -> Dict[str, int | bool]:
        return {
            "tasks": self.tasks,
            "rendezvous_nodes": self.rendezvous_nodes,
            "control_edges": self.control_edges,
            "sync_edges": self.sync_edges,
            "signals": self.signals,
            "max_task_nodes": self.max_task_nodes,
            "clg_nodes": self.clg_nodes,
            "clg_edges": self.clg_edges,
            "refined_work_bound": self.refined_work_bound,
            "wave_space_bound": self.wave_space_bound,
            "has_control_cycle": self.has_control_cycle,
        }

    def describe(self) -> str:
        lines = [
            f"tasks: {self.tasks}, rendezvous nodes: "
            f"{self.rendezvous_nodes} (max per task {self.max_task_nodes})",
            f"control edges: {self.control_edges}, sync edges: "
            f"{self.sync_edges}, signals: {self.signals}",
            f"CLG: {self.clg_nodes} nodes / {self.clg_edges} edges; "
            f"refined work bound N*(N+E) = {self.refined_work_bound}",
            f"wave-space upper bound: {self.wave_space_bound} states",
        ]
        if self.has_control_cycle:
            lines.append(
                "control flow is cyclic: CLG analyses require the "
                "Lemma-1 unroll transform first"
            )
        return "\n".join(lines)


def compute_metrics(
    graph: SyncGraph, clg: Optional[CLG] = None
) -> GraphMetrics:
    """Compute all metrics for ``graph`` (builds the CLG if needed)."""
    if clg is None:
        clg = build_clg(graph)
    per_task = [len(graph.nodes_of_task(t)) for t in graph.tasks]
    wave_bound = 1
    for count in per_task:
        # +1 for the task's `e` position
        wave_bound *= count + 1
    return GraphMetrics(
        tasks=len(graph.tasks),
        rendezvous_nodes=len(graph.rendezvous_nodes),
        control_edges=sum(1 for _ in graph.control_edges()),
        sync_edges=sum(1 for _ in graph.sync_edges()),
        signals=len(graph.signals),
        max_task_nodes=max(per_task, default=0),
        clg_nodes=clg.node_count,
        clg_edges=clg.edge_count,
        refined_work_bound=clg.node_count
        * (clg.node_count + clg.edge_count),
        wave_space_bound=wave_bound,
        has_control_cycle=graph.has_control_cycle(),
    )

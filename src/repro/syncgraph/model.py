"""The sync graph ``SG_P = (T, N, E_C, E_S)`` (paper, Section 2).

* ``T`` — the program's tasks.
* ``N`` — one node per rendezvous statement, plus distinguished ``b``
  (begin / fork point) and ``e`` (end) nodes shared by all tasks.
* ``E_C`` — directed control flow edges between rendezvous points: an
  edge ``(r, s)`` exists iff the program has a control path from ``r``
  to ``s`` containing no other rendezvous point.
* ``E_S`` — undirected sync edges between every complementary pair of
  rendezvous points of the same signal type.

A rendezvous point is written ``(t, m, s)`` where ``(t, m)`` is the
signal (receiving task, message type) and the sign ``s`` is ``+`` for a
signaling (send) point and ``-`` for an accepting point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..cfg.graph import CFGNode
from ..errors import UnknownTaskError
from ..lang.ast_nodes import Signal

__all__ = ["SyncNode", "SyncGraph", "SIGN_SEND", "SIGN_ACCEPT"]

SIGN_SEND = "+"
SIGN_ACCEPT = "-"


@dataclass(frozen=True)
class SyncNode:
    """One node of the sync graph.

    ``kind`` is ``"b"``, ``"e"``, ``"send"`` or ``"accept"``.  For
    rendezvous nodes, ``task`` is the task containing the statement and
    ``signal`` is the signal ``(t, m)``; the paper's triple notation is
    available via :attr:`triple`.
    """

    uid: int
    kind: str
    task: str = ""
    signal: Optional[Signal] = None
    label: str = ""
    cfg_node: Optional[CFGNode] = field(default=None, compare=False, repr=False)

    @property
    def is_rendezvous(self) -> bool:
        return self.kind in ("send", "accept")

    @property
    def sign(self) -> str:
        if self.kind == "send":
            return SIGN_SEND
        if self.kind == "accept":
            return SIGN_ACCEPT
        raise ValueError(f"node {self} has no sign")

    @property
    def triple(self) -> Tuple[str, str, str]:
        """The paper's ``(t, m, s)`` notation."""
        assert self.signal is not None
        return (self.signal.task, self.signal.message, self.sign)

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.kind in ("b", "e"):
            return self.kind
        t, m, s = self.triple
        return f"{self.task}#{self.uid}:({t},{m},{s})"


class SyncGraph:
    """The sync graph of a program.

    Construction is incremental (see :mod:`repro.syncgraph.build`);
    afterwards the graph is treated as immutable.  ``b`` and ``e`` are
    shared across tasks; per-task entry information lives in
    :meth:`initial_options`, which reflects the ``b → r`` control edges
    belonging to each task (a task with a rendezvous-free path
    contributes ``e`` as an option, modelling the paper's ``(b, e)``
    edge).
    """

    def __init__(self, tasks: Sequence[str]) -> None:
        self.tasks: Tuple[str, ...] = tuple(tasks)
        self._task_index: Dict[str, int] = {
            t: i for i, t in enumerate(self.tasks)
        }
        self._nodes: List[SyncNode] = []
        self.b = self._make_node("b", label="b")
        self.e = self._make_node("e", label="e")
        self._control_succ: Dict[SyncNode, List[SyncNode]] = {
            self.b: [],
            self.e: [],
        }
        self._control_pred: Dict[SyncNode, List[SyncNode]] = {
            self.b: [],
            self.e: [],
        }
        self._sync_adj: Dict[SyncNode, List[SyncNode]] = {}
        self._by_task: Dict[str, List[SyncNode]] = {t: [] for t in tasks}
        self._initial: Dict[str, List[SyncNode]] = {t: [] for t in tasks}
        self._by_signal: Dict[Tuple[Signal, str], List[SyncNode]] = {}

    # -- construction ----------------------------------------------------

    def _make_node(
        self,
        kind: str,
        task: str = "",
        signal: Optional[Signal] = None,
        label: str = "",
        cfg_node: Optional[CFGNode] = None,
    ) -> SyncNode:
        node = SyncNode(
            uid=len(self._nodes),
            kind=kind,
            task=task,
            signal=signal,
            label=label or kind,
            cfg_node=cfg_node,
        )
        self._nodes.append(node)
        return node

    def add_rendezvous(
        self,
        kind: str,
        task: str,
        signal: Signal,
        cfg_node: Optional[CFGNode] = None,
    ) -> SyncNode:
        """Add a rendezvous node ``(signal.task, signal.message, ±)``."""
        if kind not in ("send", "accept"):
            raise ValueError(f"bad rendezvous kind {kind!r}")
        sign = SIGN_SEND if kind == "send" else SIGN_ACCEPT
        label = f"({signal.task},{signal.message},{sign})"
        node = self._make_node(kind, task, signal, label, cfg_node)
        self._control_succ[node] = []
        self._control_pred[node] = []
        self._sync_adj[node] = []
        self._by_task[task].append(node)
        self._by_signal.setdefault((signal, sign), []).append(node)
        return node

    def add_control_edge(self, src: SyncNode, dst: SyncNode) -> None:
        if dst not in self._control_succ[src]:
            self._control_succ[src].append(dst)
            self._control_pred[dst].append(src)
        if src is self.b:
            task = dst.task if dst.is_rendezvous else None
            if task is not None and dst not in self._initial[task]:
                self._initial[task].append(dst)

    def mark_task_skippable(self, task: str) -> None:
        """Record a rendezvous-free entry→exit path in ``task``.

        Models the paper's ``(b, e)`` control edge: the task's initial
        wave entry may be ``e``.
        """
        if self.e not in self._initial[task]:
            self._initial[task].append(self.e)
        self.add_control_edge(self.b, self.e)

    def add_sync_edge(self, r: SyncNode, s: SyncNode) -> None:
        """Insert one undirected sync edge explicitly.

        Normal construction derives ``E_S`` from signal types via
        :meth:`connect_sync_edges`; this raw insertion exists for
        hand-built graphs — notably the Theorem-3 reduction, whose sync
        graph "cannot in general correspond to an actual program"
        (paper, Appendix A).
        """
        if s not in self._sync_adj[r]:
            self._sync_adj[r].append(s)
            self._sync_adj[s].append(r)

    def connect_sync_edges(self) -> None:
        """Create ``E_S``: one undirected edge per complementary pair."""
        for (signal, sign), senders in self._by_signal.items():
            if sign != SIGN_SEND:
                continue
            accepters = self._by_signal.get((signal, SIGN_ACCEPT), [])
            for r in senders:
                for s in accepters:
                    if s not in self._sync_adj[r]:
                        self._sync_adj[r].append(s)
                        self._sync_adj[s].append(r)

    # -- queries -----------------------------------------------------------

    @property
    def nodes(self) -> Tuple[SyncNode, ...]:
        return tuple(self._nodes)

    @property
    def rendezvous_nodes(self) -> Tuple[SyncNode, ...]:
        return tuple(n for n in self._nodes if n.is_rendezvous)

    def task_index(self, task: str) -> int:
        """Dense position of ``task`` in :attr:`tasks` (cached map).

        Raises :class:`~repro.errors.UnknownTaskError` for names outside
        the graph instead of leaking ``ValueError``/``KeyError``.
        """
        try:
            return self._task_index[task]
        except KeyError:
            raise UnknownTaskError(task, self.tasks) from None

    def nodes_of_task(self, task: str) -> Tuple[SyncNode, ...]:
        return tuple(self._by_task[task])

    def initial_options(self, task: str) -> Tuple[SyncNode, ...]:
        """Possible initial wave entries of ``task`` (successors of ``b``)."""
        return tuple(self._initial[task])

    def control_successors(self, node: SyncNode) -> Tuple[SyncNode, ...]:
        return tuple(self._control_succ[node])

    def control_predecessors(self, node: SyncNode) -> Tuple[SyncNode, ...]:
        return tuple(self._control_pred[node])

    def control_edges(self) -> Iterator[Tuple[SyncNode, SyncNode]]:
        for src, dsts in self._control_succ.items():
            for dst in dsts:
                yield (src, dst)

    def sync_neighbors(self, node: SyncNode) -> Tuple[SyncNode, ...]:
        return tuple(self._sync_adj.get(node, ()))

    def sync_edges(self) -> Iterator[Tuple[SyncNode, SyncNode]]:
        """Each undirected sync edge once (lower uid first)."""
        for node, neighbors in self._sync_adj.items():
            for other in neighbors:
                if node.uid < other.uid:
                    yield (node, other)

    def has_sync_edge(self, a: SyncNode, b: SyncNode) -> bool:
        return b in self._sync_adj.get(a, ())

    def senders_of(self, signal: Signal) -> Tuple[SyncNode, ...]:
        return tuple(self._by_signal.get((signal, SIGN_SEND), ()))

    def accepters_of(self, signal: Signal) -> Tuple[SyncNode, ...]:
        return tuple(self._by_signal.get((signal, SIGN_ACCEPT), ()))

    @property
    def signals(self) -> Tuple[Signal, ...]:
        return tuple(sorted({sig for (sig, _) in self._by_signal},
                            key=lambda s: (s.task, s.message)))

    # -- reachability -----------------------------------------------------

    def control_descendants(
        self, node: SyncNode, strict: bool = True
    ) -> FrozenSet[SyncNode]:
        """Nodes reachable from ``node`` along control edges.

        With ``strict=True`` the node itself is excluded unless it lies
        on a control cycle through itself.
        """
        seen: Set[SyncNode] = set()
        stack = list(self._control_succ.get(node, ()))
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self._control_succ.get(cur, ()))
        if not strict:
            seen.add(node)
        return frozenset(seen)

    def control_reaches(self, src: SyncNode, dst: SyncNode) -> bool:
        """True iff ``dst`` is reachable from ``src`` (reflexively)."""
        return src is dst or dst in self.control_descendants(src)

    def has_control_cycle(self) -> bool:
        g = nx.DiGraph()
        g.add_nodes_from(self._nodes)
        g.add_edges_from(self.control_edges())
        return not nx.is_directed_acyclic_graph(g)

    # -- export ------------------------------------------------------------

    def to_networkx(self) -> "nx.DiGraph":
        """Directed graph with both edge kinds, tagged ``kind=`` attribute.

        Sync edges appear in both directions with ``kind="sync"``.
        """
        g = nx.DiGraph()
        for node in self._nodes:
            g.add_node(node, kind=node.kind, task=node.task)
        for src, dst in self.control_edges():
            g.add_edge(src, dst, kind="control")
        for a, b in self.sync_edges():
            g.add_edge(a, b, kind="sync")
            g.add_edge(b, a, kind="sync")
        return g

    def stats(self) -> Dict[str, int]:
        return {
            "tasks": len(self.tasks),
            "nodes": len(self._nodes),
            "control_edges": sum(1 for _ in self.control_edges()),
            "sync_edges": sum(1 for _ in self.sync_edges()),
        }

    def __len__(self) -> int:
        return len(self._nodes)

"""Sync graph ``SG_P`` and cycle location graph ``C_P`` (paper §2, §3.1)."""

from .build import build_sync_graph
from .clg import CLG, CLGEdge, CLGNode, EdgeKind, build_clg
from .dot import clg_to_dot, sync_graph_to_dot
from .metrics import GraphMetrics, compute_metrics
from .model import SIGN_ACCEPT, SIGN_SEND, SyncGraph, SyncNode

__all__ = [
    "CLG",
    "CLGEdge",
    "CLGNode",
    "EdgeKind",
    "GraphMetrics",
    "SIGN_ACCEPT",
    "SIGN_SEND",
    "SyncGraph",
    "SyncNode",
    "build_clg",
    "build_sync_graph",
    "clg_to_dot",
    "compute_metrics",
    "sync_graph_to_dot",
]

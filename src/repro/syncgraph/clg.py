"""The cycle location graph (CLG) — paper, Section 3.1.

The CLG transforms the sync graph so that a plain depth-first search
finds exactly the cycles satisfying deadlock constraint 1: every node
entered via a sync edge can only be exited via a control flow edge
(constraint 1b).  Each rendezvous node ``r`` splits into ``r_i``
(incoming sync edges only) and ``r_o`` (outgoing sync edges only),
linked by an internal edge ``(r_o, r_i)``.

Construction rules (paper, verbatim numbering):

1. create distinguished ``b`` and ``e``;
2. create ``r_i``/``r_o`` per rendezvous node;
3. create internal edge ``(r_o, r_i)``;
4. control edge ``(b, r)`` → ``(b, r_o)``; ``(r, e)`` → ``(r_i, e)``;
5. control edge ``(r, s)`` → ``(r_i, s_o)``;
6. sync edge ``{r, s}`` → directed ``(r_o, s_i)`` and ``(s_o, r_i)``.

Edges carry their provenance (``control``/``internal``/``sync``) because
the refined algorithm's NO-SYNC marking suppresses only sync-derived
edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

import networkx as nx

from .. import obs
from .model import SyncGraph, SyncNode

__all__ = ["CLGNode", "CLGEdge", "CLG", "build_clg", "EdgeKind"]


class EdgeKind:
    CONTROL = "control"
    INTERNAL = "internal"
    SYNC = "sync"


@dataclass(frozen=True)
class CLGNode:
    """A CLG node: ``side`` is ``"b"``, ``"e"``, ``"i"`` or ``"o"``.

    ``sync`` is the originating sync-graph node (None for ``b``/``e``).
    """

    side: str
    sync: Optional[SyncNode] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.sync is None:
            return self.side
        return f"{self.sync}:{self.side}"


@dataclass(frozen=True)
class CLGEdge:
    src: CLGNode
    dst: CLGNode
    kind: str


class CLG:
    """The cycle location graph ``C_P = (N_CLG, E_CLG)``."""

    def __init__(self, sync_graph: SyncGraph) -> None:
        self.sync_graph = sync_graph
        self.b = CLGNode("b")
        self.e = CLGNode("e")
        self._nodes: List[CLGNode] = [self.b, self.e]
        self._in_node: Dict[SyncNode, CLGNode] = {}
        self._out_node: Dict[SyncNode, CLGNode] = {}
        self._succ: Dict[CLGNode, List[CLGEdge]] = {self.b: [], self.e: []}
        self._pred: Dict[CLGNode, List[CLGEdge]] = {self.b: [], self.e: []}
        self._node_index: Optional[Dict[CLGNode, int]] = None

    # -- construction ----------------------------------------------------

    def add_split_nodes(self, sync_node: SyncNode) -> Tuple[CLGNode, CLGNode]:
        r_i = CLGNode("i", sync_node)
        r_o = CLGNode("o", sync_node)
        self._in_node[sync_node] = r_i
        self._out_node[sync_node] = r_o
        for node in (r_i, r_o):
            self._nodes.append(node)
            self._succ[node] = []
            self._pred[node] = []
        return r_i, r_o

    def add_edge(self, src: CLGNode, dst: CLGNode, kind: str) -> None:
        edge = CLGEdge(src, dst, kind)
        if edge not in self._succ[src]:
            self._succ[src].append(edge)
            self._pred[dst].append(edge)

    # -- mapping -----------------------------------------------------------

    def in_node(self, sync_node: SyncNode) -> CLGNode:
        """The ``r_i`` node of sync-graph node ``r``."""
        return self._in_node[sync_node]

    def out_node(self, sync_node: SyncNode) -> CLGNode:
        """The ``r_o`` node of sync-graph node ``r``."""
        return self._out_node[sync_node]

    # -- queries -----------------------------------------------------------

    @property
    def nodes(self) -> Tuple[CLGNode, ...]:
        return tuple(self._nodes)

    def out_edges(self, node: CLGNode) -> Tuple[CLGEdge, ...]:
        return tuple(self._succ[node])

    def in_edges(self, node: CLGNode) -> Tuple[CLGEdge, ...]:
        return tuple(self._pred[node])

    def edges(self) -> Iterator[CLGEdge]:
        for edges in self._succ.values():
            yield from edges

    @property
    def node_index(self) -> Dict[CLGNode, int]:
        """Dense construction-order id per node (``b``=0, ``e``=1, then
        the ``r_i``/``r_o`` pairs in sync-graph order).

        Cached; rebuilt if nodes were added since the last call.
        """
        cached = self._node_index
        if cached is None or len(cached) != len(self._nodes):
            cached = {node: i for i, node in enumerate(self._nodes)}
            self._node_index = cached
        return cached

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(e) for e in self._succ.values())

    # -- cycle machinery ----------------------------------------------------

    def strongly_connected_components(
        self,
        edge_filter: Optional[Callable[[CLGEdge], bool]] = None,
        node_filter: Optional[Callable[[CLGNode], bool]] = None,
    ) -> List[FrozenSet[CLGNode]]:
        """Tarjan SCCs of the (optionally filtered) CLG.

        ``node_filter``/``edge_filter`` return False to exclude a node or
        edge; excluded nodes also drop their incident edges.  Iterative
        implementation — CLGs of large generated programs overflow
        Python's recursion limit otherwise.
        """
        index: Dict[CLGNode, int] = {}
        lowlink: Dict[CLGNode, int] = {}
        on_stack: Set[CLGNode] = set()
        stack: List[CLGNode] = []
        counter = 0
        components: List[FrozenSet[CLGNode]] = []

        def allowed(node: CLGNode) -> bool:
            return node_filter is None or node_filter(node)

        def neighbors(node: CLGNode) -> List[CLGNode]:
            result = []
            for edge in self._succ[node]:
                if edge_filter is not None and not edge_filter(edge):
                    continue
                if allowed(edge.dst):
                    result.append(edge.dst)
            return result

        for root in self._nodes:
            if root in index or not allowed(root):
                continue
            work: List[Tuple[CLGNode, Iterator[CLGNode]]] = []
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, iter(neighbors(root))))
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = lowlink[nxt] = counter
                        counter += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(neighbors(nxt))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        lowlink[node] = min(lowlink[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: Set[CLGNode] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member is node:
                            break
                    components.append(frozenset(component))
        return components

    def _has_self_loop(self, node: CLGNode) -> bool:
        return any(e.dst is node or e.dst == node for e in self._succ[node])

    def cyclic_components(
        self,
        edge_filter: Optional[Callable[[CLGEdge], bool]] = None,
        node_filter: Optional[Callable[[CLGNode], bool]] = None,
    ) -> List[FrozenSet[CLGNode]]:
        """SCCs that actually contain a cycle (size > 1 or a self-loop)."""
        return [
            comp
            for comp in self.strongly_connected_components(
                edge_filter, node_filter
            )
            if len(comp) > 1
            or self._has_self_loop(next(iter(comp)))
        ]

    def has_cycle(self) -> bool:
        return bool(self.cyclic_components())

    def to_networkx(self) -> "nx.DiGraph":
        g = nx.DiGraph()
        g.add_nodes_from(self._nodes)
        for edge in self.edges():
            g.add_edge(edge.src, edge.dst, kind=edge.kind)
        return g


def build_clg(sync_graph: SyncGraph) -> CLG:
    """Construct the CLG of ``sync_graph`` by the six paper rules."""
    with obs.span("clg.build") as span:
        clg = _build_clg(sync_graph)
        span.set_attribute("nodes", clg.node_count)
        span.set_attribute("edges", clg.edge_count)
    if obs.is_enabled():
        obs.counter("clg.builds").inc()
        obs.counter("clg.split_nodes").inc(
            len(sync_graph.rendezvous_nodes)
        )
        obs.gauge("clg.nodes").set(clg.node_count)
        obs.gauge("clg.edges").set(clg.edge_count)
        obs.histogram("clg.nodes_per_build").observe(clg.node_count)
    return clg


def _build_clg(sync_graph: SyncGraph) -> CLG:
    clg = CLG(sync_graph)
    for node in sync_graph.rendezvous_nodes:  # rules 1-2
        clg.add_split_nodes(node)
    for node in sync_graph.rendezvous_nodes:  # rule 3
        clg.add_edge(clg.out_node(node), clg.in_node(node), EdgeKind.INTERNAL)
    for src, dst in sync_graph.control_edges():  # rules 4-5
        if src is sync_graph.b and dst is sync_graph.e:
            clg.add_edge(clg.b, clg.e, EdgeKind.CONTROL)
        elif src is sync_graph.b:
            clg.add_edge(clg.b, clg.out_node(dst), EdgeKind.CONTROL)
        elif dst is sync_graph.e:
            clg.add_edge(clg.in_node(src), clg.e, EdgeKind.CONTROL)
        else:
            clg.add_edge(clg.in_node(src), clg.out_node(dst), EdgeKind.CONTROL)
    for r, s in sync_graph.sync_edges():  # rule 6
        clg.add_edge(clg.out_node(r), clg.in_node(s), EdgeKind.SYNC)
        clg.add_edge(clg.out_node(s), clg.in_node(r), EdgeKind.SYNC)
    return clg

"""Exhaustive feasible-wave exploration — the exact, exponential baseline.

``NextWavesSet*`` (the reflexive transitive closure of ``NextWavesSet``
applied to the initial waves) enumerates every synchronization state a
program can reach.  The state space is the product of per-task position
sets, so this is worst-case exponential in the number of tasks — which
is exactly why the paper develops polynomial approximations.  Here it
serves as the ground-truth oracle for precision measurements and as the
exponential comparator in the scaling benchmarks.

Waves are memoized, so exploration terminates even when the sync graph
has control cycles (source loops): the wave vector space is finite.

Two kernels run the same search (see :data:`repro.waves.engine.BACKENDS`):

* ``backend="index"`` (default) — the packed-integer
  :class:`~repro.waves.engine.WaveIndex` engine;
* ``backend="reference"`` — the original tuple-of-nodes oracle below.

Both are bit-exact: same ``visited_count``, ``can_terminate``, anomaly
classifications (in the same order), and budget behavior.

Exploration is *budget-faithful*: ``state_limit`` is enforced during
seeding (the initial cross product can be exponentially wide on its
own) as well as expansion, and when the budget runs out everything
already discovered is still classified — the partial
:class:`ExplorationResult` (``limited=True``) is attached to the raised
:class:`~repro.errors.ExplorationLimitError`, or returned directly with
``on_limit="partial"``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from .. import obs
from ..errors import ExplorationLimitError
from ..syncgraph.model import SyncGraph, SyncNode
from .anomaly import WaveClassification, classify_wave
from .engine import BACKENDS, WaveIndex
from .guide import STRATEGIES, guide_for, validate_strategy
from .wave import Wave, _advance_options, iter_initial_waves, ready_pairs

__all__ = [
    "BACKENDS",
    "STRATEGIES",
    "ExplorationResult",
    "explore",
    "exact_deadlock",
    "exact_anomaly",
]

DEFAULT_STATE_LIMIT = 200_000

ON_LIMIT_MODES = ("raise", "partial")


@dataclass
class ExplorationResult:
    """Everything learned from an exhaustive exploration.

    ``anomalous`` holds the classification of every anomalous feasible
    wave.  ``can_terminate`` is True when some feasible wave has every
    task at ``e``.

    ``limited`` marks a run that exhausted ``state_limit`` **or** (for
    ``strategy="beam"``) dropped states to the beam width: the result
    is then a *partial* truth — anomalies listed and
    ``can_terminate=True`` are definite (every classified wave is
    genuinely reachable), but absence of anomalies and
    ``can_terminate=False`` are inconclusive.  ``truncated`` singles
    out the beam-width cause; it always implies ``limited``.

    ``strategy`` records the expansion order used (see
    :data:`repro.waves.guide.STRATEGIES`).  Strategy never changes
    what an *exhaustive* run finds — only which states are in hand
    when a budget trips.
    """

    graph: SyncGraph
    visited_count: int
    anomalous: List[WaveClassification] = field(default_factory=list)
    can_terminate: bool = False
    limited: bool = False
    state_limit: Optional[int] = None
    strategy: str = "bfs"
    truncated: bool = False

    @property
    def has_anomaly(self) -> bool:
        return bool(self.anomalous)

    @property
    def has_deadlock(self) -> bool:
        return any(c.has_deadlock for c in self.anomalous)

    @property
    def has_stall(self) -> bool:
        return any(c.has_stall for c in self.anomalous)

    @property
    def deadlock_waves(self) -> List[WaveClassification]:
        return [c for c in self.anomalous if c.has_deadlock]

    @property
    def stall_waves(self) -> List[WaveClassification]:
        return [c for c in self.anomalous if c.has_stall]

    @property
    def exhaustive(self) -> bool:
        """True when the whole reachable wave space was enumerated."""
        return not self.limited

    def deadlock_head_nodes(self) -> FrozenSet[SyncNode]:
        """Union of all deadlock-set members over all feasible waves."""
        heads: Set[SyncNode] = set()
        for c in self.anomalous:
            for d in c.deadlocks:
                heads |= d
        return frozenset(heads)


def explore(
    graph: SyncGraph,
    state_limit: int = DEFAULT_STATE_LIMIT,
    backend: str = "index",
    engine: Optional[WaveIndex] = None,
    on_limit: str = "raise",
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> ExplorationResult:
    """Enumerate ``NextWavesSet*(W_INIT)`` and classify anomalies.

    ``backend`` selects the search kernel (``"index"`` packed-int
    engine, ``"reference"`` oracle; bit-exact either way).  ``engine``
    optionally reuses a prebuilt :class:`WaveIndex`.

    ``strategy`` selects the expansion order: ``"bfs"`` (default,
    bit-exact with the reference oracle), ``"astar"`` best-first on
    the admissible future-cost table of :mod:`repro.waves.guide`, or
    ``"beam"`` (with ``beam_width``) keeping only the most promising
    states per depth layer.  An exhaustive bfs/astar run visits the
    same state set either way; beam truncation marks the result
    ``limited`` because dropped states certify nothing.

    When more than ``state_limit`` distinct waves are reached the
    search stops discovering but still classifies everything already in
    hand; ``on_limit="raise"`` (default) then raises
    :class:`~repro.errors.ExplorationLimitError` with the partial
    result attached as ``.result``, while ``on_limit="partial"``
    returns the partial :class:`ExplorationResult` (``limited=True``).
    The budget contract is identical for every strategy.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose one of {BACKENDS}"
        )
    if on_limit not in ON_LIMIT_MODES:
        raise ValueError(
            f"unknown on_limit mode {on_limit!r}; "
            f"choose one of {ON_LIMIT_MODES}"
        )
    effective_width = validate_strategy(strategy, beam_width, backend)
    with obs.span(
        "explore", state_limit=state_limit, backend=backend,
        strategy=strategy,
    ) as span:
        truncated = False
        if backend == "index":
            if engine is None:
                engine = WaveIndex(graph)
            if strategy == "bfs":
                (
                    visited_count,
                    can_terminate,
                    anomalous,
                    limited,
                    frontier_peak,
                ) = engine.explore(state_limit)
            elif strategy == "astar":
                (
                    visited_count,
                    can_terminate,
                    anomalous,
                    limited,
                    frontier_peak,
                ) = engine.explore_astar(
                    state_limit, guide_for(engine).estimate
                )
            else:
                (
                    visited_count,
                    can_terminate,
                    anomalous,
                    limited,
                    frontier_peak,
                    truncated,
                ) = engine.explore_beam(
                    state_limit, guide_for(engine).estimate, effective_width
                )
        else:
            (
                visited_count,
                can_terminate,
                anomalous,
                limited,
                frontier_peak,
            ) = _explore_reference(graph, state_limit)
        result = ExplorationResult(
            graph=graph,
            visited_count=visited_count,
            anomalous=anomalous,
            can_terminate=can_terminate,
            limited=limited,
            state_limit=state_limit,
            strategy=strategy,
            truncated=truncated,
        )
        _record_exploration(span, visited_count, frontier_peak, limited)
    if result.limited and on_limit == "raise":
        raise ExplorationLimitError(state_limit, result)
    return result


def _explore_reference(
    graph: SyncGraph, state_limit: int
) -> Tuple[int, bool, List[WaveClassification], bool, int]:
    """The tuple-of-nodes oracle kernel (same contract as
    :meth:`WaveIndex.explore`)."""
    visited: Set[Wave] = set()
    queue: deque = deque()
    limited = False
    for wave in iter_initial_waves(graph):
        if wave in visited:
            continue
        if len(visited) >= state_limit:
            limited = True
            break
        visited.add(wave)
        queue.append(wave)
    can_terminate = False
    anomalous: List[WaveClassification] = []
    frontier_peak = 0
    while queue:
        if len(queue) > frontier_peak:
            frontier_peak = len(queue)
        wave = queue.popleft()
        if wave.is_terminal(graph):
            can_terminate = True
            continue
        pairs = ready_pairs(graph, wave)
        if not pairs:
            if wave.real_nodes():
                anomalous.append(classify_wave(graph, wave))
            continue
        if limited:
            continue  # budget spent: classify what we have, no growth
        for i, j in pairs:
            for succ_i in _advance_options(graph, wave.positions[i]):
                for succ_j in _advance_options(graph, wave.positions[j]):
                    nxt = wave.replace(i, succ_i).replace(j, succ_j)
                    if nxt in visited:
                        continue
                    if len(visited) >= state_limit:
                        limited = True
                        break
                    visited.add(nxt)
                    queue.append(nxt)
                if limited:
                    break
            if limited:
                break
    return len(visited), can_terminate, anomalous, limited, frontier_peak


def _record_exploration(
    span, visited: int, frontier_peak: int, limited: bool
) -> None:
    """Publish one exploration's stats (no-op when obs is disabled)."""
    if not obs.is_enabled():
        return
    span.set_attribute("states", visited)
    span.set_attribute("frontier_peak", frontier_peak)
    obs.counter("explore.states_visited").inc(visited)
    obs.gauge("explore.frontier_peak").set(frontier_peak)
    obs.histogram("explore.states_per_run").observe(visited)
    if limited:
        obs.counter("explore.state_limit_hits").inc()


def exact_deadlock(
    graph: SyncGraph,
    state_limit: int = DEFAULT_STATE_LIMIT,
    backend: str = "index",
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> bool:
    """True iff some feasible wave exhibits a deadlock anomaly."""
    return explore(
        graph, state_limit, backend=backend,
        strategy=strategy, beam_width=beam_width,
    ).has_deadlock


def exact_anomaly(
    graph: SyncGraph,
    state_limit: int = DEFAULT_STATE_LIMIT,
    backend: str = "index",
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> bool:
    """True iff some feasible wave is anomalous (stall or deadlock)."""
    return explore(
        graph, state_limit, backend=backend,
        strategy=strategy, beam_width=beam_width,
    ).has_anomaly

"""Exhaustive feasible-wave exploration — the exact, exponential baseline.

``NextWavesSet*`` (the reflexive transitive closure of ``NextWavesSet``
applied to the initial waves) enumerates every synchronization state a
program can reach.  The state space is the product of per-task position
sets, so this is worst-case exponential in the number of tasks — which
is exactly why the paper develops polynomial approximations.  Here it
serves as the ground-truth oracle for precision measurements and as the
exponential comparator in the scaling benchmarks.

Waves are memoized, so exploration terminates even when the sync graph
has control cycles (source loops): the wave vector space is finite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .. import obs
from ..errors import ExplorationLimitError
from ..syncgraph.model import SyncGraph, SyncNode
from .anomaly import WaveClassification, classify_wave, is_anomalous
from .wave import Wave, initial_waves, next_waves

__all__ = ["ExplorationResult", "explore", "exact_deadlock", "exact_anomaly"]

DEFAULT_STATE_LIMIT = 200_000


@dataclass
class ExplorationResult:
    """Everything learned from an exhaustive exploration.

    ``anomalous`` holds the classification of every anomalous feasible
    wave.  ``can_terminate`` is True when some feasible wave has every
    task at ``e``.
    """

    graph: SyncGraph
    visited_count: int
    anomalous: List[WaveClassification] = field(default_factory=list)
    can_terminate: bool = False

    @property
    def has_anomaly(self) -> bool:
        return bool(self.anomalous)

    @property
    def has_deadlock(self) -> bool:
        return any(c.has_deadlock for c in self.anomalous)

    @property
    def has_stall(self) -> bool:
        return any(c.has_stall for c in self.anomalous)

    @property
    def deadlock_waves(self) -> List[WaveClassification]:
        return [c for c in self.anomalous if c.has_deadlock]

    @property
    def stall_waves(self) -> List[WaveClassification]:
        return [c for c in self.anomalous if c.has_stall]

    def deadlock_head_nodes(self) -> FrozenSet[SyncNode]:
        """Union of all deadlock-set members over all feasible waves."""
        heads: Set[SyncNode] = set()
        for c in self.anomalous:
            for d in c.deadlocks:
                heads |= d
        return frozenset(heads)


def explore(
    graph: SyncGraph,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> ExplorationResult:
    """Enumerate ``NextWavesSet*(W_INIT)`` and classify anomalies.

    Raises :class:`~repro.errors.ExplorationLimitError` when more than
    ``state_limit`` distinct waves are reached.
    """
    result = ExplorationResult(graph=graph, visited_count=0)
    visited: Set[Wave] = set()
    queue: deque[Wave] = deque()
    frontier_peak = 0
    with obs.span("explore", state_limit=state_limit) as span:
        for wave in initial_waves(graph):
            if wave not in visited:
                visited.add(wave)
                queue.append(wave)
        while queue:
            if len(queue) > frontier_peak:
                frontier_peak = len(queue)
            wave = queue.popleft()
            if wave.is_terminal(graph):
                result.can_terminate = True
                continue
            if is_anomalous(graph, wave):
                result.anomalous.append(classify_wave(graph, wave))
                continue
            for nxt in next_waves(graph, wave):
                if nxt not in visited:
                    if len(visited) >= state_limit:
                        _record_exploration(
                            span, len(visited), frontier_peak, limited=True
                        )
                        raise ExplorationLimitError(state_limit)
                    visited.add(nxt)
                    queue.append(nxt)
        result.visited_count = len(visited)
        _record_exploration(
            span, result.visited_count, frontier_peak, limited=False
        )
    return result


def _record_exploration(
    span, visited: int, frontier_peak: int, limited: bool
) -> None:
    """Publish one exploration's stats (no-op when obs is disabled)."""
    if not obs.is_enabled():
        return
    span.set_attribute("states", visited)
    span.set_attribute("frontier_peak", frontier_peak)
    obs.counter("explore.states_visited").inc(visited)
    obs.gauge("explore.frontier_peak").set(frontier_peak)
    obs.histogram("explore.states_per_run").observe(visited)
    if limited:
        obs.counter("explore.state_limit_hits").inc()


def exact_deadlock(graph: SyncGraph, state_limit: int = DEFAULT_STATE_LIMIT) -> bool:
    """True iff some feasible wave exhibits a deadlock anomaly."""
    return explore(graph, state_limit).has_deadlock


def exact_anomaly(graph: SyncGraph, state_limit: int = DEFAULT_STATE_LIMIT) -> bool:
    """True iff some feasible wave is anomalous (stall or deadlock)."""
    return explore(graph, state_limit).has_anomaly

"""Execution-wave semantics: the paper's dynamic model and exact oracle."""

from .anomaly import (
    WaveClassification,
    classify_wave,
    deadlock_sets,
    is_anomalous,
    stall_nodes,
)
from .coupling import coupled_to, coupling_graph, transitively_coupled_sets
from .dot import wave_graph_to_dot
from .engine import BACKENDS, WaveIndex
from .explore import (
    DEFAULT_STATE_LIMIT,
    ExplorationResult,
    exact_anomaly,
    exact_deadlock,
    explore,
)
from .guide import (
    DEFAULT_BEAM_WIDTH,
    STRATEGIES,
    FutureCostTable,
    build_guide,
    guide_for,
    validate_strategy,
)
from .wave import (
    Wave,
    initial_waves,
    iter_initial_waves,
    next_waves,
    next_waves_with_events,
    ready_pairs,
)
from .states import NodeState, StateSnapshot, label_wave, trace_states
from .witness import (
    AnomalyWitness,
    WitnessSearchOutcome,
    find_anomaly_witness,
    search_anomaly_witness,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_BEAM_WIDTH",
    "DEFAULT_STATE_LIMIT",
    "STRATEGIES",
    "ExplorationResult",
    "AnomalyWitness",
    "FutureCostTable",
    "WaveIndex",
    "WitnessSearchOutcome",
    "build_guide",
    "guide_for",
    "search_anomaly_witness",
    "validate_strategy",
    "NodeState",
    "StateSnapshot",
    "Wave",
    "WaveClassification",
    "classify_wave",
    "coupled_to",
    "coupling_graph",
    "deadlock_sets",
    "exact_anomaly",
    "exact_deadlock",
    "explore",
    "initial_waves",
    "iter_initial_waves",
    "is_anomalous",
    "label_wave",
    "find_anomaly_witness",
    "next_waves",
    "next_waves_with_events",
    "ready_pairs",
    "stall_nodes",
    "trace_states",
    "wave_graph_to_dot",
    "transitively_coupled_sets",
]

"""Indexed exact-exploration engine: packed-integer wave kernels.

The reference kernels in :mod:`repro.waves.explore` and
:mod:`repro.waves.witness` traverse the wave space over tuples of
:class:`~repro.syncgraph.model.SyncNode` — every step allocates `Wave`
objects, hashes node tuples, and re-queries sync adjacency through
per-node dict lookups.  That is the right shape for an oracle but pays
large constant factors in the innermost loop of what is already an
exponential search.

:class:`WaveIndex` is the wave-space analogue of
:class:`repro.analysis.index.AnalysisIndex`: built once per sync graph,
it

* assigns each task a *dense local position id* for every node that can
  appear as that task's wave entry (the task's rendezvous nodes plus the
  shared ``e``), and packs a whole wave into a single mixed-radix
  integer (one bit-field per task) — the dedup set holds ints, the
  terminal test is one equality, and successor keys are computed by
  adding precomputed deltas;
* precomputes, per *slot* (task × local position), the ready-partner
  bitmask over all slots (who this node can rendezvous with, wherever
  the partner task currently stands) and the control-successor table as
  ``(key_delta, occupancy_delta)`` pairs;
* runs BFS kernels for exhaustive exploration and shortest-witness
  search that are **bit-exact** with the reference kernels: identical
  seeding order (the cross product of per-task initial options),
  identical ready-pair order (``(i, j)`` with ``i < j``), identical
  successor order (``graph.control_successors`` order), and therefore
  identical ``visited_count``, ``can_terminate``, anomaly
  classifications, and witness schedules — the hypothesis differential
  tests in ``tests/test_engine.py`` enforce this.

Anomalous waves are rare relative to the space walked, so their
classification is delegated to the reference
:func:`~repro.waves.anomaly.classify_wave` on the unpacked wave —
parity of stalls/deadlocks/coupling is inherited rather than re-proved.

Both kernels are *budget-faithful*: the ``state_limit`` is enforced
during seeding as well as expansion, and once the budget is hit the
kernel stops discovering states but still drains the queue, classifying
every wave already in hand — partial anomalies survive exhaustion
instead of being thrown away.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import product
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .. import obs
from ..syncgraph.model import SyncGraph, SyncNode
from .anomaly import WaveClassification, classify_wave
from .wave import Wave

__all__ = ["BACKENDS", "WaveIndex"]

# Kernel selector shared by explore/exact_deadlock/exact_anomaly/
# find_anomaly_witness: "index" is the packed-int engine, "reference"
# the original tuple-of-nodes oracle.
BACKENDS = ("index", "reference")

Rendezvous = Tuple[SyncNode, SyncNode]
WitnessData = Tuple[Wave, Tuple[Rendezvous, ...], Tuple[Wave, ...],
                    WaveClassification]


class WaveIndex:
    """Dense-position packed-integer view of one sync graph's wave space.

    Construct once and pass to :func:`repro.waves.explore.explore` /
    :func:`repro.waves.witness.find_anomaly_witness` via ``engine=`` to
    amortize the build over several searches.
    """

    def __init__(self, graph: SyncGraph) -> None:
        self.graph = graph
        tasks = graph.tasks
        n = len(tasks)
        self.task_count = n

        # Per-task position universes: every rendezvous node of the
        # task plus the shared `e`, each with a dense local id.
        shift: List[int] = []
        mask: List[int] = []
        base: List[int] = []
        node_of_slot: List[SyncNode] = []
        local_maps: List[Dict[SyncNode, int]] = []
        e_local: List[int] = []
        bit = 0
        for task in tasks:
            positions = list(graph.nodes_of_task(task)) + [graph.e]
            local = {node: idx for idx, node in enumerate(positions)}
            width = max(1, (len(positions) - 1).bit_length())
            shift.append(bit)
            mask.append((1 << width) - 1)
            base.append(len(node_of_slot))
            node_of_slot.extend(positions)
            local_maps.append(local)
            e_local.append(local[graph.e])
            bit += width
        self.shift = shift
        self.mask = mask
        self.slot_base = base
        self.node_of_slot = node_of_slot
        self.slot_count = len(node_of_slot)
        self.terminal_key = sum(
            e_local[i] << shift[i] for i in range(n)
        )

        # Per-slot tables: rendezvous bit, ready partners (bitmask over
        # slots of other tasks), successor (key_delta, occ_delta) pairs.
        task_idx = {t: i for i, t in enumerate(tasks)}
        rdv_mask = 0
        partner_mask: List[int] = [0] * self.slot_count
        succ_deltas: List[Tuple[Tuple[int, int], ...]] = (
            [()] * self.slot_count
        )
        for i, task in enumerate(tasks):
            local = local_maps[i]
            for node, l in local.items():
                slot = base[i] + l
                if not node.is_rendezvous:
                    continue
                rdv_mask |= 1 << slot
                pm = 0
                for p in graph.sync_neighbors(node):
                    j = task_idx[p.task]
                    pm |= 1 << (base[j] + local_maps[j][p])
                partner_mask[slot] = pm
                succs = graph.control_successors(node)
                if len(set(succs)) != len(succs):
                    # mirror wave._advance_options: hand-built graphs
                    # may register a successor twice
                    succs = tuple(dict.fromkeys(succs))
                deltas = []
                for s in succs:
                    m = local[s]
                    deltas.append(
                        (
                            (m - l) << shift[i],
                            (1 << (base[i] + m)) ^ (1 << slot),
                        )
                    )
                succ_deltas[slot] = tuple(deltas)
        self.rdv_mask = rdv_mask
        self.partner_mask = partner_mask
        self.succ_deltas = succ_deltas

        # Initial options per task, as locals in graph order.
        self.initial_locals: List[Tuple[int, ...]] = []
        for i, task in enumerate(tasks):
            opts = graph.initial_options(task)
            if not opts:
                raise ValueError(
                    f"task {task!r} has no initial wave options; "
                    "sync graph construction is incomplete"
                )
            self.initial_locals.append(
                tuple(local_maps[i][node] for node in opts)
            )

        if obs.is_enabled():
            obs.counter("engine.builds").inc()
            obs.gauge("engine.slots").set(self.slot_count)

    # -- packing helpers ---------------------------------------------------

    def _slots_of(self, key: int) -> List[int]:
        shift = self.shift
        mask = self.mask
        base = self.slot_base
        return [
            base[i] + ((key >> shift[i]) & mask[i])
            for i in range(self.task_count)
        ]

    def unpack(self, key: int) -> Wave:
        """The reference :class:`Wave` this packed key denotes."""
        node_of = self.node_of_slot
        return Wave(tuple(node_of[s] for s in self._slots_of(key)))

    def _seed(self) -> Iterator[Tuple[int, int]]:
        """Lazy ``(key, occ)`` stream over the initial cross product.

        Same order as :func:`repro.waves.wave.initial_waves`; lazy so
        the caller can enforce the state budget *while* seeding.
        """
        shift = self.shift
        base = self.slot_base
        for combo in product(*self.initial_locals):
            key = 0
            occ = 0
            for i, l in enumerate(combo):
                key |= l << shift[i]
                occ |= 1 << (base[i] + l)
            yield key, occ

    def _ready_pairs(self, slots: List[int], occ: int) -> List[Tuple[int, int]]:
        """Task-index pairs ``(i, j)``, ``i < j``, that can rendezvous.

        Matches :func:`repro.waves.wave.ready_pairs` order exactly.
        """
        pairs: List[Tuple[int, int]] = []
        partner_mask = self.partner_mask
        rdv = self.rdv_mask
        n = self.task_count
        for i in range(n):
            s_i = slots[i]
            if not (rdv >> s_i) & 1:
                continue
            m = partner_mask[s_i] & occ
            if not m:
                continue
            for j in range(i + 1, n):
                if (m >> slots[j]) & 1:
                    pairs.append((i, j))
        return pairs

    # -- kernels -----------------------------------------------------------

    def explore(
        self, state_limit: int
    ) -> Tuple[int, bool, List[WaveClassification], bool, int]:
        """Exhaustive BFS over the packed wave space.

        Returns ``(visited_count, can_terminate, anomalous, limited,
        frontier_peak)`` — the raw material of an
        :class:`~repro.waves.explore.ExplorationResult`.
        """
        graph = self.graph
        terminal = self.terminal_key
        rdv = self.rdv_mask
        succ_deltas = self.succ_deltas
        visited: set = set()
        queue: deque = deque()
        limited = False
        for key, occ in self._seed():
            if key in visited:
                continue
            if len(visited) >= state_limit:
                limited = True
                break
            visited.add(key)
            queue.append((key, occ))
        can_terminate = False
        anomalous: List[WaveClassification] = []
        frontier_peak = 0
        while queue:
            if len(queue) > frontier_peak:
                frontier_peak = len(queue)
            key, occ = queue.popleft()
            if key == terminal:
                can_terminate = True
                continue
            slots = self._slots_of(key)
            pairs = self._ready_pairs(slots, occ)
            if not pairs:
                if occ & rdv:
                    anomalous.append(classify_wave(graph, self.unpack(key)))
                continue
            if limited:
                continue  # budget spent: classify what we have, no growth
            for i, j in pairs:
                for kd_a, od_a in succ_deltas[slots[i]]:
                    for kd_b, od_b in succ_deltas[slots[j]]:
                        nk = key + kd_a + kd_b
                        if nk in visited:
                            continue
                        if len(visited) >= state_limit:
                            limited = True
                            break
                        visited.add(nk)
                        queue.append((nk, occ ^ od_a ^ od_b))
                    if limited:
                        break
                if limited:
                    break
        return len(visited), can_terminate, anomalous, limited, frontier_peak

    def find_witness(
        self,
        matches: Callable[[WaveClassification], bool],
        state_limit: int,
    ) -> Tuple[Optional[WitnessData], int, bool]:
        """Shortest-witness BFS with parent tracking.

        Returns ``(witness_data, states_discovered, limited)`` where
        ``witness_data`` is ``(initial, schedule, waves,
        classification)`` ready to wrap into an
        :class:`~repro.waves.witness.AnomalyWitness`, or ``None`` when
        no discovered wave matched.
        """
        graph = self.graph
        terminal = self.terminal_key
        rdv = self.rdv_mask
        node_of = self.node_of_slot
        succ_deltas = self.succ_deltas
        # key -> (parent_key, (fired_slot_a, fired_slot_b)) | None
        parents: Dict[int, Optional[Tuple[int, Tuple[int, int]]]] = {}
        queue: deque = deque()
        limited = False
        for key, occ in self._seed():
            if key in parents:
                continue
            if len(parents) >= state_limit:
                limited = True
                break
            parents[key] = None
            queue.append((key, occ))
        while queue:
            key, occ = queue.popleft()
            if key == terminal:
                continue
            slots = self._slots_of(key)
            pairs = self._ready_pairs(slots, occ)
            if not pairs:
                if not occ & rdv:
                    continue
                classification = classify_wave(graph, self.unpack(key))
                if not matches(classification):
                    continue
                schedule: List[Rendezvous] = []
                chain: List[Wave] = [classification.wave]
                cursor = key
                while True:
                    parent = parents[cursor]
                    if parent is None:
                        break
                    cursor, (sa, sb) = parent
                    schedule.append((node_of[sa], node_of[sb]))
                    chain.append(self.unpack(cursor))
                schedule.reverse()
                chain.reverse()
                return (
                    (
                        self.unpack(cursor),
                        tuple(schedule),
                        tuple(chain),
                        classification,
                    ),
                    len(parents),
                    limited,
                )
            if limited:
                continue
            for i, j in pairs:
                fired = (slots[i], slots[j])
                for kd_a, od_a in succ_deltas[slots[i]]:
                    for kd_b, od_b in succ_deltas[slots[j]]:
                        nk = key + kd_a + kd_b
                        if nk in parents:
                            continue
                        if len(parents) >= state_limit:
                            limited = True
                            break
                        parents[nk] = (key, fired)
                        queue.append((nk, occ ^ od_a ^ od_b))
                    if limited:
                        break
                if limited:
                    break
        return None, len(parents), limited

    # -- guided kernels ----------------------------------------------------
    #
    # Same budget-faithful contract as the BFS kernels (state_limit
    # enforced during seeding and expansion; once hit, what is already
    # in hand is still processed, never grown), but expansion *order*
    # follows an admissible future-cost estimate (see
    # :mod:`repro.waves.guide`).  A* orders the open heap by
    # ``(g + h, -g, seq)`` — the ``-g`` tie-break dives through
    # plateaus of equal ``f`` instead of sweeping them breadth-first —
    # and beam search processes depth layers truncated to the best
    # ``beam_width`` states by ``h``.  Identical packed keys recombine
    # for free exactly as in BFS; a key rediscovered at equal-or-worse
    # cost is dropped and counted as ``guide.pruned_dominated``.

    def explore_astar(
        self, state_limit: int, estimate: Callable[[int], int]
    ) -> Tuple[int, bool, List[WaveClassification], bool, int]:
        """Exhaustive best-first exploration ordered by ``g + h``.

        Same return shape as :meth:`explore`; an unlimited run visits
        exactly the same state set, so verdicts cannot change — only
        *which* states are in hand when a budget trips.
        """
        graph = self.graph
        terminal = self.terminal_key
        rdv = self.rdv_mask
        succ_deltas = self.succ_deltas
        visited: set = set()
        heap: List[Tuple[int, int, int, int, int]] = []
        seq = 0
        limited = False
        pushed = popped = dominated = 0
        for key, occ in self._seed():
            if key in visited:
                dominated += 1
                continue
            if len(visited) >= state_limit:
                limited = True
                break
            visited.add(key)
            heapq.heappush(heap, (estimate(key), 0, seq, key, occ))
            seq += 1
            pushed += 1
        can_terminate = False
        anomalous: List[WaveClassification] = []
        frontier_peak = 0
        while heap:
            if len(heap) > frontier_peak:
                frontier_peak = len(heap)
            _, neg_g, _, key, occ = heapq.heappop(heap)
            popped += 1
            if key == terminal:
                can_terminate = True
                continue
            slots = self._slots_of(key)
            pairs = self._ready_pairs(slots, occ)
            if not pairs:
                if occ & rdv:
                    anomalous.append(classify_wave(graph, self.unpack(key)))
                continue
            if limited:
                continue  # budget spent: classify what we have, no growth
            g1 = 1 - neg_g
            for i, j in pairs:
                for kd_a, od_a in succ_deltas[slots[i]]:
                    for kd_b, od_b in succ_deltas[slots[j]]:
                        nk = key + kd_a + kd_b
                        if nk in visited:
                            dominated += 1
                            continue
                        if len(visited) >= state_limit:
                            limited = True
                            break
                        visited.add(nk)
                        heapq.heappush(
                            heap,
                            (g1 + estimate(nk), -g1, seq, nk,
                             occ ^ od_a ^ od_b),
                        )
                        seq += 1
                        pushed += 1
                    if limited:
                        break
                if limited:
                    break
        if obs.is_enabled():
            obs.counter("astar.pushed").inc(pushed)
            obs.counter("astar.popped").inc(popped)
            obs.counter("guide.pruned_dominated").inc(dominated)
        return len(visited), can_terminate, anomalous, limited, frontier_peak

    def explore_beam(
        self,
        state_limit: int,
        estimate: Callable[[int], int],
        beam_width: int,
    ) -> Tuple[int, bool, List[WaveClassification], bool, int, bool]:
        """Layered beam exploration: each depth layer keeps only the
        ``beam_width`` best states by ``h``.

        Returns ``(visited_count, can_terminate, anomalous, limited,
        frontier_peak, truncated)``.  Any truncation makes the run
        non-exhaustive (``truncated`` implies the caller must treat the
        result as limited): absence of an anomaly in a truncated run
        certifies nothing.  A beam wide enough never to truncate visits
        exactly the BFS state set.
        """
        graph = self.graph
        terminal = self.terminal_key
        rdv = self.rdv_mask
        succ_deltas = self.succ_deltas
        visited: set = set()
        limited = False
        truncated = False
        dominated = dropped = 0
        seed: List[Tuple[int, int]] = []
        for key, occ in self._seed():
            if key in visited:
                dominated += 1
                continue
            if len(visited) >= state_limit:
                limited = True
                break
            visited.add(key)
            seed.append((key, occ))
        layer = self._beam_cut(seed, estimate, beam_width, visited)
        if len(layer) < len(seed):
            dropped += len(seed) - len(layer)
            truncated = True
        can_terminate = False
        anomalous: List[WaveClassification] = []
        frontier_peak = len(layer)
        while layer:
            successors: List[Tuple[int, int]] = []
            for key, occ in layer:
                if key == terminal:
                    can_terminate = True
                    continue
                slots = self._slots_of(key)
                pairs = self._ready_pairs(slots, occ)
                if not pairs:
                    if occ & rdv:
                        anomalous.append(
                            classify_wave(graph, self.unpack(key))
                        )
                    continue
                if limited:
                    continue
                for i, j in pairs:
                    for kd_a, od_a in succ_deltas[slots[i]]:
                        for kd_b, od_b in succ_deltas[slots[j]]:
                            nk = key + kd_a + kd_b
                            if nk in visited:
                                dominated += 1
                                continue
                            if len(visited) >= state_limit:
                                limited = True
                                break
                            visited.add(nk)
                            successors.append((nk, occ ^ od_a ^ od_b))
                        if limited:
                            break
                    if limited:
                        break
            if len(successors) > frontier_peak:
                frontier_peak = len(successors)
            layer = self._beam_cut(successors, estimate, beam_width, visited)
            if len(layer) < len(successors):
                dropped += len(successors) - len(layer)
                truncated = True
        if obs.is_enabled():
            obs.counter("beam.truncated").inc(dropped)
            obs.counter("guide.pruned_dominated").inc(dominated)
        return (
            len(visited), can_terminate, anomalous,
            limited or truncated, frontier_peak, truncated,
        )

    @staticmethod
    def _beam_cut(
        states: List[Tuple[int, int]],
        estimate: Callable[[int], int],
        beam_width: int,
        visited: set,
    ) -> List[Tuple[int, int]]:
        """The ``beam_width`` best states by ``h`` (stable on ties).

        Dropped states are also removed from ``visited`` so a later
        layer may rediscover them through another path — a truncated
        beam narrows the frontier, it does not poison the state space.
        """
        if len(states) <= beam_width:
            return states
        order = sorted(
            range(len(states)), key=lambda idx: estimate(states[idx][0])
        )
        keep = sorted(order[:beam_width])
        for idx in order[beam_width:]:
            visited.discard(states[idx][0])
        return [states[idx] for idx in keep]

    def find_witness_astar(
        self,
        matches: Callable[[WaveClassification], bool],
        state_limit: int,
        estimate: Callable[[int], int],
    ) -> Tuple[Optional[WitnessData], int, bool]:
        """Shortest-witness A\\* with parent tracking.

        The estimate is admissible and consistent (see
        :mod:`repro.waves.guide`), and rediscovered keys re-enter the
        heap whenever a strictly shorter path is found, so the first
        matching anomalous wave *popped* is reached by a shortest
        schedule — the witness has exactly the BFS witness length.
        Same return shape as :meth:`find_witness`.
        """
        graph = self.graph
        terminal = self.terminal_key
        rdv = self.rdv_mask
        succ_deltas = self.succ_deltas
        # key -> best known g; key -> (parent_key, fired) | None
        g_of: Dict[int, int] = {}
        parents: Dict[int, Optional[Tuple[int, Tuple[int, int]]]] = {}
        heap: List[Tuple[int, int, int, int, int]] = []
        seq = 0
        limited = False
        pushed = popped = dominated = 0
        for key, occ in self._seed():
            if key in g_of:
                dominated += 1
                continue
            if len(g_of) >= state_limit:
                limited = True
                break
            g_of[key] = 0
            parents[key] = None
            heapq.heappush(heap, (estimate(key), 0, seq, key, occ))
            seq += 1
            pushed += 1
        while heap:
            _, neg_g, _, key, occ = heapq.heappop(heap)
            g = -neg_g
            if g > g_of[key]:
                continue  # stale entry superseded by a shorter path
            popped += 1
            if key == terminal:
                continue
            slots = self._slots_of(key)
            pairs = self._ready_pairs(slots, occ)
            if not pairs:
                if not occ & rdv:
                    continue
                classification = classify_wave(graph, self.unpack(key))
                if not matches(classification):
                    continue
                if obs.is_enabled():
                    obs.counter("astar.pushed").inc(pushed)
                    obs.counter("astar.popped").inc(popped)
                    obs.counter("guide.pruned_dominated").inc(dominated)
                return (
                    self._reconstruct(parents, key, classification),
                    len(g_of),
                    limited,
                )
            if limited:
                continue
            g1 = g + 1
            for i, j in pairs:
                fired = (slots[i], slots[j])
                for kd_a, od_a in succ_deltas[slots[i]]:
                    for kd_b, od_b in succ_deltas[slots[j]]:
                        nk = key + kd_a + kd_b
                        known = g_of.get(nk)
                        if known is not None:
                            if g1 < known:
                                g_of[nk] = g1
                                parents[nk] = (key, fired)
                                heapq.heappush(
                                    heap,
                                    (g1 + estimate(nk), -g1, seq, nk,
                                     occ ^ od_a ^ od_b),
                                )
                                seq += 1
                                pushed += 1
                            else:
                                dominated += 1
                            continue
                        if len(g_of) >= state_limit:
                            limited = True
                            break
                        g_of[nk] = g1
                        parents[nk] = (key, fired)
                        heapq.heappush(
                            heap,
                            (g1 + estimate(nk), -g1, seq, nk,
                             occ ^ od_a ^ od_b),
                        )
                        seq += 1
                        pushed += 1
                    if limited:
                        break
                if limited:
                    break
        if obs.is_enabled():
            obs.counter("astar.pushed").inc(pushed)
            obs.counter("astar.popped").inc(popped)
            obs.counter("guide.pruned_dominated").inc(dominated)
        return None, len(g_of), limited

    def find_witness_beam(
        self,
        matches: Callable[[WaveClassification], bool],
        state_limit: int,
        estimate: Callable[[int], int],
        beam_width: int,
    ) -> Tuple[Optional[WitnessData], int, bool, bool]:
        """Layered beam witness search.

        Returns ``(witness_data, states_discovered, limited,
        truncated)``.  A found witness is always a valid replayable
        schedule, but truncation forfeits both shortest-ness and the
        right to conclude absence — callers must treat a truncated
        witnessless run as limited.
        """
        graph = self.graph
        terminal = self.terminal_key
        rdv = self.rdv_mask
        succ_deltas = self.succ_deltas
        parents: Dict[int, Optional[Tuple[int, Tuple[int, int]]]] = {}
        limited = False
        truncated = False
        dominated = dropped = 0
        seed: List[Tuple[int, int]] = []
        for key, occ in self._seed():
            if key in parents:
                dominated += 1
                continue
            if len(parents) >= state_limit:
                limited = True
                break
            parents[key] = None
            seed.append((key, occ))
        layer = self._beam_cut_parents(seed, estimate, beam_width, parents)
        if len(layer) < len(seed):
            dropped += len(seed) - len(layer)
            truncated = True
        while layer:
            successors: List[Tuple[int, int]] = []
            pending: Dict[int, Tuple[int, Tuple[int, int]]] = {}
            for key, occ in layer:
                if key == terminal:
                    continue
                slots = self._slots_of(key)
                pairs = self._ready_pairs(slots, occ)
                if not pairs:
                    if not occ & rdv:
                        continue
                    classification = classify_wave(graph, self.unpack(key))
                    if not matches(classification):
                        continue
                    if obs.is_enabled():
                        obs.counter("beam.truncated").inc(dropped)
                        obs.counter("guide.pruned_dominated").inc(dominated)
                    return (
                        self._reconstruct(parents, key, classification),
                        len(parents),
                        limited,
                        truncated,
                    )
                if limited:
                    continue
                for i, j in pairs:
                    fired = (slots[i], slots[j])
                    for kd_a, od_a in succ_deltas[slots[i]]:
                        for kd_b, od_b in succ_deltas[slots[j]]:
                            nk = key + kd_a + kd_b
                            if nk in parents or nk in pending:
                                dominated += 1
                                continue
                            if len(parents) + len(pending) >= state_limit:
                                limited = True
                                break
                            pending[nk] = (key, fired)
                            successors.append((nk, occ ^ od_a ^ od_b))
                        if limited:
                            break
                    if limited:
                        break
            if len(successors) > beam_width:
                order = sorted(
                    range(len(successors)),
                    key=lambda idx: estimate(successors[idx][0]),
                )
                keep = sorted(order[:beam_width])
                dropped += len(successors) - beam_width
                truncated = True
                successors = [successors[idx] for idx in keep]
            for nk, _ in successors:
                parents[nk] = pending[nk]
            layer = successors
        if obs.is_enabled():
            obs.counter("beam.truncated").inc(dropped)
            obs.counter("guide.pruned_dominated").inc(dominated)
        return None, len(parents), limited, truncated

    @staticmethod
    def _beam_cut_parents(
        states: List[Tuple[int, int]],
        estimate: Callable[[int], int],
        beam_width: int,
        parents: Dict[int, Optional[Tuple[int, Tuple[int, int]]]],
    ) -> List[Tuple[int, int]]:
        """Seed-layer truncation twin of :meth:`_beam_cut` operating on
        the witness kernels' parent map."""
        if len(states) <= beam_width:
            return states
        order = sorted(
            range(len(states)), key=lambda idx: estimate(states[idx][0])
        )
        keep = sorted(order[:beam_width])
        for idx in order[beam_width:]:
            parents.pop(states[idx][0], None)
        return [states[idx] for idx in keep]

    def _reconstruct(
        self,
        parents: Dict[int, Optional[Tuple[int, Tuple[int, int]]]],
        key: int,
        classification: WaveClassification,
    ) -> WitnessData:
        """Replay the parent chain of ``key`` into witness data."""
        node_of = self.node_of_slot
        schedule: List[Rendezvous] = []
        chain: List[Wave] = [classification.wave]
        cursor = key
        while True:
            parent = parents[cursor]
            if parent is None:
                break
            cursor, (sa, sb) = parent
            schedule.append((node_of[sa], node_of[sb]))
            chain.append(self.unpack(cursor))
        schedule.reverse()
        chain.reverse()
        return (
            self.unpack(cursor),
            tuple(schedule),
            tuple(chain),
            classification,
        )

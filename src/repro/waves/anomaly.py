"""Anomaly classification of execution waves (paper §2).

``Anomalous(W)``: the wave contains at least one real rendezvous node
and no two wave entries share a sync edge — no rendezvous can fire, yet
some task has not terminated.

An anomalous wave exhibits a *stall* at node ``r = (t, m, s)`` when no
complementary node ``z = (t, m, s̄)`` is control-reachable from any wave
entry: nothing can ever rendezvous with ``r`` again.

It exhibits a *deadlock* when some subset ``D`` of its entries is
cyclically coupled: each node of ``D`` waits on a control descendant of
another node of ``D``.

Theorem 1 (checked by :func:`classify_wave` and enforced in property
tests): every node of an anomalous wave is a stall node, a deadlock
participant, or transitively coupled to one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Set, Tuple

from ..syncgraph.model import SyncGraph, SyncNode
from .coupling import coupling_graph, transitively_coupled_sets
from .wave import Wave, ready_pairs

__all__ = ["WaveClassification", "is_anomalous", "stall_nodes", "deadlock_sets",
           "classify_wave"]


def is_anomalous(graph: SyncGraph, wave: Wave) -> bool:
    """``Anomalous(W)`` exactly as defined in the paper."""
    if not wave.real_nodes():
        return False
    return not ready_pairs(graph, wave)


def stall_nodes(graph: SyncGraph, wave: Wave) -> Tuple[SyncNode, ...]:
    """Wave entries that are stall nodes of the (anomalous) wave.

    ``r`` stalls when no sync partner of ``r`` is control-reachable
    (reflexively) from the current position of any task.  A partner
    *on* the wave would contradict anomaly, so reflexive reachability
    is safe.
    """
    stalled: List[SyncNode] = []
    reachable: Set[SyncNode] = set()
    for pos in wave.positions:
        if pos.is_rendezvous:
            reachable.add(pos)
            reachable.update(graph.control_descendants(pos, strict=True))
    for r in wave.positions:
        if not r.is_rendezvous:
            continue
        partners = set(graph.sync_neighbors(r))
        if not (partners & reachable):
            stalled.append(r)
    return tuple(stalled)


def deadlock_sets(graph: SyncGraph, wave: Wave) -> List[FrozenSet[SyncNode]]:
    """The deadlock sets ``D`` of the (anomalous) wave — coupling cycles."""
    return transitively_coupled_sets(graph, wave)


@dataclass(frozen=True)
class WaveClassification:
    """Full classification of one anomalous wave."""

    wave: Wave
    stalls: Tuple[SyncNode, ...]
    deadlocks: Tuple[FrozenSet[SyncNode], ...]
    coupled_to_anomaly: Tuple[SyncNode, ...]

    @property
    def has_stall(self) -> bool:
        return bool(self.stalls)

    @property
    def has_deadlock(self) -> bool:
        return bool(self.deadlocks)

    @property
    def covers_all_nodes(self) -> bool:
        """Theorem 1: every real wave node is accounted for."""
        accounted = set(self.stalls) | set(self.coupled_to_anomaly)
        for d in self.deadlocks:
            accounted |= d
        return all(r in accounted for r in self.wave.real_nodes())


def classify_wave(graph: SyncGraph, wave: Wave) -> WaveClassification:
    """Classify an anomalous wave into stalls, deadlocks and coupled nodes.

    Raises ``ValueError`` if the wave is not anomalous.
    """
    if not is_anomalous(graph, wave):
        raise ValueError(f"wave {wave} is not anomalous")
    stalls = stall_nodes(graph, wave)
    deadlocks = tuple(deadlock_sets(graph, wave))
    anchor: Set[SyncNode] = set(stalls)
    for d in deadlocks:
        anchor |= d

    # Transitive closure of the depends-on relation into the anchor set.
    adj = coupling_graph(graph, wave)
    coupled: Set[SyncNode] = set()
    changed = True
    while changed:
        changed = False
        for r, deps in adj.items():
            if r in anchor or r in coupled:
                continue
            if deps & (anchor | coupled):
                coupled.add(r)
                changed = True
    return WaveClassification(
        wave=wave,
        stalls=stalls,
        deadlocks=deadlocks,
        coupled_to_anomaly=tuple(coupled),
    )

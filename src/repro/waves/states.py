"""The paper's node-state model: NOT-SEEN / READY / WAITING / EXECUTED.

Section 2 describes simulation as an execution wave advancing over the
sync graph, with every node in one of four states.  This module labels
the nodes along a concrete wave sequence (e.g. a witness schedule),
reproducing the paper's bookkeeping exactly:

* all nodes on the wave are READY or WAITING — READY iff some other
  wave node shares a sync edge with them;
* nodes already passed by the wave are EXECUTED;
* everything else is NOT-SEEN.

Used by examples/docs to visualize schedules and by tests as an
executable restatement of the §2 invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..syncgraph.model import SyncGraph, SyncNode
from .wave import Wave
from .witness import AnomalyWitness

__all__ = [
    "NodeState",
    "StateSnapshot",
    "label_wave",
    "trace_states",
]


class NodeState:
    NOT_SEEN = "NOT-SEEN"
    READY = "READY"
    WAITING = "WAITING"
    EXECUTED = "EXECUTED"


@dataclass(frozen=True)
class StateSnapshot:
    """Node states at one point of a simulated execution."""

    wave: Wave
    states: Dict[SyncNode, str]

    def of(self, node: SyncNode) -> str:
        return self.states[node]

    def ready_nodes(self) -> Tuple[SyncNode, ...]:
        return tuple(
            n for n, s in self.states.items() if s == NodeState.READY
        )

    def waiting_nodes(self) -> Tuple[SyncNode, ...]:
        return tuple(
            n for n, s in self.states.items() if s == NodeState.WAITING
        )

    def check_invariants(self, graph: SyncGraph) -> None:
        """Assert the §2 invariants; raises AssertionError on violation."""
        on_wave = set(self.wave.real_nodes())
        for node, state in self.states.items():
            if node in on_wave:
                assert state in (NodeState.READY, NodeState.WAITING)
            else:
                assert state in (NodeState.NOT_SEEN, NodeState.EXECUTED)
        for node in on_wave:
            partners_on_wave = any(
                other in on_wave
                for other in graph.sync_neighbors(node)
            )
            expected = (
                NodeState.READY if partners_on_wave else NodeState.WAITING
            )
            assert self.states[node] == expected


def label_wave(
    graph: SyncGraph, wave: Wave, executed: Set[SyncNode]
) -> StateSnapshot:
    """Label every rendezvous node for the given wave position."""
    on_wave = set(wave.real_nodes())
    states: Dict[SyncNode, str] = {}
    for node in graph.rendezvous_nodes:
        if node in on_wave:
            ready = any(
                other in on_wave for other in graph.sync_neighbors(node)
            )
            states[node] = NodeState.READY if ready else NodeState.WAITING
        elif node in executed:
            states[node] = NodeState.EXECUTED
        else:
            states[node] = NodeState.NOT_SEEN
    return StateSnapshot(wave=wave, states=states)


def trace_states(
    graph: SyncGraph, witness: AnomalyWitness
) -> List[StateSnapshot]:
    """State snapshots along a witness schedule (one per wave).

    The final snapshot has every wave node WAITING — the anomalous
    state the witness demonstrates.
    """
    executed: Set[SyncNode] = set()
    snapshots: List[StateSnapshot] = []
    for step, wave in enumerate(witness.waves):
        snapshots.append(label_wave(graph, wave, executed))
        if step < len(witness.schedule):
            r, s = witness.schedule[step]
            executed.add(r)
            executed.add(s)
    return snapshots

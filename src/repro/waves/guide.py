"""Admissible future-cost guidance for exact witness search.

Blind BFS over the wave space (:mod:`repro.waves.engine`) spends its
state budget uniformly in every direction, even though the refined
static analysis has already named *which* rendezvous nodes could head a
deadlock cycle.  This module precomputes the wave-space analogue of a
decoder's future-cost table ``FCT[i, j]``: for every task position, the
shortest control distance (in rendezvous steps the task itself must
take) to each candidate anomaly head flagged by the refined analysis.
A\\*/beam kernels then order expansion by ``g + h`` so the search walks
toward the flagged heads first.

Admissibility argument (the heuristic never overestimates)
----------------------------------------------------------

Let ``W`` be any reachable deadlock wave and ``D`` its deadlock set.
The refined algorithm is conservative: if no head hypothesis produced
evidence, no deadlock wave is reachable at all; otherwise every member
``h`` of ``D`` that yields evidence has a component ``C(h) ⊇ D``
(constraint-1 cycles survive their own head's pruning).  Fix one such
``h`` — then in ``W``:

* the task of ``h`` is positioned exactly *at* ``h`` (deadlock-set
  members are wave entries), and
* at least one *other* task is positioned at a node of ``C(h)``
  belonging to its own task (``|D| >= 2`` and ``D ⊆ C(h)``).

A task whose current position is ``p`` needs at least ``dist(p, v)``
control steps to stand at ``v`` (every control step of a task fires one
rendezvous the task participates in), so any schedule from the current
wave to ``W`` fires at least

    ``bound(h) = max(dist(pos_head, h), min_t dist(pos_t, C(h) ∩ t))``

rendezvous.  The heuristic takes the **minimum of bound(h) over every
evidence group** — a lower bound on the distance to the *nearest*
deadlock wave.

The second ingredient charges for *quiescence*.  In any anomalous wave
— deadlock or stall — **every** task's entry is non-ready.  A task can
only be non-ready at ``e`` or at a rendezvous that can actually block.
The table statically certifies some rendezvous as *always-ready* by a
lockstep-prefix argument: if tasks ``t`` and ``u`` both have
straight-line bodies whose leading rendezvous partner each other
exclusively, one-to-one and in matching order, then whenever ``t``
stands at the ``i``-th prefix node, ``u`` provably stands at its
``i``-th — the pair is ready, so those nodes can never be the entry of
an anomalous wave.  Let ``q_t(p)`` be the control distance from ``p``
to the nearest *non-certified* position of ``t`` (including ``e``).
One rendezvous advances exactly two tasks one control step each, so
any schedule to any anomalous wave fires at least

    ``Q = max(max_t q_t, ceil((sum_t q_t) / 2))``

rendezvous.  The deadlock estimate is ``max(min_h bound(h), Q)`` and
the stall/any estimate is ``Q`` alone; the max of admissible lower
bounds is admissible.  Every ingredient is also *consistent*: one unit
of path cost moves two tasks one control step, dropping each per-task
distance by at most 1, hence each ``bound(h)``, ``max_t q_t`` and
``ceil(sum/2)`` by at most 1.  A\\* with a consistent heuristic pops
every state with its optimal ``g``, so the first matching anomalous
wave popped yields a *shortest* witness, exactly like BFS.

States from which no evidence group is reachable get a large **finite**
cost (:data:`SATURATED`): they are explored last but never pruned, so a
complete guided run still enumerates the same reachable wave set as
BFS and the verdict can never change — guidance only reorders which
states are expanded first.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..syncgraph.model import SyncGraph, SyncNode

if TYPE_CHECKING:  # pragma: no cover - cycle guard (engine -> guide)
    from ..analysis.results import DeadlockReport
    from .engine import WaveIndex

__all__ = [
    "DEFAULT_BEAM_WIDTH",
    "SATURATED",
    "STRATEGIES",
    "FutureCostTable",
    "build_guide",
    "guide_for",
    "validate_strategy",
]

# Search-order selector shared by explore/exact_deadlock/exact_anomaly/
# find_anomaly_witness/confirm/analyze/CLI: "bfs" is the blind
# breadth-first baseline, "astar" best-first on g + FCT, "beam" layered
# best-first with a bounded frontier.
STRATEGIES = ("bfs", "astar", "beam")

DEFAULT_BEAM_WIDTH = 1024

# Per-task distance for "this task can never reach a flagged head from
# here", and the heuristic value when that holds for every evidence
# group.  Large enough to sort dead-end states behind every live one,
# finite so they are still expanded (never pruned): completeness — and
# therefore verdict parity with BFS — does not depend on the refined
# evidence being exhaustive.
SATURATED = 1 << 30

# One evidence group, precompiled against a WaveIndex:
# (head_shift, head_mask, head_dists, ((shift, mask, dists), ...))
# where dists are per-local-position distance tuples.
_Group = Tuple[int, int, Tuple[int, ...], Tuple[Tuple[int, int, Tuple[int, ...]], ...]]


def validate_strategy(
    strategy: str,
    beam_width: Optional[int],
    backend: str = "index",
) -> int:
    """Validate the (strategy, beam_width, backend) combination.

    Returns the effective beam width (:data:`DEFAULT_BEAM_WIDTH` when
    unset).  Raises ``ValueError`` on an unknown strategy, a
    ``beam_width`` without ``strategy="beam"``, a non-positive width,
    or a guided strategy on the reference backend (the guided kernels
    live in the packed-int engine only).
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose one of {STRATEGIES}"
        )
    if beam_width is not None:
        if strategy != "beam":
            raise ValueError(
                f"beam_width only applies to strategy='beam' "
                f"(got strategy={strategy!r})"
            )
        if beam_width < 1:
            raise ValueError(
                f"beam_width must be a positive integer (got {beam_width})"
            )
    if strategy != "bfs" and backend != "index":
        raise ValueError(
            f"strategy {strategy!r} requires backend='index'; the "
            "reference oracle only runs blind BFS"
        )
    return beam_width if beam_width is not None else DEFAULT_BEAM_WIDTH


def _task_distances(
    graph: SyncGraph,
    task: str,
    positions: Sequence[SyncNode],
    targets: Sequence[SyncNode],
) -> Tuple[int, ...]:
    """Shortest control distance from each of ``task``'s wave positions
    to the nearest node of ``targets`` (``SATURATED`` when unreachable).

    Distances count control edges, i.e. rendezvous the task itself must
    fire to stand at the target; reverse BFS from the target set.
    """
    local = {node: idx for idx, node in enumerate(positions)}
    preds: List[List[int]] = [[] for _ in positions]
    for node, idx in local.items():
        if not node.is_rendezvous:
            continue
        for succ in graph.control_successors(node):
            j = local.get(succ)
            if j is not None:
                preds[j].append(idx)
    dist = [SATURATED] * len(positions)
    queue: deque = deque()
    for target in targets:
        idx = local.get(target)
        if idx is not None and dist[idx] != 0:
            dist[idx] = 0
            queue.append(idx)
    while queue:
        cur = queue.popleft()
        d = dist[cur] + 1
        for prev in preds[cur]:
            if d < dist[prev]:
                dist[prev] = d
                queue.append(prev)
    return tuple(dist)


class FutureCostTable:
    """Precomputed admissible future costs over one :class:`WaveIndex`.

    Built from the candidate anomaly heads of a
    :class:`~repro.analysis.results.DeadlockReport` (normally the
    refined analysis of the engine's own graph — see
    :func:`build_guide`).  ``estimate(key)`` lower-bounds the number of
    rendezvous any schedule needs before the packed wave ``key`` can
    reach a deadlock wave; see the module docstring for the argument.
    """

    def __init__(
        self,
        engine: "WaveIndex",
        report: Optional["DeadlockReport"] = None,
    ) -> None:
        self.engine = engine
        graph = engine.graph
        if report is None:
            report = _refined_report(graph)
        self.report = report

        # Per-task position universes, read straight off the engine's
        # slot tables so local ids line up with its shift/mask fields
        # by construction.
        self._task_positions = [
            engine.node_of_slot[
                engine.slot_base[i]:
                engine.slot_base[i + 1]
                if i + 1 < engine.task_count
                else engine.slot_count
            ]
            for i in range(engine.task_count)
        ]
        self._task_idx = {t: i for i, t in enumerate(graph.tasks)}

        groups: List[_Group] = []
        seen: set = set()
        for ev in report.evidence:
            members = tuple(
                sorted(
                    (n for n in ev.component if n.is_rendezvous),
                    key=lambda n: n.uid,
                )
            )
            head = ev.head
            sig = (head.uid if head is not None else None, members)
            if sig in seen or not members:
                continue
            seen.add(sig)
            by_task: Dict[str, List[SyncNode]] = {}
            for node in members:
                by_task.setdefault(node.task, []).append(node)
            if len(by_task) < 2:
                continue  # a one-task component cannot deadlock a wave
            if head is None:
                # Headless evidence (e.g. the naive detector): the cycle
                # could be headed by any involved task, so emit one
                # group per task acting as head-at-any-of-its-targets —
                # the resulting min over groups is the second-smallest
                # per-task distance, which is the admissible bound for
                # "some >=2 tasks of the component stand at targets".
                for head_task, head_nodes in by_task.items():
                    groups.append(
                        self._compile_group(head_task, head_nodes, by_task)
                    )
            else:
                groups.append(
                    self._compile_group(head.task, [head], by_task)
                )
        self._groups: Tuple[_Group, ...] = tuple(groups)

        # Quiescence distances: per task, the control distance to the
        # nearest position that is not certified always-ready (the
        # positions an anomalous wave could actually hold the task at).
        safe = _always_ready_nodes(graph)
        quiet = []
        for i, task in enumerate(graph.tasks):
            positions = self._task_positions[i]
            targets = [
                n for n in positions
                if not (n.is_rendezvous and n in safe)
            ]
            quiet.append(
                (
                    engine.shift[i],
                    engine.mask[i],
                    _task_distances(graph, task, positions, targets),
                )
            )
        self._quiet = tuple(quiet)

        if obs.is_enabled():
            obs.counter("guide.fct_builds").inc()
            obs.gauge("guide.groups").set(len(self._groups))

    def _compile_group(
        self,
        head_task: str,
        head_nodes: Sequence[SyncNode],
        by_task: Dict[str, List[SyncNode]],
    ) -> _Group:
        engine = self.engine
        graph = engine.graph
        hi = self._task_idx[head_task]
        head_dists = _task_distances(
            graph, head_task, self._task_positions[hi], head_nodes
        )
        others = []
        for task, nodes in sorted(by_task.items()):
            if task == head_task:
                continue
            ti = self._task_idx[task]
            others.append(
                (
                    engine.shift[ti],
                    engine.mask[ti],
                    _task_distances(
                        graph, task, self._task_positions[ti], nodes
                    ),
                )
            )
        return (engine.shift[hi], engine.mask[hi], head_dists, tuple(others))

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def _group_bound(self, key: int) -> int:
        """min over evidence groups of max(head distance, nearest
        other-member distance) — the cycle-formation term."""
        best = SATURATED
        for head_shift, head_mask, head_dists, others in self._groups:
            d_head = head_dists[(key >> head_shift) & head_mask]
            if d_head >= best:
                continue
            d_other = SATURATED
            for shift, mask, dists in others:
                d = dists[(key >> shift) & mask]
                if d < d_other:
                    d_other = d
                    if d == 0:
                        break
            bound = d_head if d_head > d_other else d_other
            if bound < best:
                best = bound
                if best == 0:
                    return 0
        return best

    def _quiescence(self, key: int) -> int:
        """max(max_t q_t, ceil(sum_t q_t / 2)) — every task must reach
        a position where it can actually be non-ready."""
        total = 0
        mx = 0
        for shift, mask, dists in self._quiet:
            d = dists[(key >> shift) & mask]
            if d >= SATURATED:
                return SATURATED
            total += d
            if d > mx:
                mx = d
        half = (total + 1) >> 1
        return mx if mx > half else half

    def estimate(self, key: int) -> int:
        """Admissible lower bound on rendezvous left before ``key`` can
        reach any deadlock wave (:data:`SATURATED` when provably — per
        the evidence coverage — none is reachable from here)."""
        q = self._quiescence(key)
        g = self._group_bound(key)
        return g if g > q else q

    def estimate_anomaly(self, key: int) -> int:
        """Admissible lower bound on rendezvous left before ``key`` can
        reach *any* anomalous wave (stall or deadlock): the quiescence
        term alone — stalls are not covered by deadlock evidence."""
        return self._quiescence(key)


def _straight_chain(graph: SyncGraph, task: str) -> List[SyncNode]:
    """The task's leading straight-line rendezvous chain.

    Nodes the task *must* traverse in order, each reachable only from
    its predecessor: a unique initial option, then unique control
    successors, with every chain node's control in-degree 1 (so the
    position index always equals the number of rendezvous fired).
    Stops at the first branch, join, loop, or non-rendezvous node.
    """
    options = graph.initial_options(task)
    if len(options) != 1:
        return []
    chain: List[SyncNode] = []
    seen: set = set()
    node = options[0]
    prev: Optional[SyncNode] = None
    while node.is_rendezvous and node not in seen:
        preds = [
            p for p in graph.control_predecessors(node) if p.is_rendezvous
        ]
        if prev is None:
            if preds:
                break  # joinable entry: index no longer forced
        elif set(preds) != {prev}:
            break
        seen.add(node)
        chain.append(node)
        succs = list(dict.fromkeys(graph.control_successors(node)))
        if len(succs) != 1:
            break
        prev = node
        node = succs[0]
    return chain


def _always_ready_nodes(graph: SyncGraph) -> set:
    """Rendezvous certified never to block, by lockstep prefixes.

    For a pair of tasks whose straight-line chains partner each other
    exclusively, one-to-one and in matching order, position ``i`` of
    one implies position ``i`` of the other (each can only advance by
    the shared rendezvous), so both stand ready — those nodes can never
    be the entry of an anomalous wave.  See the module docstring for
    the induction.
    """
    chains = {task: _straight_chain(graph, task) for task in graph.tasks}
    safe: set = set()
    done: set = set()
    for task, chain in chains.items():
        if not chain:
            continue
        partners = graph.sync_neighbors(chain[0])
        if len(set(partners)) != 1:
            continue
        other = partners[0].task
        pair = tuple(sorted((task, other)))
        if other == task or pair in done:
            continue
        done.add(pair)
        for r, s in zip(chain, chains.get(other, [])):
            if (
                set(graph.sync_neighbors(r)) == {s}
                and set(graph.sync_neighbors(s)) == {r}
            ):
                safe.add(r)
                safe.add(s)
            else:
                break
    return safe


def _refined_report(graph: SyncGraph) -> "DeadlockReport":
    """The refined analysis of ``graph`` — the default head source.

    Imported lazily: :mod:`repro.analysis` itself imports the wave
    layer for confirmation, so a module-level import would cycle.
    """
    from ..analysis.refined import refined_deadlock_analysis

    return refined_deadlock_analysis(graph)


def build_guide(
    engine: "WaveIndex",
    report: Optional["DeadlockReport"] = None,
) -> FutureCostTable:
    """The future-cost table guiding searches over ``engine``.

    ``report`` optionally supplies the candidate anomaly heads; when
    omitted the refined analysis runs on ``engine.graph`` itself.  Pass
    a report only if it was computed over the *same* graph the engine
    packs — evidence from a differently-unrolled graph names different
    nodes and would misdirect (though never corrupt: the heuristic
    affects expansion order only).
    """
    return FutureCostTable(engine, report)


def guide_for(engine: "WaveIndex") -> FutureCostTable:
    """The engine's cached guide, built on first use.

    Long-lived engines (the server session keeps one per document, the
    repair verifier one per candidate) pay the refined analysis and the
    distance BFS once; every subsequent guided search reuses the table.
    """
    guide = getattr(engine, "_fct_cache", None)
    if guide is None:
        guide = FutureCostTable(engine)
        engine._fct_cache = guide
    return guide

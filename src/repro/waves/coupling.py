"""Coupling relations between nodes of an execution wave (paper §2).

Node ``r`` is *coupled to* node ``s`` on wave ``W`` if there is a path
from ``s`` forward through at least one control flow edge in ``s``'s
task, then across exactly one sync edge, arriving at ``r`` — i.e. ``r``
may rendezvous with a node that executes after ``s``.  Transitive
coupling chains tasks together; Theorem 1 uses them to show deadlocks
and stalls cover all infinite waits.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..syncgraph.model import SyncGraph, SyncNode
from .wave import Wave

__all__ = ["coupled_to", "coupling_graph", "transitively_coupled_sets"]


def coupled_to(graph: SyncGraph, wave: Wave, r: SyncNode) -> FrozenSet[SyncNode]:
    """Wave nodes ``s`` such that ``r`` is coupled to ``s``.

    ``r`` is coupled to ``s`` iff some strict control descendant of ``s``
    is a sync neighbor of ``r``.
    """
    result: Set[SyncNode] = set()
    partners = set(graph.sync_neighbors(r))
    if not partners:
        return frozenset()
    for s in wave.positions:
        if s is r or not s.is_rendezvous:
            continue
        if partners & set(graph.control_descendants(s, strict=True)):
            result.add(s)
    return frozenset(result)


def coupling_graph(
    graph: SyncGraph, wave: Wave
) -> Dict[SyncNode, FrozenSet[SyncNode]]:
    """The depends-on relation of the wave: ``r -> coupled_to(r)``.

    An edge ``r → s`` means ``r`` can only proceed after ``s``'s task
    executes past ``s``.
    """
    return {
        r: coupled_to(graph, wave, r)
        for r in wave.positions
        if r.is_rendezvous
    }


def transitively_coupled_sets(
    graph: SyncGraph, wave: Wave
) -> List[FrozenSet[SyncNode]]:
    """Cycles of the coupling relation on ``wave``.

    Each returned set is a strongly connected component of the coupling
    graph that contains a cycle — on an anomalous wave, exactly the
    deadlock sets ``D`` of the paper's deadlock-anomaly definition.
    """
    adj = coupling_graph(graph, wave)
    # Tarjan on the tiny per-wave graph; recursion depth is bounded by
    # the number of tasks so plain recursion is safe.
    index: Dict[SyncNode, int] = {}
    lowlink: Dict[SyncNode, int] = {}
    on_stack: Set[SyncNode] = set()
    stack: List[SyncNode] = []
    counter = [0]
    out: List[FrozenSet[SyncNode]] = []

    def strongconnect(node: SyncNode) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for nxt in adj.get(node, ()):  # type: ignore[call-overload]
            if nxt not in index:
                strongconnect(nxt)
                lowlink[node] = min(lowlink[node], lowlink[nxt])
            elif nxt in on_stack:
                lowlink[node] = min(lowlink[node], index[nxt])
        if lowlink[node] == index[node]:
            comp: Set[SyncNode] = set()
            while True:
                member = stack.pop()
                on_stack.discard(member)
                comp.add(member)
                if member is node:
                    break
            if len(comp) > 1 or node in adj.get(node, frozenset()):
                out.append(frozenset(comp))

    for node in adj:
        if node not in index:
            strongconnect(node)
    return out

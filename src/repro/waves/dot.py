"""Graphviz export of the feasible-wave graph.

Renders ``NextWavesSet*`` as a state graph: terminal waves are doubly
circled, anomalous waves are filled red (deadlocks) or orange (stalls),
edges are labelled with the rendezvous that fired.  Intended for small
programs — the wave graph *is* the exponential object the paper avoids
building, which is exactly why pictures of it are instructive.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from ..errors import ExplorationLimitError
from ..syncgraph.model import SyncGraph
from .anomaly import classify_wave, is_anomalous
from .wave import Wave, initial_waves, next_waves_with_events

__all__ = ["wave_graph_to_dot"]


def _short(wave: Wave) -> str:
    parts = []
    for node in wave.positions:
        if node.is_rendezvous:
            t, m, s = node.triple
            parts.append(f"{m}{s}")
        else:
            parts.append("e")
    return "(" + ", ".join(parts) + ")"


def wave_graph_to_dot(
    graph: SyncGraph,
    name: str = "waves",
    state_limit: int = 2_000,
) -> str:
    """Render the reachable wave graph as DOT text.

    Raises :class:`ExplorationLimitError` beyond ``state_limit`` states
    (the export is meant for illustration-sized programs).
    """
    ids: Dict[Wave, int] = {}
    edges: List[Tuple[int, int, str]] = []
    queue: deque[Wave] = deque()

    def intern(wave: Wave) -> int:
        if wave not in ids:
            if len(ids) >= state_limit:
                raise ExplorationLimitError(state_limit)
            ids[wave] = len(ids)
            queue.append(wave)
        return ids[wave]

    initials = set()
    for wave in initial_waves(graph):
        initials.add(intern(wave))
    while queue:
        wave = queue.popleft()
        src = ids[wave]
        for (r, s), nxt in next_waves_with_events(graph, wave):
            label = f"{r.signal.task}.{r.signal.message}"
            edges.append((src, intern(nxt), label))

    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=ellipse];"]
    for wave, idx in ids.items():
        attrs = [f'label="{_short(wave)}"']
        if wave.is_terminal(graph):
            attrs.append("shape=doublecircle")
        elif is_anomalous(graph, wave):
            info = classify_wave(graph, wave)
            color = "indianred" if info.has_deadlock else "orange"
            attrs.append("style=filled")
            attrs.append(f"fillcolor={color}")
        if idx in initials:
            attrs.append("penwidth=2")
        lines.append(f"  w{idx} [{', '.join(attrs)}];")
    seen_edges: Set[Tuple[int, int, str]] = set()
    for src, dst, label in edges:
        if (src, dst, label) in seen_edges:
            continue
        seen_edges.add((src, dst, label))
        lines.append(f'  w{src} -> w{dst} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"

"""Execution waves — the paper's dynamic model (Section 2).

A wave ``W`` assigns each task its *chosen potentially executable* node:
the next rendezvous the task will attempt, or ``e`` once the task can
terminate without further rendezvous.  Program execution is the advance
of the wave: any pair of wave nodes joined by a sync edge may rendezvous
nondeterministically, after which each of the two tasks advances to a
nondeterministically chosen control successor (modelling conditional
branches).

Waves are value objects (hashable tuples) so exhaustive exploration can
memoize them.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Sequence, Tuple

from ..syncgraph.model import SyncGraph, SyncNode

__all__ = ["Wave", "initial_waves", "iter_initial_waves", "next_waves",
           "next_waves_with_events", "ready_pairs"]


@dataclass(frozen=True)
class Wave:
    """An execution wave: one sync-graph node per task, in task order.

    ``positions[i]`` is the node of ``graph.tasks[i]`` — a rendezvous
    node of that task or the shared ``e`` node.  (The paper also allows
    ``b`` before the initial choice; we always materialize the choice,
    so ``b`` never appears in a wave.)
    """

    positions: Tuple[SyncNode, ...]

    def position_of(self, graph: SyncGraph, task: str) -> SyncNode:
        """This task's wave entry.

        Uses the graph's cached task→index map (no linear scan per
        call); an unknown task raises
        :class:`~repro.errors.UnknownTaskError`.
        """
        return self.positions[graph.task_index(task)]

    def replace(self, index: int, node: SyncNode) -> "Wave":
        positions = list(self.positions)
        positions[index] = node
        return Wave(tuple(positions))

    def is_terminal(self, graph: SyncGraph) -> bool:
        """True iff every task has reached ``e`` (successful completion)."""
        return all(p is graph.e for p in self.positions)

    def real_nodes(self) -> Tuple[SyncNode, ...]:
        """Wave entries that are actual rendezvous nodes (not ``e``)."""
        return tuple(p for p in self.positions if p.is_rendezvous)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return "<" + ", ".join(str(p) for p in self.positions) + ">"


def iter_initial_waves(graph: SyncGraph) -> Iterator[Wave]:
    """Lazy ``W_INIT``: the per-task-option cross product, one wave at
    a time.

    The product can be exponentially wide on its own, so exploration
    consumes this stream under its state budget instead of
    materializing the full list first.
    """
    options: List[Sequence[SyncNode]] = []
    for task in graph.tasks:
        opts = graph.initial_options(task)
        if not opts:
            raise ValueError(
                f"task {task!r} has no initial wave options; "
                "sync graph construction is incomplete"
            )
        options.append(opts)
    for combo in product(*options):
        yield Wave(tuple(combo))


def initial_waves(graph: SyncGraph) -> List[Wave]:
    """All initial waves ``W_INIT``.

    For each task, the entry is one of its first-reachable rendezvous
    points (the control successors of ``b`` in that task) or ``e`` when
    the task has a rendezvous-free path.  The nondeterministic choice
    models conditional branching at task entry, so the set of initial
    waves is the cross product of the per-task options.
    """
    return list(iter_initial_waves(graph))


def ready_pairs(graph: SyncGraph, wave: Wave) -> List[Tuple[int, int]]:
    """Index pairs ``(i, j)`` of wave entries that can rendezvous now."""
    pairs: List[Tuple[int, int]] = []
    n = len(wave.positions)
    for i in range(n):
        a = wave.positions[i]
        if not a.is_rendezvous:
            continue
        for j in range(i + 1, n):
            b = wave.positions[j]
            if b.is_rendezvous and graph.has_sync_edge(a, b):
                pairs.append((i, j))
    return pairs


def _advance_options(graph: SyncGraph, node: SyncNode) -> Tuple[SyncNode, ...]:
    """Where a task may go after executing ``node``.

    Control successors of a rendezvous node are its next rendezvous
    points and/or ``e``.  The sync graph guarantees at least one (every
    rendezvous point lies on a path to the task end).
    """
    succs = graph.control_successors(node)
    if not succs:
        raise ValueError(f"rendezvous node {node} has no control successor")
    if len(set(succs)) != len(succs):
        # Hand-built graphs can register the same successor twice;
        # duplicated options would make NextWaves yield the same
        # (event, wave) repeatedly.
        succs = tuple(dict.fromkeys(succs))
    return succs


def next_waves_with_events(
    graph: SyncGraph, wave: Wave
) -> Iterator[Tuple[Tuple[SyncNode, SyncNode], Wave]]:
    """``NextWaves(W)`` annotated with the rendezvous pair that fired.

    Yields ``((r, s), W')`` where ``{r, s}`` is the sync edge executed;
    used by witness extraction to reconstruct concrete schedules.
    Each ``((r, s), W')`` is yielded at most once per call even when
    branch successors coincide.
    """
    for i, j in ready_pairs(graph, wave):
        fired = (wave.positions[i], wave.positions[j])
        for succ_i in _advance_options(graph, wave.positions[i]):
            for succ_j in _advance_options(graph, wave.positions[j]):
                yield fired, wave.replace(i, succ_i).replace(j, succ_j)


def next_waves(graph: SyncGraph, wave: Wave) -> Iterator[Wave]:
    """``NextWaves(W)``: every wave directly derivable from ``wave``.

    One rendezvous fires per step; both participating tasks advance to
    each combination of their control successors.
    """
    for _, nxt in next_waves_with_events(graph, wave):
        yield nxt

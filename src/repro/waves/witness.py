"""Anomaly witnesses: concrete schedules reaching an anomalous wave.

The static algorithms certify or report *possible* deadlocks; a witness
upgrades "possible" to *demonstrated*: a sequence of rendezvous, from
program start, after which no pair of waiting tasks can ever proceed.
Witnesses are found by breadth-first search over the wave space (so the
schedule is shortest) with parent tracking — exponential like all exact
analyses, bounded by a state budget.

Like :mod:`repro.waves.explore`, the search runs on either kernel
(``backend="index"`` packed-int engine, ``backend="reference"``
oracle) with bit-exact witnesses, and is budget-faithful: the state
budget is enforced during seeding, and when it runs out the queue is
still drained — an anomalous wave discovered *before* exhaustion still
yields its witness, so downstream confirmation can answer CONFIRMED
instead of throwing the evidence away.  Only when no discovered wave
matches does a limited search raise
:class:`~repro.errors.ExplorationLimitError`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..errors import ExplorationLimitError
from ..syncgraph.model import SyncGraph, SyncNode
from .anomaly import WaveClassification, classify_wave, is_anomalous
from .engine import BACKENDS, WaveIndex
from .guide import guide_for, validate_strategy
from .wave import Wave, iter_initial_waves, next_waves_with_events

__all__ = [
    "AnomalyWitness",
    "WitnessSearchOutcome",
    "find_anomaly_witness",
    "search_anomaly_witness",
]

Rendezvous = Tuple[SyncNode, SyncNode]


@dataclass(frozen=True)
class AnomalyWitness:
    """A shortest schedule from start to an anomalous wave.

    ``schedule`` lists the rendezvous pairs fired in order; ``initial``
    is the branch-choice starting wave; ``waves`` the full wave
    sequence (``len(schedule) + 1`` entries, ending at the anomalous
    wave); ``classification`` the anomaly analysis of the final wave.
    """

    initial: Wave
    schedule: Tuple[Rendezvous, ...]
    waves: Tuple[Wave, ...]
    classification: WaveClassification

    @property
    def is_deadlock(self) -> bool:
        return self.classification.has_deadlock

    @property
    def is_stall(self) -> bool:
        return self.classification.has_stall

    def describe(self) -> str:
        lines = [f"initial wave: {self.initial}"]
        for step, (r, s) in enumerate(self.schedule, start=1):
            lines.append(f"  step {step}: rendezvous {r}  <->  {s}")
        final = self.classification
        kinds = []
        if final.has_deadlock:
            kinds.append("deadlock")
        if final.has_stall:
            kinds.append("stall")
        lines.append(
            f"stuck wave {final.wave} ({' + '.join(kinds) or 'anomalous'})"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class WitnessSearchOutcome:
    """One witness search, with its search-effort accounting.

    ``states`` counts distinct waves discovered before the search
    stopped — the quantity the state budget gates, and the honest
    guided-vs-BFS comparison metric.  ``limited`` means the budget ran
    out (or, for beam, states were dropped to the width — ``truncated``
    names that cause); a witnessless limited search proves nothing,
    while ``witness is None`` with ``limited=False`` is a refutation of
    the requested anomaly over the whole reachable space.
    """

    witness: Optional[AnomalyWitness]
    states: int
    limited: bool
    truncated: bool
    strategy: str

    @property
    def refuted(self) -> bool:
        return self.witness is None and not self.limited


def find_anomaly_witness(
    graph: SyncGraph,
    kind: str = "deadlock",
    state_limit: int = 200_000,
    backend: str = "index",
    engine: Optional[WaveIndex] = None,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> Optional[AnomalyWitness]:
    """Shortest witness of an anomaly of the requested kind, or None.

    ``kind`` is ``"deadlock"``, ``"stall"`` or ``"any"``.  Returns None
    when no reachable wave exhibits the anomaly (which, for
    ``"deadlock"``, proves deadlock-freedom of the explored space).
    Raises :class:`ExplorationLimitError` only when the state budget is
    exhausted *and* no matching anomaly was discovered first — a
    witness found within budget is returned even if the search could
    not finish.  The contract is strategy-independent: ``"astar"``
    witnesses are shortest like BFS ones (the future-cost table is
    admissible and consistent), ``"beam"`` witnesses are valid but a
    truncated beam forfeits shortest-ness and counts as limited.
    """
    outcome = search_anomaly_witness(
        graph, kind=kind, state_limit=state_limit, backend=backend,
        engine=engine, strategy=strategy, beam_width=beam_width,
    )
    if outcome.witness is not None:
        return outcome.witness
    if outcome.limited:
        raise ExplorationLimitError(state_limit)
    return None


def search_anomaly_witness(
    graph: SyncGraph,
    kind: str = "deadlock",
    state_limit: int = 200_000,
    backend: str = "index",
    engine: Optional[WaveIndex] = None,
    strategy: str = "bfs",
    beam_width: Optional[int] = None,
) -> WitnessSearchOutcome:
    """Like :func:`find_anomaly_witness` but never raises on a limited
    witnessless search: the :class:`WitnessSearchOutcome` carries the
    partial-result facts (states discovered, limited/truncated flags)
    for callers that must grade CONFIRMED/REFUTED/INCONCLUSIVE
    themselves."""
    if kind not in ("deadlock", "stall", "any"):
        raise ValueError(f"unknown anomaly kind {kind!r}")
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose one of {BACKENDS}"
        )
    effective_width = validate_strategy(strategy, beam_width, backend)

    def matches(classification: WaveClassification) -> bool:
        if kind == "deadlock":
            return classification.has_deadlock
        if kind == "stall":
            return classification.has_stall
        return True

    with obs.span(
        "witness.search", kind=kind, state_limit=state_limit,
        backend=backend, strategy=strategy,
    ) as sp:
        truncated = False
        if backend == "index":
            if engine is None:
                engine = WaveIndex(graph)
            if strategy == "bfs":
                data, states, limited = engine.find_witness(
                    matches, state_limit
                )
            else:
                # The deadlock estimate adds the evidence-group term;
                # stall/any goals use the quiescence term alone (both
                # admissible for their goal set — see waves.guide).
                guide = guide_for(engine)
                if kind == "deadlock":
                    estimate = guide.estimate
                else:
                    estimate = guide.estimate_anomaly
                if strategy == "astar":
                    data, states, limited = engine.find_witness_astar(
                        matches, state_limit, estimate
                    )
                else:
                    data, states, limited, truncated = (
                        engine.find_witness_beam(
                            matches, state_limit, estimate, effective_width
                        )
                    )
                    limited = limited or truncated
        else:
            data, states, limited = _find_witness_reference(
                graph, matches, state_limit
            )
        obs.counter("witness.states_visited").inc(states)
        sp.set_attribute("states", states)
        if limited:
            obs.counter("witness.state_limit_hits").inc()
            if data is not None:
                obs.counter("witness.found_past_limit").inc()
    witness = None
    if data is not None:
        initial, schedule, waves, classification = data
        witness = AnomalyWitness(
            initial=initial,
            schedule=schedule,
            waves=waves,
            classification=classification,
        )
    return WitnessSearchOutcome(
        witness=witness,
        states=states,
        limited=limited,
        truncated=truncated,
        strategy=strategy,
    )


def _find_witness_reference(
    graph: SyncGraph,
    matches,
    state_limit: int,
) -> Tuple[
    Optional[Tuple[Wave, Tuple[Rendezvous, ...], Tuple[Wave, ...],
                   WaveClassification]],
    int,
    bool,
]:
    """Oracle BFS kernel (same contract as
    :meth:`WaveIndex.find_witness`)."""
    parents: Dict[Wave, Optional[Tuple[Wave, Rendezvous]]] = {}
    queue: deque = deque()
    limited = False
    for wave in iter_initial_waves(graph):
        if wave in parents:
            continue
        if len(parents) >= state_limit:
            limited = True
            break
        parents[wave] = None
        queue.append(wave)
    while queue:
        wave = queue.popleft()
        if wave.is_terminal(graph):
            continue
        if is_anomalous(graph, wave):
            classification = classify_wave(graph, wave)
            if not matches(classification):
                continue
            schedule: List[Rendezvous] = []
            chain: List[Wave] = [wave]
            cursor = wave
            while True:
                parent = parents[cursor]
                if parent is None:
                    break
                cursor, event = parent
                schedule.append(event)
                chain.append(cursor)
            schedule.reverse()
            chain.reverse()
            return (
                (cursor, tuple(schedule), tuple(chain), classification),
                len(parents),
                limited,
            )
        if limited:
            continue
        for event, nxt in next_waves_with_events(graph, wave):
            if nxt in parents:
                continue
            if len(parents) >= state_limit:
                limited = True
                break
            parents[nxt] = (wave, event)
            queue.append(nxt)
    return None, len(parents), limited

"""Anomaly witnesses: concrete schedules reaching an anomalous wave.

The static algorithms certify or report *possible* deadlocks; a witness
upgrades "possible" to *demonstrated*: a sequence of rendezvous, from
program start, after which no pair of waiting tasks can ever proceed.
Witnesses are found by breadth-first search over the wave space (so the
schedule is shortest) with parent tracking — exponential like all exact
analyses, bounded by a state budget.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..errors import ExplorationLimitError
from ..syncgraph.model import SyncGraph, SyncNode
from .anomaly import WaveClassification, classify_wave, is_anomalous
from .wave import Wave, initial_waves, next_waves_with_events

__all__ = ["AnomalyWitness", "find_anomaly_witness"]

Rendezvous = Tuple[SyncNode, SyncNode]


@dataclass(frozen=True)
class AnomalyWitness:
    """A shortest schedule from start to an anomalous wave.

    ``schedule`` lists the rendezvous pairs fired in order; ``initial``
    is the branch-choice starting wave; ``waves`` the full wave
    sequence (``len(schedule) + 1`` entries, ending at the anomalous
    wave); ``classification`` the anomaly analysis of the final wave.
    """

    initial: Wave
    schedule: Tuple[Rendezvous, ...]
    waves: Tuple[Wave, ...]
    classification: WaveClassification

    @property
    def is_deadlock(self) -> bool:
        return self.classification.has_deadlock

    @property
    def is_stall(self) -> bool:
        return self.classification.has_stall

    def describe(self) -> str:
        lines = [f"initial wave: {self.initial}"]
        for step, (r, s) in enumerate(self.schedule, start=1):
            lines.append(f"  step {step}: rendezvous {r}  <->  {s}")
        final = self.classification
        kinds = []
        if final.has_deadlock:
            kinds.append("deadlock")
        if final.has_stall:
            kinds.append("stall")
        lines.append(
            f"stuck wave {final.wave} ({' + '.join(kinds) or 'anomalous'})"
        )
        return "\n".join(lines)


def find_anomaly_witness(
    graph: SyncGraph,
    kind: str = "deadlock",
    state_limit: int = 200_000,
) -> Optional[AnomalyWitness]:
    """Shortest witness of an anomaly of the requested kind, or None.

    ``kind`` is ``"deadlock"``, ``"stall"`` or ``"any"``.  Returns None
    when no reachable wave exhibits the anomaly (which, for
    ``"deadlock"``, proves deadlock-freedom of the explored space).
    Raises :class:`ExplorationLimitError` past the state budget.
    """
    if kind not in ("deadlock", "stall", "any"):
        raise ValueError(f"unknown anomaly kind {kind!r}")

    parents: Dict[Wave, Optional[Tuple[Wave, Rendezvous]]] = {}
    queue: deque[Wave] = deque()
    for wave in initial_waves(graph):
        if wave not in parents:
            parents[wave] = None
            queue.append(wave)

    def matches(classification: WaveClassification) -> bool:
        if kind == "deadlock":
            return classification.has_deadlock
        if kind == "stall":
            return classification.has_stall
        return True

    with obs.span("witness.search", kind=kind, state_limit=state_limit) as sp:
        try:
            while queue:
                wave = queue.popleft()
                if wave.is_terminal(graph):
                    continue
                if is_anomalous(graph, wave):
                    classification = classify_wave(graph, wave)
                    if not matches(classification):
                        continue
                    schedule: List[Rendezvous] = []
                    chain: List[Wave] = [wave]
                    cursor = wave
                    while True:
                        parent = parents[cursor]
                        if parent is None:
                            break
                        cursor, event = parent
                        schedule.append(event)
                        chain.append(cursor)
                    schedule.reverse()
                    chain.reverse()
                    return AnomalyWitness(
                        initial=cursor,
                        schedule=tuple(schedule),
                        waves=tuple(chain),
                        classification=classification,
                    )
                for event, nxt in next_waves_with_events(graph, wave):
                    if nxt not in parents:
                        if len(parents) >= state_limit:
                            obs.counter("witness.state_limit_hits").inc()
                            raise ExplorationLimitError(state_limit)
                        parents[nxt] = (wave, event)
                        queue.append(nxt)
            return None
        finally:
            obs.counter("witness.states_visited").inc(len(parents))
            sp.set_attribute("states", len(parents))

"""E7 — Theorems 2 and 3 (Figures 6-8): the NP-hardness constructions.

For random 3-CNF formulas the constructed program/graph has a
constrained deadlock cycle iff DPLL finds the formula satisfiable; the
construction itself is polynomial-size while the cycle *check* is the
exponential part — exactly the paper's argument.
"""

from __future__ import annotations

import pytest

from _util import bench_once, print_table
from repro.lang.ast_nodes import statement_count
from repro.reductions.cnf import random_cnf
from repro.reductions.dpll import is_satisfiable
from repro.reductions.theorem2 import (
    build_theorem2_program,
    find_unsequenceable_cycle,
)
from repro.reductions.theorem3 import (
    build_theorem3_graph,
    find_constraint2_cycle,
)


@pytest.mark.parametrize("clauses", [2, 4, 6])
def test_theorem2_construction_time(clauses, benchmark):
    formula = random_cnf(4, clauses, seed=clauses)
    instance = benchmark(build_theorem2_program, formula)
    assert len(instance.program.tasks) >= 3 * clauses


@pytest.mark.parametrize("clauses", [2, 4, 6])
def test_theorem2_check_agrees_with_dpll(clauses, benchmark):
    formula = random_cnf(4, clauses, seed=100 + clauses)
    instance = build_theorem2_program(formula)
    cycle = benchmark(find_unsequenceable_cycle, instance)
    assert (cycle is not None) == is_satisfiable(formula)


@pytest.mark.parametrize("clauses", [2, 4, 6])
def test_theorem3_check_agrees_with_dpll(clauses, benchmark):
    formula = random_cnf(4, clauses, seed=200 + clauses)
    instance = build_theorem3_graph(formula)
    cycle = benchmark(find_constraint2_cycle, instance)
    assert (cycle is not None) == is_satisfiable(formula)


def test_agreement_sweep_and_size_table(benchmark):
    def scenario():
        rows = []
        agree = 0
        total = 0
        for clauses in (2, 3, 4, 5):
            sat_count = 0
            for seed in range(6):
                formula = random_cnf(4, clauses, seed=seed)
                sat = is_satisfiable(formula)
                t2 = find_unsequenceable_cycle(
                    build_theorem2_program(formula)
                )
                t3 = find_constraint2_cycle(build_theorem3_graph(formula))
                assert (t2 is not None) == sat
                assert (t3 is not None) == sat
                agree += 1
                total += 1
                sat_count += sat
            instance = build_theorem2_program(random_cnf(4, clauses, seed=0))
            rows.append(
                (
                    clauses,
                    sat_count,
                    len(instance.program.tasks),
                    statement_count(instance.program),
                    3 ** clauses,
                )
            )
        print_table(
            "E7: reductions vs DPLL (6 random formulas per size)",
            [
                "clauses",
                "satisfiable",
                "thm2 tasks",
                "thm2 stmts",
                "head choices (3^m)",
            ],
            rows,
        )
        assert agree == total

    bench_once(benchmark, scenario)
def test_construction_size_is_polynomial(benchmark):
    def scenario():
        sizes = []
        for clauses in (2, 4, 8):
            formula = random_cnf(6, clauses, seed=1)
            instance = build_theorem2_program(formula)
            sizes.append(statement_count(instance.program))
        # linear in the number of clauses: doubling clauses roughly doubles
        # statements (never quadruples)
        assert sizes[1] < sizes[0] * 3
        assert sizes[2] < sizes[1] * 3

    bench_once(benchmark, scenario)
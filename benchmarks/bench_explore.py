"""Indexed wave engine vs the reference exact-exploration oracle.

Runs ``explore`` with ``backend="index"`` and ``backend="reference"``
over two scaling families with genuinely exponential wave spaces —
dining philosophers (deadlocking) and barrier synchronization
(deadlock-free) — plus the bundled paper corpus, asserting bit-exact
parity everywhere: same ``visited_count``, ``can_terminate``, anomaly
classifications in the same order, and identical witness schedules.
The shape to reproduce: the packed-integer engine wins at every size,
by at least 3x at the largest size of each family (dedup over ints,
O(1) terminal checks, and precomputed successor deltas replace Wave
allocation + tuple hashing in the innermost loop of the search).

A second comparison pits guided witness search (``strategy="astar"`` /
``"beam"``, driven by the admissible future-cost table of
``repro.waves.guide``) against blind BFS on the corridor family:
guided search must return the same shortest witness while expanding
strictly fewer states at every size, and at some size the gap must
flip a verdict — under the budget A* needs, BFS comes back
exploration-limited.  Headline numbers land in ``BENCH_explore.json``.

Setting ``REPRO_PERF_SMOKE=1`` (the CI perf-smoke job) shrinks the
families so the whole run stays under a minute on shared runners; the
3x floor is only asserted at full size, but "indexed never slower"
holds in both modes.
"""

from __future__ import annotations

import os
import time

from _util import print_table, write_bench_json
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from repro.waves.engine import WaveIndex
from repro.waves.explore import explore
from repro.waves.guide import guide_for
from repro.waves.witness import find_anomaly_witness, search_anomaly_witness
from repro.workloads.corpus import paper_corpus
from repro.workloads.patterns import barrier, corridor, dining_philosophers

SMOKE = os.environ.get("REPRO_PERF_SMOKE") == "1"
DINING_SIZES = (3, 4) if SMOKE else (3, 4, 5, 6)
BARRIER_SIZES = (4, 6) if SMOKE else (4, 6, 8, 10)
# Guided-vs-BFS witness-search family: a deep deadlock corridor buried
# in (depth, chatter) lockstep interleavings — the state space grows
# like depth^chatter while the A* corridor walk stays linear.
CORRIDOR_SIZES = ((4, 2), (5, 3)) if SMOKE else ((4, 2), (6, 4), (8, 5))
BEAM_WIDTH = 64
STATE_LIMIT = 1_000_000
ROUNDS = 3  # timing repetitions; best-of to shed scheduler noise
SPEEDUP_FLOOR = 3.0  # acceptance: indexed >= 3x at the largest size


def _graph(program):
    transformed, _ = remove_loops(program)
    return build_sync_graph(transformed)


def _families():
    for n in DINING_SIZES:
        yield ("dining", n, _graph(dining_philosophers(n, True)))
    for n in BARRIER_SIZES:
        yield ("barrier", n, _graph(barrier(n)))


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _fingerprint(result):
    return (
        result.visited_count,
        result.can_terminate,
        result.limited,
        [(c.wave, c.stalls, c.deadlocks) for c in result.anomalous],
    )


def test_explore_engine_speedup(benchmark):
    rows = []
    results = []
    for family, size, graph in _families():

        def run_index():
            # Engine construction is charged to the index side: the
            # comparison is end-to-end per exploration.
            return explore(graph, STATE_LIMIT, backend="index")

        def run_reference():
            return explore(graph, STATE_LIMIT, backend="reference")

        index_s, index_result = _best_of(run_index)
        ref_s, ref_result = _best_of(run_reference)

        assert _fingerprint(index_result) == _fingerprint(ref_result)
        assert index_result.exhaustive
        assert index_result.has_deadlock == (family == "dining")

        speedup = ref_s / index_s
        rows.append(
            (
                f"{family}({size})",
                index_result.visited_count,
                f"{index_s * 1e3:.2f}",
                f"{ref_s * 1e3:.2f}",
                f"{speedup:.2f}x",
            )
        )
        results.append(
            {
                "family": family,
                "size": size,
                "feasible_waves": index_result.visited_count,
                "index_s": round(index_s, 6),
                "reference_s": round(ref_s, 6),
                "speedup": round(speedup, 3),
            }
        )

    print_table(
        "Exact exploration: indexed wave engine vs reference oracle",
        ["case", "waves", "index ms", "reference ms", "speedup"],
        rows,
    )

    # The indexed engine must never lose; at the largest size of each
    # family it must clear the acceptance floor.
    for entry in results:
        assert entry["speedup"] >= 1.0, entry
    if not SMOKE:
        for family, sizes in (
            ("dining", DINING_SIZES),
            ("barrier", BARRIER_SIZES),
        ):
            largest = next(
                e
                for e in results
                if e["family"] == family and e["size"] == max(sizes)
            )
            assert largest["speedup"] >= SPEEDUP_FLOOR, largest

    # Witness parity on the deadlocking family: identical shortest
    # schedules from both kernels.
    for n in DINING_SIZES:
        graph = _graph(dining_philosophers(n, True))
        index_w = find_anomaly_witness(
            graph, kind="deadlock", state_limit=STATE_LIMIT,
            backend="index",
        )
        ref_w = find_anomaly_witness(
            graph, kind="deadlock", state_limit=STATE_LIMIT,
            backend="reference",
        )
        assert index_w is not None and ref_w is not None
        assert index_w.schedule == ref_w.schedule
        assert index_w.waves == ref_w.waves

    # Corpus sweep: bit-exact exploration on every bundled paper
    # program.
    corpus_cases = 0
    for entry in paper_corpus().values():
        graph = _graph(entry.program)
        index_result = explore(graph, STATE_LIMIT, backend="index")
        ref_result = explore(graph, STATE_LIMIT, backend="reference")
        assert _fingerprint(index_result) == _fingerprint(ref_result), (
            entry.name
        )
        corpus_cases += 1

    # Guided witness search vs blind BFS on the corridor family: the
    # future-cost table walks straight down the deadlock corridor, so
    # A* must find the same-length shortest witness while expanding
    # strictly fewer states at every size — and at some size the gap
    # must flip a verdict: under the budget A* needs, BFS comes back
    # exploration-limited with nothing.
    guided_rows = []
    guided_results = []
    for depth, chatter in CORRIDOR_SIZES:
        graph = _graph(corridor(depth, chatter))
        engine = WaveIndex(graph)
        guide_for(engine)  # charge the table build once, like a
        # long-lived caller (server session / repair verifier) would

        def run(strategy, width=None, limit=STATE_LIMIT):
            return search_anomaly_witness(
                graph, kind="deadlock", state_limit=limit, engine=engine,
                strategy=strategy, beam_width=width,
            )

        bfs_s, bfs_o = _best_of(lambda: run("bfs"))
        astar_s, astar_o = _best_of(lambda: run("astar"))
        beam_s, beam_o = _best_of(lambda: run("beam", BEAM_WIDTH))

        for outcome in (bfs_o, astar_o, beam_o):
            assert outcome.witness is not None, (depth, chatter)
            assert outcome.witness.is_deadlock
        # Consistent heuristic: the A* witness is shortest, like BFS.
        assert len(astar_o.witness.schedule) == len(bfs_o.witness.schedule)
        # The perf claim proper: A* expands strictly fewer states at
        # every size; beam never more (at small sizes an un-truncated
        # beam degenerates to the full space, tying BFS).
        assert astar_o.states < bfs_o.states, (depth, chatter)
        assert beam_o.states <= bfs_o.states, (depth, chatter)

        # Verdict flip under a fixed budget: give BFS exactly the
        # budget A* needed.  A* still confirms (witness in hand before
        # exhaustion); BFS is exploration-limited with no witness.
        budget = astar_o.states
        astar_budgeted = run("astar", limit=budget)
        bfs_budgeted = run("bfs", limit=budget)
        budget_flip = (
            astar_budgeted.witness is not None
            and bfs_budgeted.witness is None
            and bfs_budgeted.limited
        )

        guided_rows.append(
            (
                f"corridor({depth}x{chatter})",
                len(bfs_o.witness.schedule),
                bfs_o.states,
                astar_o.states,
                beam_o.states,
                f"{bfs_o.states / astar_o.states:.1f}x",
                "yes" if budget_flip else "no",
            )
        )
        guided_results.append(
            {
                "family": "corridor",
                "depth": depth,
                "chatter": chatter,
                "witness_len": len(bfs_o.witness.schedule),
                "bfs_states": bfs_o.states,
                "astar_states": astar_o.states,
                "beam_states": beam_o.states,
                "beam_width": BEAM_WIDTH,
                "bfs_s": round(bfs_s, 6),
                "astar_s": round(astar_s, 6),
                "beam_s": round(beam_s, 6),
                "state_reduction": round(bfs_o.states / astar_o.states, 2),
                "budget": budget,
                "budget_flip": budget_flip,
            }
        )

    print_table(
        "Witness search: guided (A*/beam) vs blind BFS on corridor",
        ["case", "witness", "bfs", "astar", "beam", "reduction", "flip"],
        guided_rows,
    )
    # Acceptance: some size flips CONFIRMED-vs-limited under one budget.
    assert any(e["budget_flip"] for e in guided_results), guided_results

    def timed_scenario():
        # One representative case under pytest-benchmark so the run
        # shows up in --benchmark-only output (engine prebuilt once,
        # as a long-lived caller would hold it).
        graph = _graph(dining_philosophers(DINING_SIZES[-1], True))
        engine = WaveIndex(graph)
        return explore(graph, STATE_LIMIT, backend="index", engine=engine)

    benchmark.pedantic(timed_scenario, rounds=1, iterations=1)

    write_bench_json(
        "BENCH_explore.json",
        {
            "smoke": SMOKE,
            "rounds_best_of": ROUNDS,
            "speedup_floor": SPEEDUP_FLOOR,
            "state_limit": STATE_LIMIT,
            "corpus_cases_checked": corpus_cases,
            "cases": results,
            "beam_width": BEAM_WIDTH,
            "guided_cases": guided_results,
        },
    )

"""Indexed wave engine vs the reference exact-exploration oracle.

Runs ``explore`` with ``backend="index"`` and ``backend="reference"``
over two scaling families with genuinely exponential wave spaces —
dining philosophers (deadlocking) and barrier synchronization
(deadlock-free) — plus the bundled paper corpus, asserting bit-exact
parity everywhere: same ``visited_count``, ``can_terminate``, anomaly
classifications in the same order, and identical witness schedules.
The shape to reproduce: the packed-integer engine wins at every size,
by at least 3x at the largest size of each family (dedup over ints,
O(1) terminal checks, and precomputed successor deltas replace Wave
allocation + tuple hashing in the innermost loop of the search).
Headline numbers land in ``BENCH_explore.json``.

Setting ``REPRO_PERF_SMOKE=1`` (the CI perf-smoke job) shrinks the
families so the whole run stays under a minute on shared runners; the
3x floor is only asserted at full size, but "indexed never slower"
holds in both modes.
"""

from __future__ import annotations

import os
import time

from _util import print_table, write_bench_json
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from repro.waves.engine import WaveIndex
from repro.waves.explore import explore
from repro.waves.witness import find_anomaly_witness
from repro.workloads.corpus import paper_corpus
from repro.workloads.patterns import barrier, dining_philosophers

SMOKE = os.environ.get("REPRO_PERF_SMOKE") == "1"
DINING_SIZES = (3, 4) if SMOKE else (3, 4, 5, 6)
BARRIER_SIZES = (4, 6) if SMOKE else (4, 6, 8, 10)
STATE_LIMIT = 1_000_000
ROUNDS = 3  # timing repetitions; best-of to shed scheduler noise
SPEEDUP_FLOOR = 3.0  # acceptance: indexed >= 3x at the largest size


def _graph(program):
    transformed, _ = remove_loops(program)
    return build_sync_graph(transformed)


def _families():
    for n in DINING_SIZES:
        yield ("dining", n, _graph(dining_philosophers(n, True)))
    for n in BARRIER_SIZES:
        yield ("barrier", n, _graph(barrier(n)))


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _fingerprint(result):
    return (
        result.visited_count,
        result.can_terminate,
        result.limited,
        [(c.wave, c.stalls, c.deadlocks) for c in result.anomalous],
    )


def test_explore_engine_speedup(benchmark):
    rows = []
    results = []
    for family, size, graph in _families():

        def run_index():
            # Engine construction is charged to the index side: the
            # comparison is end-to-end per exploration.
            return explore(graph, STATE_LIMIT, backend="index")

        def run_reference():
            return explore(graph, STATE_LIMIT, backend="reference")

        index_s, index_result = _best_of(run_index)
        ref_s, ref_result = _best_of(run_reference)

        assert _fingerprint(index_result) == _fingerprint(ref_result)
        assert index_result.exhaustive
        assert index_result.has_deadlock == (family == "dining")

        speedup = ref_s / index_s
        rows.append(
            (
                f"{family}({size})",
                index_result.visited_count,
                f"{index_s * 1e3:.2f}",
                f"{ref_s * 1e3:.2f}",
                f"{speedup:.2f}x",
            )
        )
        results.append(
            {
                "family": family,
                "size": size,
                "feasible_waves": index_result.visited_count,
                "index_s": round(index_s, 6),
                "reference_s": round(ref_s, 6),
                "speedup": round(speedup, 3),
            }
        )

    print_table(
        "Exact exploration: indexed wave engine vs reference oracle",
        ["case", "waves", "index ms", "reference ms", "speedup"],
        rows,
    )

    # The indexed engine must never lose; at the largest size of each
    # family it must clear the acceptance floor.
    for entry in results:
        assert entry["speedup"] >= 1.0, entry
    if not SMOKE:
        for family, sizes in (
            ("dining", DINING_SIZES),
            ("barrier", BARRIER_SIZES),
        ):
            largest = next(
                e
                for e in results
                if e["family"] == family and e["size"] == max(sizes)
            )
            assert largest["speedup"] >= SPEEDUP_FLOOR, largest

    # Witness parity on the deadlocking family: identical shortest
    # schedules from both kernels.
    for n in DINING_SIZES:
        graph = _graph(dining_philosophers(n, True))
        index_w = find_anomaly_witness(
            graph, kind="deadlock", state_limit=STATE_LIMIT,
            backend="index",
        )
        ref_w = find_anomaly_witness(
            graph, kind="deadlock", state_limit=STATE_LIMIT,
            backend="reference",
        )
        assert index_w is not None and ref_w is not None
        assert index_w.schedule == ref_w.schedule
        assert index_w.waves == ref_w.waves

    # Corpus sweep: bit-exact exploration on every bundled paper
    # program.
    corpus_cases = 0
    for entry in paper_corpus().values():
        graph = _graph(entry.program)
        index_result = explore(graph, STATE_LIMIT, backend="index")
        ref_result = explore(graph, STATE_LIMIT, backend="reference")
        assert _fingerprint(index_result) == _fingerprint(ref_result), (
            entry.name
        )
        corpus_cases += 1

    def timed_scenario():
        # One representative case under pytest-benchmark so the run
        # shows up in --benchmark-only output (engine prebuilt once,
        # as a long-lived caller would hold it).
        graph = _graph(dining_philosophers(DINING_SIZES[-1], True))
        engine = WaveIndex(graph)
        return explore(graph, STATE_LIMIT, backend="index", engine=engine)

    benchmark.pedantic(timed_scenario, rounds=1, iterations=1)

    write_bench_json(
        "BENCH_explore.json",
        {
            "smoke": SMOKE,
            "rounds_best_of": ROUNDS,
            "speedup_floor": SPEEDUP_FLOOR,
            "state_limit": STATE_LIMIT,
            "corpus_cases_checked": corpus_cases,
            "cases": results,
        },
    )

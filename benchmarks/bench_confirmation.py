"""Practical layer — bounded confirmation of possible-deadlock reports.

Measures the cost and outcome distribution of escalating the refined
algorithm's alarms to a bounded exact search: real deadlocks get
concrete witnesses, false alarms get refuted, and the combination
yields an end-to-end pipeline that is exact whenever the wave space
fits the budget and conservative otherwise.
"""

from __future__ import annotations

import pytest

from _util import bench_once, print_table
from repro.analysis.confirm import (
    ConfirmationOutcome,
    confirm_deadlock_report,
)
from repro.analysis.refined import refined_deadlock_analysis
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from repro.workloads.patterns import (
    barrier,
    client_server,
    crossed_pair,
    dining_philosophers,
)
from repro.workloads.random_programs import (
    RandomProgramConfig,
    random_program,
)


def _corpus():
    programs = [
        crossed_pair(),
        dining_philosophers(3, True),
        dining_philosophers(3, False),
        client_server(2, 1, shared_reply=True),
        barrier(3, 1),
    ]
    cfg = RandomProgramConfig(tasks=3, statements_per_task=3, branch_prob=0.2)
    for seed in range(20):
        program, _ = remove_loops(random_program(cfg, seed=seed))
        programs.append(program)
    return [(p, build_sync_graph(p)) for p in programs]


@pytest.fixture(scope="module")
def corpus():
    return _corpus()


def test_confirmation_cost(corpus, benchmark):
    def run_all():
        outcomes = []
        for _, graph in corpus:
            report = refined_deadlock_analysis(graph)
            outcomes.append(
                confirm_deadlock_report(graph, report, state_limit=50_000)
            )
        return outcomes

    outcomes = benchmark(run_all)
    assert len(outcomes) == len(corpus)


def test_outcome_distribution(corpus, benchmark):
    def scenario():
        tally = {
            ConfirmationOutcome.NOT_NEEDED: 0,
            ConfirmationOutcome.CONFIRMED: 0,
            ConfirmationOutcome.REFUTED: 0,
            ConfirmationOutcome.INCONCLUSIVE: 0,
        }
        witness_lengths = []
        for _, graph in corpus:
            report = refined_deadlock_analysis(graph)
            confirmed = confirm_deadlock_report(
                graph, report, state_limit=50_000
            )
            tally[confirmed.outcome] += 1
            if confirmed.witness is not None:
                witness_lengths.append(len(confirmed.witness.schedule))
        print_table(
            "Confirmation pass over 25 programs",
            ["outcome", "count"],
            sorted(tally.items()),
        )
        # shape: the pass settles every report within this budget
        assert tally[ConfirmationOutcome.INCONCLUSIVE] == 0
        assert tally[ConfirmationOutcome.CONFIRMED] >= 2
        assert tally[ConfirmationOutcome.REFUTED] >= 1
        if witness_lengths:
            assert min(witness_lengths) >= 0

    bench_once(benchmark, scenario)


def test_end_to_end_exactness_within_budget(corpus, benchmark):
    """refined + confirmation == exact, whenever the budget suffices."""
    from repro.waves.explore import explore

    def scenario():
        for _, graph in corpus:
            report = refined_deadlock_analysis(graph)
            confirmed = confirm_deadlock_report(
                graph, report, state_limit=50_000
            )
            exact = explore(graph, state_limit=50_000).has_deadlock
            final_says_deadlock = (
                confirmed.outcome == ConfirmationOutcome.CONFIRMED
            )
            if confirmed.outcome != ConfirmationOutcome.INCONCLUSIVE:
                assert final_says_deadlock == exact

    bench_once(benchmark, scenario)

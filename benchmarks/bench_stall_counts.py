"""E11 — Lemma 3: the O(|N|) stall count check vs the exact oracle.

The count-balance check runs in time linear in program size and agrees
with exhaustive exploration on every unconditional-rendezvous program,
while exploration cost explodes with task count — the practical content
of Section 5.
"""

from __future__ import annotations

import time

import pytest

from _util import bench_once, print_table
from repro.analysis.stalls import lemma3_stall_analysis
from repro.lang.ast_nodes import statement_count
from repro.syncgraph.build import build_sync_graph
from repro.waves.explore import explore
from repro.workloads.patterns import pipeline
from repro.workloads.random_programs import random_serializable_program


@pytest.mark.parametrize("rendezvous", [10, 100, 1000])
def test_count_check_scaling(rendezvous, benchmark):
    program = random_serializable_program(
        tasks=4, rendezvous=rendezvous, seed=1
    )
    report = benchmark(lemma3_stall_analysis, program)
    assert report.stall_free  # balanced by construction


def test_agreement_with_exact_on_serializable_corpus(benchmark):
    def scenario():
        agree = 0
        for seed in range(20):
            program = random_serializable_program(
                tasks=3, rendezvous=5, seed=seed
            )
            lemma = lemma3_stall_analysis(program).stall_free
            exact = not explore(build_sync_graph(program)).has_stall
            # Lemma 3 certification is sound; balanced straight-line
            # programs can never stall
            assert not lemma or exact
            agree += lemma == exact
        assert agree >= 18  # Lemma 3 is near-exact on this family

    bench_once(benchmark, scenario)
def test_linear_vs_exponential_table(benchmark):
    def scenario():
        rows = []
        for stages in (3, 5, 7, 9):
            program = pipeline(stages, 2)
            t0 = time.perf_counter()
            lemma3_stall_analysis(program)
            lemma_ms = (time.perf_counter() - t0) * 1e3
            t0 = time.perf_counter()
            waves = explore(build_sync_graph(program)).visited_count
            exact_ms = (time.perf_counter() - t0) * 1e3
            rows.append(
                (
                    stages,
                    statement_count(program),
                    f"{lemma_ms:.2f}",
                    waves,
                    f"{exact_ms:.2f}",
                )
            )
        print_table(
            "E11: Lemma 3 vs exact stall analysis (pipeline family)",
            ["stages", "stmts", "lemma3 ms", "waves", "exact ms"],
            rows,
        )

    bench_once(benchmark, scenario)
def test_imbalance_detection(benchmark):
    program = random_serializable_program(tasks=4, rendezvous=50, seed=3)
    # break the balance: drop the last statement of the last task
    broken = program.with_tasks(
        list(program.tasks[:-1])
        + [program.tasks[-1].with_body(program.tasks[-1].body[:-1])]
    )
    report = benchmark(lemma3_stall_analysis, broken)
    assert not report.stall_free
    assert len(report.imbalanced) == 1


def test_lemma4_net_vector_scaling(benchmark):
    """The Lemma-4 balance decision stays O(|N|) with conditionals."""
    from repro.analysis.stalls import lemma4_stall_analysis
    from repro.lang.parser import parse_program

    n = 150
    # balanced conditional arms, n of them per task
    a = " ".join(
        f"if ? then send b.m{i}; else send b.m{i}; end if;"
        for i in range(n)
    )
    b = " ".join(
        f"if ? then accept m{i}; else accept m{i}; end if;"
        for i in range(n)
    )
    program = parse_program(
        f"program p; task a is begin {a} end; task b is begin {b} end;"
    )
    report = benchmark(lemma4_stall_analysis, program)
    assert report.stall_free


def test_lemma4_vs_lemma3_coverage(benchmark):
    """Lemma 4 certifies strictly more than Lemma 3 on this corpus."""
    from _util import bench_once
    from repro.analysis.stalls import (
        lemma3_stall_analysis,
        lemma4_stall_analysis,
    )
    from repro.lang.parser import parse_program

    corpus = [
        # lemma3-certifiable
        "program p; task a is begin send b.m; end;"
        "task b is begin accept m; end;",
        # balanced arms: lemma4 only
        "program p; task a is begin if ? then send b.m; else send b.m; "
        "end if; end; task b is begin accept m; end;",
        # static for loops: lemma4 only
        "program p; task a is begin for i in 1 .. 4 loop send b.m; "
        "end loop; end; task b is begin for i in 1 .. 4 loop accept m; "
        "end loop; end;",
        # while loop: neither
        "program p; task a is begin while ? loop send b.m; end loop; end;"
        "task b is begin while ? loop accept m; end loop; end;",
    ]

    def scenario():
        rows = []
        l3_cert = l4_cert = 0
        for i, src in enumerate(corpus):
            program = parse_program(src)
            l3 = lemma3_stall_analysis(program).stall_free
            l4 = lemma4_stall_analysis(program).stall_free
            l3_cert += l3
            l4_cert += l4
            rows.append((i, l3, l4))
        print_table(
            "E11b: Lemma 3 vs Lemma 4 net-vector coverage",
            ["program", "lemma3 certifies", "lemma4 certifies"],
            rows,
        )
        assert l4_cert > l3_cert  # strictly wider coverage
        # lemma4 subsumes lemma3 on this corpus
        for _, l3, l4 in rows:
            assert not l3 or l4

    bench_once(benchmark, scenario)

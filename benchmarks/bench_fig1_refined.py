"""E1 — Figure 1 / Section 4: spurious cycles and their elimination.

The paper: building the CLG for the Figure-1 program finds (at least)
two deadlock cycles, both spurious — one has rendezvousing members, the
other orderable ones.  The refined algorithm eliminates all of them and
certifies the program deadlock-free; exhaustive wave exploration
confirms the certificate.
"""

from __future__ import annotations

import pytest

from _util import attach_metrics, print_pruning_summary, print_table
from repro.analysis.naive import naive_deadlock_analysis
from repro.analysis.refined import refined_deadlock_analysis
from repro.syncgraph.build import build_sync_graph
from repro.syncgraph.clg import build_clg
from repro.waves.explore import explore
from repro.workloads.corpus import paper_corpus


@pytest.fixture(scope="module")
def fig1_graph():
    return build_sync_graph(paper_corpus()["fig1"].program)


def test_fig1_naive_reports_spurious_cycles(fig1_graph, benchmark):
    report = benchmark(naive_deadlock_analysis, fig1_graph)
    assert not report.deadlock_free
    comps = build_clg(fig1_graph).cyclic_components()
    print_table(
        "E1: naive CLG cycles on fig1 (all spurious)",
        ["component", "sync nodes involved"],
        [
            (i, ", ".join(sorted(str(n.sync) for n in comp)))
            for i, comp in enumerate(comps)
        ],
    )
    # at least one cyclic component mixing both rounds
    assert comps


def test_fig1_refined_certifies(fig1_graph, benchmark):
    report = benchmark(refined_deadlock_analysis, fig1_graph)
    assert report.deadlock_free
    # Untimed observed rerun: pruning-effectiveness counters ride along
    # in the saved benchmark JSON so trajectories diff across PRs.
    snapshot = attach_metrics(
        benchmark, lambda: refined_deadlock_analysis(fig1_graph)
    )
    print_pruning_summary("E1: fig1 pruning effectiveness", snapshot)
    print_table(
        "E1: verdicts on fig1",
        ["algorithm", "verdict", "heads examined"],
        [
            ("naive-clg", naive_deadlock_analysis(fig1_graph).verdict, "-"),
            ("refined", report.verdict, report.heads_examined),
        ],
    )


def test_fig1_exact_confirms_certificate(fig1_graph, benchmark):
    result = benchmark(explore, fig1_graph)
    assert not result.has_deadlock
    assert result.can_terminate

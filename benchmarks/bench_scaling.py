"""E8 — §4.2 complexity: polynomial algorithms vs exponential baselines.

Grows a deadlock-free workload family and measures: naive CLG analysis,
the refined algorithm, exhaustive wave exploration, and the Taylor
concurrency-state-graph baseline.  The shape to reproduce: both static
algorithms scale polynomially in CLG size, while the two exact methods'
state counts grow exponentially with the number of tasks (waves) and
faster still for the CSG — the paper's entire motivation.
"""

from __future__ import annotations

import time

import pytest

from _util import bench_once, print_table
from repro.analysis.naive import naive_deadlock_analysis
from repro.analysis.refined import refined_deadlock_analysis
from repro.baselines.taylor_csg import taylor_csg_analysis
from repro.errors import ExplorationLimitError
from repro.syncgraph.build import build_sync_graph
from repro.syncgraph.clg import build_clg
from repro.waves.explore import explore
from repro.workloads.patterns import handshake_chain, pipeline


@pytest.mark.parametrize("stages", [4, 8, 16])
def test_naive_scaling(stages, benchmark):
    graph = build_sync_graph(pipeline(stages, 2))
    report = benchmark(naive_deadlock_analysis, graph)
    assert report.verdict  # runs to completion


@pytest.mark.parametrize("stages", [4, 8, 16])
def test_refined_scaling(stages, benchmark):
    graph = build_sync_graph(pipeline(stages, 2))
    report = benchmark(refined_deadlock_analysis, graph)
    assert report.deadlock_free


@pytest.mark.parametrize("stages", [4, 6, 8])
def test_exact_scaling(stages, benchmark):
    graph = build_sync_graph(pipeline(stages, 2))
    result = benchmark(explore, graph)
    assert not result.has_deadlock


def test_state_explosion_table(benchmark):
    def scenario():
        rows = []
        for n in (2, 3, 4, 5, 6):
            program = handshake_chain(n, rounds=2)
            graph = build_sync_graph(program)
            clg = build_clg(graph)
            t0 = time.perf_counter()
            refined_deadlock_analysis(graph, clg=clg)
            refined_ms = (time.perf_counter() - t0) * 1e3

            t0 = time.perf_counter()
            waves = explore(graph).visited_count
            waves_ms = (time.perf_counter() - t0) * 1e3

            try:
                t0 = time.perf_counter()
                csg = taylor_csg_analysis(program, state_limit=400_000)
                csg_states: object = csg.state_count
                csg_ms: object = round((time.perf_counter() - t0) * 1e3, 1)
            except ExplorationLimitError:
                csg_states, csg_ms = ">400k", "-"
            rows.append(
                (
                    n,
                    clg.node_count,
                    round(refined_ms, 1),
                    waves,
                    round(waves_ms, 1),
                    csg_states,
                    csg_ms,
                )
            )
        print_table(
            "E8: handshake chain, 2 rounds — polynomial vs exponential",
            [
                "tasks",
                "CLG nodes",
                "refined ms",
                "waves",
                "waves ms",
                "CSG states",
                "CSG ms",
            ],
            rows,
        )
        # Shape assertions: wave count and CSG grow strictly; CLG is linear.
        wave_counts = [r[3] for r in rows]
        assert all(b > a for a, b in zip(wave_counts, wave_counts[1:]))
        clg_sizes = [r[1] for r in rows]
        growth = [b - a for a, b in zip(clg_sizes, clg_sizes[1:])]
        assert max(growth) == min(growth)  # exactly linear in tasks

    bench_once(benchmark, scenario)
def test_refined_polynomial_fit(benchmark):
    def scenario():
        """Empirical check of the O(|N_CLG| * (|N_CLG| + |E_CLG|)) bound."""
        points = []
        for stages in (4, 8, 16, 32):
            graph = build_sync_graph(pipeline(stages, 2))
            clg = build_clg(graph)
            bound = clg.node_count * (clg.node_count + clg.edge_count)
            t0 = time.perf_counter()
            refined_deadlock_analysis(graph, clg=clg)
            elapsed = time.perf_counter() - t0
            points.append((bound, elapsed))
        print_table(
            "E8: refined runtime vs theoretical bound",
            ["N*(N+E)", "seconds"],
            [(b, f"{t:.4f}") for b, t in points],
        )
        # time per unit of bound must not grow: polynomial behaviour means
        # the normalized cost stays within a constant factor
        unit_costs = [t / b for b, t in points]
        assert max(unit_costs) < 50 * min(unit_costs)

    bench_once(benchmark, scenario)

def composed_grid(cells: int) -> "Program":
    """``cells`` independent protocol instances bridged into a chain."""
    from repro.lang.compose import add_handshake, parallel_compose, prefix_program
    from repro.workloads.patterns import handshake_chain

    parts = [
        prefix_program(handshake_chain(3, 1), f"cell{i}")
        for i in range(cells)
    ]
    program = parallel_compose(f"grid_{cells}", *parts)
    for i in range(cells - 1):
        program = add_handshake(
            program, f"cell{i}_t2", f"cell{i + 1}_t0", f"baton{i}"
        )
    return program


@pytest.mark.parametrize("cells", [2, 4, 8])
def test_composed_grid_scaling(cells, benchmark):
    graph = build_sync_graph(composed_grid(cells))
    report = benchmark(refined_deadlock_analysis, graph)
    assert report.deadlock_free


def test_composed_grid_table(benchmark):
    import time

    from _util import bench_once

    def scenario():
        rows = []
        for cells in (2, 4, 8, 12):
            graph = build_sync_graph(composed_grid(cells))
            clg = build_clg(graph)
            t0 = time.perf_counter()
            report = refined_deadlock_analysis(graph, clg=clg)
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            assert report.deadlock_free
            rows.append(
                (cells, len(graph.rendezvous_nodes), clg.node_count,
                 f"{elapsed_ms:.1f}")
            )
        print_table(
            "E8b: composed protocol grid, certified end-to-end",
            ["cells", "rendezvous nodes", "CLG nodes", "refined ms"],
            rows,
        )
        # linear structure growth
        nodes = [r[1] for r in rows]
        diffs = [b - a for a, b in zip(nodes, nodes[1:])]
        per_cell = [d / (c2 - c1) for d, (c1, c2) in zip(
            diffs, [(2, 4), (4, 8), (8, 12)]
        )]
        assert max(per_cell) - min(per_cell) <= 2

    bench_once(benchmark, scenario)

"""Daemon residency: repeat requests against one long-lived session.

The daemon's entire reason to exist is that the one-shot CLI re-pays
parse → inline → sync-graph → index construction on every invocation.
This benchmark quantifies that: a corpus of programs is analyzed

* **cold** — a fresh :class:`repro.server.Session` per request, the
  one-shot cost the CLI pays every time;
* **warm** — the same requests repeated against one resident session,
  where the content-addressed LRU answers from memory;
* **edited** — a comment-only ``didChange`` between repeats, proving
  partial invalidation keeps the warm path warm.

The headline number is the warm speedup, asserted ≥ 5x (in practice it
is orders of magnitude — a dict probe vs the whole pipeline); the
session's ``server.cache_hits`` counter must equal the number of warm
requests, proving the speedup is residency and not noise.  Headline
numbers land in ``BENCH_server.json``.

Setting ``REPRO_PERF_SMOKE=1`` (the CI server-smoke job) shrinks the
corpus so the benchmark doubles as a fast regression gate.
"""

from __future__ import annotations

import os
import time

from _util import bench_once, print_table, write_bench_json
from repro import obs
from repro.lang.pretty import pretty
from repro.server import Session
from repro.workloads import random_serializable_program

SMOKE = os.environ.get("REPRO_PERF_SMOKE") == "1"
CORPUS_SIZE = 20 if SMOKE else 80
WARM_ROUNDS = 3
MIN_WARM_SPEEDUP = 5.0


def _corpus():
    programs = []
    for seed in range(CORPUS_SIZE):
        program = random_serializable_program(
            tasks=4, rendezvous=10, messages=3, seed=seed
        )
        programs.append((f"mem:{program.name}-{seed}", pretty(program)))
    return programs


def _cold_pass(pairs):
    """One-shot cost: a brand-new session for every request."""
    verdicts = []
    t0 = time.perf_counter()
    for uri, text in pairs:
        session = Session(store=None)
        payload, _ = session.analyze_document(uri=uri, text=text)
        verdicts.append(payload["deadlock"]["verdict"])
    return verdicts, time.perf_counter() - t0


def _warm_passes(session, pairs, rounds):
    verdicts = []
    t0 = time.perf_counter()
    for _ in range(rounds):
        for uri, _text in pairs:
            payload, cache = session.analyze_document(uri=uri)
            verdicts.append((payload["deadlock"]["verdict"], cache))
    return verdicts, time.perf_counter() - t0


def test_server_residency(benchmark):
    pairs = _corpus()

    cold_verdicts, cold_s = _cold_pass(pairs)

    with obs.observed() as obs_session:
        resident = Session(store=None)
        # Populate the resident session (documents + LRU), untimed.
        for uri, text in pairs:
            resident.analyze_document(uri=uri, text=text)

        def warm_scenario():
            return _warm_passes(resident, pairs, WARM_ROUNDS)

        (warm_verdicts, warm_s) = bench_once(benchmark, warm_scenario)

        # Comment-only edits between rounds must keep the cache warm:
        # partial invalidation + content-addressed keys.
        for uri, text in pairs:
            resident.change_document(uri, "-- touched\n" + text)
        edited_verdicts, edited_s = _warm_passes(resident, pairs, 1)

    warm_requests = CORPUS_SIZE * WARM_ROUNDS
    cold_per_req = cold_s / CORPUS_SIZE
    warm_per_req = warm_s / warm_requests
    speedup = cold_per_req / warm_per_req

    rows = [
        ("cold (fresh session each)", f"{cold_s:.3f}",
         f"{1e3 * cold_per_req:.2f}"),
        (f"warm (resident, {WARM_ROUNDS} rounds)", f"{warm_s:.3f}",
         f"{1e3 * warm_per_req:.2f}"),
        ("after comment-only edits", f"{edited_s:.3f}",
         f"{1e3 * edited_s / CORPUS_SIZE:.2f}"),
    ]
    print_table(
        f"Server residency, {CORPUS_SIZE} programs",
        ["configuration", "wall s", "ms/request"],
        rows,
    )

    # Verdict parity: residency must never change an answer.
    assert [v for v, _ in warm_verdicts] == cold_verdicts * WARM_ROUNDS
    assert [v for v, _ in edited_verdicts] == cold_verdicts
    # Every warm request answered from resident state...
    assert all(cache == "memory" for _, cache in warm_verdicts)
    # ...including after the formatting-only edits...
    assert all(cache == "memory" for _, cache in edited_verdicts)
    # ...and the counters agree (requests + the mirrored obs counter).
    hits = resident.counters["cache_hits"]
    assert hits == warm_requests + CORPUS_SIZE
    assert (
        obs_session.registry.counter_value("server.cache_hits") == hits
    )
    assert (
        resident.counters["invalidations_partial"] == CORPUS_SIZE
    )
    # The acceptance bar: ≥ 5x. In practice this is vastly exceeded —
    # a warm request is an LRU probe, not a pipeline run.
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm speedup {speedup:.1f}x below {MIN_WARM_SPEEDUP}x"
    )

    write_bench_json(
        "BENCH_server.json",
        {
            "corpus_size": CORPUS_SIZE,
            "warm_rounds": WARM_ROUNDS,
            "smoke": SMOKE,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "edited_s": round(edited_s, 4),
            "cold_ms_per_request": round(1e3 * cold_per_req, 4),
            "warm_ms_per_request": round(1e3 * warm_per_req, 4),
            "warm_speedup": round(speedup, 1),
            "cache_hits": hits,
            "partial_invalidations": resident.counters[
                "invalidations_partial"
            ],
        },
    )

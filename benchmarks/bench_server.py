"""Daemon residency: repeat requests against one long-lived session.

The daemon's entire reason to exist is that the one-shot CLI re-pays
parse → inline → sync-graph → index construction on every invocation.
This benchmark quantifies that: a corpus of programs is analyzed

* **cold** — a fresh :class:`repro.server.Session` per request, the
  one-shot cost the CLI pays every time;
* **warm** — the same requests repeated against one resident session,
  where the content-addressed LRU answers from memory;
* **edited** — a comment-only ``didChange`` between repeats, proving
  partial invalidation keeps the warm path warm.

The headline number is the warm speedup, asserted ≥ 5x (in practice it
is orders of magnitude — a dict probe vs the whole pipeline); the
session's ``server.cache_hits`` counter must equal the number of warm
requests, proving the speedup is residency and not noise.  Headline
numbers land in ``BENCH_server.json``.

A second scenario measures the **concurrent daemon**: four HTTP
clients analyzing independent cold documents against a multi-worker
pool (worker threads + the shared compute process pool) versus the
same workload through a single worker.  On a multi-core box the
aggregate throughput must be ≥ 2x; on one core the numbers are
recorded honestly with the host's ``cpu_count`` and the assertion is
skipped (the GIL plus one core cannot parallelize CPU-bound work).
The same scenario drills cancellation: a stale queued ``analyze`` is
cancelled (answer code 1004, no work run) without blocking its
replacement.

Setting ``REPRO_PERF_SMOKE=1`` (the CI server-smoke job) shrinks the
corpus so the benchmark doubles as a fast regression gate.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request
from pathlib import Path

from _util import bench_once, print_table, write_bench_json
from repro import obs
from repro.lang.pretty import pretty
from repro.server import AnalysisServer, Session
from repro.server.httpd import make_http_server
from repro.server.protocol import REQUEST_CANCELLED
from repro.workloads import random_serializable_program

SMOKE = os.environ.get("REPRO_PERF_SMOKE") == "1"
CORPUS_SIZE = 20 if SMOKE else 80
WARM_ROUNDS = 3
MIN_WARM_SPEEDUP = 5.0

CLIENTS = 4
REQS_PER_CLIENT = 2 if SMOKE else 6
MIN_CONCURRENT_SPEEDUP = 2.0


def _corpus():
    programs = []
    for seed in range(CORPUS_SIZE):
        program = random_serializable_program(
            tasks=4, rendezvous=10, messages=3, seed=seed
        )
        programs.append((f"mem:{program.name}-{seed}", pretty(program)))
    return programs


def _cold_pass(pairs):
    """One-shot cost: a brand-new session for every request."""
    verdicts = []
    t0 = time.perf_counter()
    for uri, text in pairs:
        session = Session(store=None)
        payload, _ = session.analyze_document(uri=uri, text=text)
        verdicts.append(payload["deadlock"]["verdict"])
    return verdicts, time.perf_counter() - t0


def _warm_passes(session, pairs, rounds):
    verdicts = []
    t0 = time.perf_counter()
    for _ in range(rounds):
        for uri, _text in pairs:
            payload, cache = session.analyze_document(uri=uri)
            verdicts.append((payload["deadlock"]["verdict"], cache))
    return verdicts, time.perf_counter() - t0


def test_server_residency(benchmark):
    pairs = _corpus()

    cold_verdicts, cold_s = _cold_pass(pairs)

    with obs.observed() as obs_session:
        resident = Session(store=None)
        # Populate the resident session (documents + LRU), untimed.
        for uri, text in pairs:
            resident.analyze_document(uri=uri, text=text)

        def warm_scenario():
            return _warm_passes(resident, pairs, WARM_ROUNDS)

        (warm_verdicts, warm_s) = bench_once(benchmark, warm_scenario)

        # Comment-only edits between rounds must keep the cache warm:
        # partial invalidation + content-addressed keys.
        for uri, text in pairs:
            resident.change_document(uri, "-- touched\n" + text)
        edited_verdicts, edited_s = _warm_passes(resident, pairs, 1)

    warm_requests = CORPUS_SIZE * WARM_ROUNDS
    cold_per_req = cold_s / CORPUS_SIZE
    warm_per_req = warm_s / warm_requests
    speedup = cold_per_req / warm_per_req

    rows = [
        ("cold (fresh session each)", f"{cold_s:.3f}",
         f"{1e3 * cold_per_req:.2f}"),
        (f"warm (resident, {WARM_ROUNDS} rounds)", f"{warm_s:.3f}",
         f"{1e3 * warm_per_req:.2f}"),
        ("after comment-only edits", f"{edited_s:.3f}",
         f"{1e3 * edited_s / CORPUS_SIZE:.2f}"),
    ]
    print_table(
        f"Server residency, {CORPUS_SIZE} programs",
        ["configuration", "wall s", "ms/request"],
        rows,
    )

    # Verdict parity: residency must never change an answer.
    assert [v for v, _ in warm_verdicts] == cold_verdicts * WARM_ROUNDS
    assert [v for v, _ in edited_verdicts] == cold_verdicts
    # Every warm request answered from resident state...
    assert all(cache == "memory" for _, cache in warm_verdicts)
    # ...including after the formatting-only edits...
    assert all(cache == "memory" for _, cache in edited_verdicts)
    # ...and the counters agree (requests + the mirrored obs counter).
    hits = resident.counters["cache_hits"]
    assert hits == warm_requests + CORPUS_SIZE
    assert (
        obs_session.registry.counter_value("server.cache_hits") == hits
    )
    assert (
        resident.counters["invalidations_partial"] == CORPUS_SIZE
    )
    # The acceptance bar: ≥ 5x. In practice this is vastly exceeded —
    # a warm request is an LRU probe, not a pipeline run.
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm speedup {speedup:.1f}x below {MIN_WARM_SPEEDUP}x"
    )

    write_bench_json(
        "BENCH_server.json",
        {
            "corpus_size": CORPUS_SIZE,
            "warm_rounds": WARM_ROUNDS,
            "smoke": SMOKE,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "edited_s": round(edited_s, 4),
            "cold_ms_per_request": round(1e3 * cold_per_req, 4),
            "warm_ms_per_request": round(1e3 * warm_per_req, 4),
            "warm_speedup": round(speedup, 1),
            "cache_hits": hits,
            "partial_invalidations": resident.counters[
                "invalidations_partial"
            ],
        },
    )


# ---------------------------------------------------------------------------
# concurrency: N HTTP clients against the worker pool


def _post(port, body, headers=None, timeout=600):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/rpc",
        data=json.dumps(body).encode("utf-8"),
        headers=dict(headers or {}),
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _get(port, path, timeout=60):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _serving(workers):
    server = AnalysisServer(workers=workers)
    server.start()
    httpd = make_http_server(server, port=0)
    thread = threading.Thread(
        target=httpd.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    return server, httpd


def _stop(server, httpd):
    httpd.shutdown()
    server.drain()
    httpd.server_close()


def _concurrency_corpus():
    """Per-client lists of distinct cold programs (nothing shareable:
    every request pays the full pipeline, which is what a pool must
    parallelize)."""
    per_client = []
    for c in range(CLIENTS):
        pairs = []
        for i in range(REQS_PER_CLIENT):
            seed = 1000 + c * 100 + i
            program = random_serializable_program(
                tasks=5, rendezvous=14, messages=3, seed=seed
            )
            pairs.append((f"mem:conc-{c}-{i}", pretty(program)))
        per_client.append(pairs)
    return per_client


def _aggregate_wall(workers, per_client):
    """Wall-clock for all clients' requests, driven concurrently."""
    server, httpd = _serving(workers)
    port = httpd.server_address[1]
    errors = []

    def drive(c, pairs):
        try:
            for i, (uri, text) in enumerate(pairs):
                reply = _post(
                    port,
                    {
                        "id": f"{c}-{i}",
                        "method": "analyze",
                        "params": {"uri": uri, "text": text},
                    },
                    headers={"X-Repro-Client": f"client-{c}"},
                )
                assert reply["result"]["report"]["deadlock"]["verdict"]
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(c, pairs), daemon=True)
        for c, pairs in enumerate(per_client)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    try:
        assert not errors, errors
        return wall, dict(server.session.counters)
    finally:
        _stop(server, httpd)


def _cancellation_drill():
    """Stale queued analyze → 1004, replacement unblocked (workers=1 so
    the queue is observable)."""
    server, httpd = _serving(1)
    port = httpd.server_address[1]
    boxes = {}

    def post_bg(name, body, headers=None):
        def run():
            boxes[name] = _post(port, body, headers=headers)

        t = threading.Thread(target=run, daemon=True)
        t.start()
        return t

    try:
        # Occupy the lone worker with a bulk sweep long enough for the
        # cancel round trips behind it.
        bulk_items = [
            {"label": f"bulk-{i}", "text": text}
            for i, (_, text) in enumerate(_concurrency_corpus()[0] * 6)
        ]
        bulk = post_bg(
            "bulk",
            {"id": "bulk", "method": "batch", "params": {"items": bulk_items}},
        )
        deadline = time.time() + 60
        while time.time() < deadline:
            if _get(port, "/status")["server"]["busy"] >= 1:
                break
            time.sleep(0.005)
        # A stale interactive request parks in the queue...
        program = random_serializable_program(
            tasks=5, rendezvous=14, messages=3, seed=4242
        )
        stale = post_bg(
            "stale",
            {
                "id": "stale",
                "method": "analyze",
                "params": {"uri": "mem:stale", "text": pretty(program)},
            },
            headers={"X-Repro-Client": "editor"},
        )
        while time.time() < deadline:
            if _get(port, "/status")["server"]["queue"]["pending"] >= 1:
                break
            time.sleep(0.005)
        # ...is cancelled from the transport thread (never queued)...
        t0 = time.perf_counter()
        cancel_reply = _post(
            port,
            {"id": "c1", "method": "cancel", "params": {"id": "stale"}},
            headers={"X-Repro-Client": "editor"},
        )
        cancel_s = time.perf_counter() - t0
        # ...and its replacement (think: cancel-then-didChange) still
        # completes normally behind the bulk job.
        fresh_program = random_serializable_program(
            tasks=5, rendezvous=14, messages=3, seed=4243
        )
        fresh = _post(
            port,
            {
                "id": "fresh",
                "method": "analyze",
                "params": {"uri": "mem:stale", "text": pretty(fresh_program)},
            },
            headers={"X-Repro-Client": "editor"},
        )
        stale.join(timeout=60)
        bulk.join(timeout=600)
        assert cancel_reply["result"]["cancelled"] is True
        assert cancel_reply["result"]["state"] == "queued"
        assert boxes["stale"]["error"]["code"] == REQUEST_CANCELLED
        assert fresh["result"]["cache"] == "computed"
        assert boxes["bulk"]["result"]["report"]["items"] == len(bulk_items)
        return {
            "cancel_round_trip_ms": round(1e3 * cancel_s, 3),
            "stale_code": boxes["stale"]["error"]["code"],
            "replacement_cache": fresh["result"]["cache"],
        }
    finally:
        _stop(server, httpd)


def test_server_concurrency(benchmark):
    per_client = _concurrency_corpus()
    total = CLIENTS * REQS_PER_CLIENT

    single_s, single_counters = _aggregate_wall(1, per_client)

    def pooled_scenario():
        return _aggregate_wall(CLIENTS, per_client)

    pooled_s, pooled_counters = bench_once(benchmark, pooled_scenario)

    speedup = single_s / pooled_s
    cpu_count = os.cpu_count() or 1
    cancel = _cancellation_drill()

    rows = [
        ("single worker", f"{single_s:.3f}", f"{total / single_s:.1f}"),
        (f"{CLIENTS} workers + compute pool", f"{pooled_s:.3f}",
         f"{total / pooled_s:.1f}"),
        ("aggregate speedup", f"{speedup:.2f}x", "-"),
        ("cancel round trip", f"{cancel['cancel_round_trip_ms']:.1f}ms", "-"),
    ]
    print_table(
        f"Concurrent daemon, {CLIENTS} HTTP clients x "
        f"{REQS_PER_CLIENT} cold analyzes (cpu_count={cpu_count})",
        ["configuration", "wall s", "req/s"],
        rows,
    )

    # Correctness under concurrency: every request was served and
    # counted exactly, no approximate counters.
    assert single_counters["requests"] == total
    assert pooled_counters["requests"] == total
    assert pooled_counters["computed"] == total
    # Cold-analysis offload to the compute pool actually engaged.
    assert pooled_counters["offloaded"] > 0

    # The throughput bar needs real cores: the GIL serializes
    # CPU-bound threads, and one core cannot run two analyses at once.
    # Recorded honestly either way (same policy as bench_batch).
    if cpu_count >= 2:
        assert speedup >= MIN_CONCURRENT_SPEEDUP, (
            f"aggregate speedup {speedup:.2f}x below "
            f"{MIN_CONCURRENT_SPEEDUP}x on {cpu_count} cores"
        )

    bench_path = Path(__file__).resolve().parent.parent / "BENCH_server.json"
    payload = (
        json.loads(bench_path.read_text()) if bench_path.exists() else {}
    )
    payload["concurrency"] = {
        "clients": CLIENTS,
        "requests_per_client": REQS_PER_CLIENT,
        "smoke": SMOKE,
        "cpu_count": cpu_count,
        "single_worker_s": round(single_s, 4),
        "pooled_s": round(pooled_s, 4),
        "aggregate_speedup": round(speedup, 2),
        "speedup_asserted": cpu_count >= 2,
        "note": (
            "speedup bar not asserted: single-core host"
            if cpu_count < 2
            else f">= {MIN_CONCURRENT_SPEEDUP}x on {cpu_count} cores"
        ),
        "offloaded": pooled_counters["offloaded"],
        "cancellation": cancel,
    }
    write_bench_json("BENCH_server.json", payload)

"""E4 — Figure 3: the global constraint-4 breaker check.

The Figure-3 cycle satisfies the three local constraints, so the base
refined algorithm reports it; the constraint-4 strengthening finds the
breaker node ``w`` and certifies the program.  Exhaustive exploration
confirms no deadlock is feasible.
"""

from __future__ import annotations

import pytest

from _util import bench_once, print_table
from repro.analysis.constraint4 import (
    breakable_nodes,
    constraint4_deadlock_analysis,
)
from repro.analysis.orderings import compute_orderings
from repro.analysis.refined import refined_deadlock_analysis
from repro.syncgraph.build import build_sync_graph
from repro.waves.explore import explore
from repro.workloads.corpus import paper_corpus


@pytest.fixture(scope="module")
def fig3_graph():
    return build_sync_graph(paper_corpus()["fig3"].program)


def test_refined_alone_reports_the_cycle(fig3_graph, benchmark):
    report = benchmark(refined_deadlock_analysis, fig3_graph)
    assert not report.deadlock_free
    assert len(report.evidence) >= 1


def test_constraint4_certifies(fig3_graph, benchmark):
    report = benchmark(constraint4_deadlock_analysis, fig3_graph)
    assert report.deadlock_free
    assert report.stats["breakable_nodes"] >= 1
    base = refined_deadlock_analysis(fig3_graph)
    print_table(
        "E4: constraint 4 on the Figure-3 program",
        ["algorithm", "verdict", "evidence cycles"],
        [
            ("refined", base.verdict, len(base.evidence)),
            ("refined+constraint4", report.verdict, len(report.evidence)),
        ],
    )


def test_breaker_identity(fig3_graph, benchmark):
    def scenario():
        breakers = breakable_nodes(fig3_graph, compute_orderings(fig3_graph))
        # the head 't' (task b's first accept) must be breakable via task c
        assert any(n.task == "b" and n.kind == "accept" for n in breakers)

    bench_once(benchmark, scenario)
def test_exact_confirms(fig3_graph, benchmark):
    result = benchmark(explore, fig3_graph)
    assert not result.has_deadlock

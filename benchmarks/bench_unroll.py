"""E10 — Lemma 1 / §3.1.4: the loop-unroll transform.

Measures: (a) anomaly preservation — exact deadlock verdicts are
identical before and after the transform on a loop corpus; (b) size
growth — ``O(statements × 2^nest_depth)`` worst case, linear for
unnested loops; (c) the ablation the paper implies — a single unrolled
copy misses cross-iteration deadlocks that two copies preserve.
"""

from __future__ import annotations

import pytest

from _util import bench_once, print_table
from repro.lang.ast_nodes import statement_count
from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from repro.waves.explore import explore

CROSS_ITERATION_DEADLOCK = """
program crossiter;
task a is
begin
    while ? loop
        send b.m;
        accept r;
    end loop;
    send b.bad;
    accept bad2;
end;
task b is
begin
    while ? loop
        accept m;
        send a.r;
    end loop;
    send a.bad2;
    accept bad;
end;
"""

LOOP_CORPUS = [
    CROSS_ITERATION_DEADLOCK,
    """
    program okloop;
    task a is begin while ? loop send b.m; accept r; end loop; end;
    task b is begin while ? loop accept m; send a.r; end loop; end;
    """,
    """
    program nested;
    task a is begin while ? loop while ? loop send b.m; end loop;
    end loop; end;
    task b is begin while ? loop accept m; end loop; end;
    """,
]


def nested_loops_program(depth: int) -> str:
    open_loops = "while ? loop " * depth
    close_loops = "end loop; " * depth
    return (
        "program deep; task a is begin "
        + open_loops
        + "send b.m; "
        + close_loops
        + "end; task b is begin while ? loop accept m; end loop; end;"
    )


@pytest.mark.parametrize("index", range(len(LOOP_CORPUS)))
def test_transform_time(index, benchmark):
    program = parse_program(LOOP_CORPUS[index])
    transformed, changed = benchmark(remove_loops, program)
    assert changed


@pytest.mark.parametrize("index", range(len(LOOP_CORPUS)))
def test_anomaly_preservation(index, benchmark):
    def scenario():
        program = parse_program(LOOP_CORPUS[index])
        transformed, _ = remove_loops(program)
        before = explore(build_sync_graph(program))
        after = explore(build_sync_graph(transformed))
        assert before.has_deadlock == after.has_deadlock

    bench_once(benchmark, scenario)
def test_single_copy_ablation(benchmark):
    def scenario():
        """factor=1 is NOT anomaly preserving across iterations."""
        program = parse_program(CROSS_ITERATION_DEADLOCK)
        exact = explore(build_sync_graph(program))
        assert exact.has_deadlock

        two, _ = remove_loops(program, factor=2)
        assert explore(build_sync_graph(two)).has_deadlock

        # The cross-iteration behaviours survive even one copy here, but
        # the *paths between two body instances* only exist with factor=2;
        # verify the structural claim that factor=2 strictly adds paths.
        one, _ = remove_loops(program, factor=1)
        assert statement_count(one) < statement_count(two)
        one_waves = explore(build_sync_graph(one)).visited_count
        two_waves = explore(build_sync_graph(two)).visited_count
        assert two_waves >= one_waves
        print_table(
            "E10: unroll-factor ablation (cross-iteration program)",
            ["factor", "statements", "feasible waves", "deadlock found"],
            [
                (1, statement_count(one), one_waves,
                 explore(build_sync_graph(one)).has_deadlock),
                (2, statement_count(two), two_waves, True),
            ],
        )

    bench_once(benchmark, scenario)
def test_size_growth_vs_nest_depth(benchmark):
    def scenario():
        rows = []
        for depth in (1, 2, 3, 4):
            program = parse_program(nested_loops_program(depth))
            transformed, _ = remove_loops(program)
            rows.append(
                (
                    depth,
                    statement_count(program),
                    statement_count(transformed),
                )
            )
        print_table(
            "E10: transformed size vs loop nest depth (O(stmts * 2^depth))",
            ["nest depth", "original stmts", "unrolled stmts"],
            rows,
        )
        # growth ratio between consecutive depths approaches 2x
        sizes = [r[2] for r in rows]
        for a, b in zip(sizes, sizes[1:]):
            assert b <= 3 * a + 4
            assert b > a

    bench_once(benchmark, scenario)
"""E12 — §4.2 extensions: the accuracy/cost spectrum.

The paper lists four strategies "forming a spectrum of tradeoffs of
accuracy versus execution time".  This benchmark measures both axes on
a common corpus: hypothesis counts and wall time rise from single heads
to combined pairs, while the certified fraction (accuracy) never drops.
"""

from __future__ import annotations

import time

import pytest

from _util import bench_once, print_table
from repro.analysis.extensions import (
    combined_pairs_analysis,
    head_pairs_analysis,
    head_tail_analysis,
    k_pairs_analysis,
)
from repro.analysis.refined import refined_deadlock_analysis
from repro.errors import ExplorationLimitError
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from repro.waves.explore import explore
from repro.workloads.corpus import paper_corpus
from repro.workloads.patterns import handshake_chain, pipeline
from repro.workloads.random_programs import (
    RandomProgramConfig,
    random_program,
)

VARIANTS = [
    ("refined", refined_deadlock_analysis),
    ("head-pairs", head_pairs_analysis),
    ("head-tail", head_tail_analysis),
    ("combined-pairs", combined_pairs_analysis),
    ("k-pairs-3", lambda g: k_pairs_analysis(g, k=3)),
]


def _corpus():
    graphs = []
    for entry in paper_corpus().values():
        program, _ = remove_loops(entry.program)
        graphs.append(build_sync_graph(program))
    graphs.append(build_sync_graph(pipeline(4, 2)))
    graphs.append(build_sync_graph(handshake_chain(4, 2)))
    cfg = RandomProgramConfig(tasks=3, statements_per_task=3, branch_prob=0.2)
    for seed in range(15):
        program, _ = remove_loops(random_program(cfg, seed=seed))
        graphs.append(build_sync_graph(program))
    return graphs


@pytest.fixture(scope="module")
def corpus_graphs():
    return _corpus()


@pytest.fixture(scope="module")
def exact_labels(corpus_graphs):
    labels = []
    for graph in corpus_graphs:
        try:
            labels.append(explore(graph, state_limit=50_000).has_deadlock)
        except ExplorationLimitError:
            labels.append(None)
    return labels


@pytest.mark.parametrize("name,variant", VARIANTS, ids=[n for n, _ in VARIANTS])
def test_variant_cost(name, variant, corpus_graphs, benchmark):
    def run_all():
        return [variant(g).deadlock_free for g in corpus_graphs]

    verdicts = benchmark(run_all)
    assert len(verdicts) == len(corpus_graphs)


def test_spectrum_table(corpus_graphs, exact_labels, benchmark):
    def scenario():
        rows = []
        certified_counts = {}
        for name, variant in VARIANTS:
            t0 = time.perf_counter()
            reports = [variant(g) for g in corpus_graphs]
            elapsed = time.perf_counter() - t0
            certified = sum(r.deadlock_free for r in reports)
            hypotheses = sum(r.heads_examined for r in reports)
            # safety against exact labels where known
            for report, label in zip(reports, exact_labels):
                if label is True:
                    assert not report.deadlock_free, name
            certified_counts[name] = certified
            rows.append(
                (
                    name,
                    hypotheses,
                    f"{elapsed * 1e3:.1f}",
                    certified,
                    len(corpus_graphs),
                )
            )
        print_table(
            "E12: extension spectrum (accuracy vs cost)",
            ["variant", "hypotheses", "total ms", "certified", "programs"],
            rows,
        )
        # accuracy (certified count) never drops relative to base refined
        base = certified_counts["refined"]
        for name, _ in VARIANTS[1:]:
            assert certified_counts[name] >= base

    bench_once(benchmark, scenario)
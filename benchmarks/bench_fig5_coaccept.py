"""E5 — Figure 5(a) / Lemma 2: rendezvousing head nodes.

The Figure-5(a) cycle enters and exits one task through accepts of the
same signal type, so its head nodes can rendezvous — spurious under
constraint 2.  The refined algorithm's COACCEPT/partner marks eliminate
it from both head hypotheses; disabling the COACCEPT rule must not
break certification here because the constraint-2 partner marking
covers the same cycle.
"""

from __future__ import annotations

import pytest

from _util import bench_once, print_table
from repro.analysis.naive import naive_deadlock_analysis
from repro.analysis.refined import (
    coaccept_of,
    possible_heads,
    refined_deadlock_analysis,
)
from repro.syncgraph.build import build_sync_graph
from repro.waves.explore import explore
from repro.workloads.corpus import paper_corpus


@pytest.fixture(scope="module")
def fig5a_graph():
    return build_sync_graph(paper_corpus()["fig5a"].program)


def test_naive_reports_lemma2_cycle(fig5a_graph, benchmark):
    report = benchmark(naive_deadlock_analysis, fig5a_graph)
    assert not report.deadlock_free


def test_refined_certifies(fig5a_graph, benchmark):
    report = benchmark(refined_deadlock_analysis, fig5a_graph)
    assert report.deadlock_free
    rows = []
    for head in possible_heads(fig5a_graph):
        rows.append(
            (
                str(head),
                len(coaccept_of(fig5a_graph, head)),
                len(fig5a_graph.sync_neighbors(head)),
            )
        )
    print_table(
        "E5: head hypotheses on fig5a",
        ["head", "COACCEPT size", "sync partners"],
        rows,
    )


def test_coaccept_and_partner_marks_both_eliminate(fig5a_graph, benchmark):
    def scenario():
        with_coaccept = refined_deadlock_analysis(
            fig5a_graph, use_coaccept=True
        )
        without_coaccept = refined_deadlock_analysis(
            fig5a_graph, use_coaccept=False
        )
        assert with_coaccept.deadlock_free
        assert without_coaccept.deadlock_free

    bench_once(benchmark, scenario)
def test_exact_confirms(fig5a_graph, benchmark):
    result = benchmark(explore, fig5a_graph)
    assert not result.has_anomaly

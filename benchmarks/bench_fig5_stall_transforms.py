"""E6 — Figure 5(b,c,d) / Section 5.1: stall-avoidance transforms.

Regenerates the paper's two inference patterns: the both-branches merge
and co-dependent factoring each turn an UNKNOWN stall verdict into a
certification, while the runtime interpreter confirms the programs
never actually stall.
"""

from __future__ import annotations

import pytest

from _util import bench_once, print_table
from repro.analysis.results import StallVerdict
from repro.analysis.stalls import lemma3_stall_analysis, stall_analysis
from repro.interp.runtime import sample_runs
from repro.lang.parser import parse_program
from repro.transforms.branch_merge import merge_branch_rendezvous
from repro.transforms.codependent import factor_codependent
from repro.workloads.corpus import paper_corpus

BOTH_BRANCHES = """
program both;
task a is
begin
    if ? then
        send b.m;
    else
        send b.m;
    end if;
end;
task b is begin accept m; end;
"""


def test_branch_merge_enables_lemma3(benchmark):
    program = parse_program(BOTH_BRANCHES)
    before = lemma3_stall_analysis(program)
    merged, merges = benchmark(merge_branch_rendezvous, program)
    after = lemma3_stall_analysis(merged)
    assert before.verdict == StallVerdict.UNKNOWN
    assert merges == 1
    assert after.verdict == StallVerdict.CERTIFIED_FREE
    print_table(
        "E6: Figure 5(b,c) both-branches merge",
        ["stage", "verdict"],
        [("before merge", before.verdict), ("after merge", after.verdict)],
    )


def test_codependent_factoring_enables_lemma3(benchmark):
    program = paper_corpus()["fig5d"].program
    before = lemma3_stall_analysis(program)
    factored, pairs = benchmark(factor_codependent, program)
    after = lemma3_stall_analysis(factored)
    assert before.verdict == StallVerdict.UNKNOWN
    assert len(pairs) == 1
    assert after.verdict == StallVerdict.CERTIFIED_FREE
    print_table(
        "E6: Figure 5(d) co-dependent factoring",
        ["stage", "verdict", "pairs factored"],
        [
            ("before factoring", before.verdict, 0),
            ("after factoring", after.verdict, len(pairs)),
        ],
    )


def test_full_pipeline_certifies_both(benchmark):
    fig5d = paper_corpus()["fig5d"].program
    report = benchmark(stall_analysis, fig5d)
    assert report.verdict == StallVerdict.CERTIFIED_FREE

    both = stall_analysis(parse_program(BOTH_BRANCHES))
    assert both.verdict == StallVerdict.CERTIFIED_FREE


def test_runtime_confirms_no_stalls(benchmark):
    def scenario():
        for source in (BOTH_BRANCHES,):
            summary = sample_runs(parse_program(source), runs=60)
            assert summary.stall_runs == 0
        summary = sample_runs(paper_corpus()["fig5d"].program, runs=60)
        assert summary.stall_runs == 0
        assert summary.completed == 60

    bench_once(benchmark, scenario)
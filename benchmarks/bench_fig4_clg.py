"""E3 — Figure 4(a,b): the CLG suppresses sync-edge-only cycles.

The raw sync graph of the Figure-4(a) program has a cycle running
entirely through sync edges (two senders × two accepts of one signal);
the node-splitting CLG transform removes it, so the naive algorithm
certifies the program.  Also measures CLG construction cost as the
pattern scales.
"""

from __future__ import annotations

import networkx as nx
import pytest

from _util import bench_once, print_table
from repro.analysis.naive import naive_deadlock_analysis
from repro.lang.ast_nodes import Accept, Program, Send, TaskDecl
from repro.syncgraph.build import build_sync_graph
from repro.syncgraph.clg import build_clg
from repro.workloads.corpus import paper_corpus


def fanin_program(senders: int) -> Program:
    """``senders`` sender tasks, one accepter with ``senders`` accepts."""
    tasks = [
        TaskDecl(name=f"s{i}", body=(Send(task="acc", message="m"),))
        for i in range(senders)
    ]
    tasks.append(
        TaskDecl(
            name="acc",
            body=tuple(Accept(message="m") for _ in range(senders)),
        )
    )
    return Program(name=f"fanin{senders}", tasks=tuple(tasks))


def sync_graph_has_undirected_sync_cycle(graph) -> bool:
    """Cycle detection on the raw sync graph, sync edges traversable."""
    g = nx.Graph()
    g.add_nodes_from(graph.rendezvous_nodes)
    g.add_edges_from(graph.sync_edges())
    try:
        nx.find_cycle(g)
        return True
    except nx.NetworkXNoCycle:
        return False


def test_fig4a_sync_cycle_exists_but_clg_acyclic(benchmark):
    graph = build_sync_graph(paper_corpus()["fig4a"].program)
    assert sync_graph_has_undirected_sync_cycle(graph)
    clg = benchmark(build_clg, graph)
    assert not clg.has_cycle()
    report = naive_deadlock_analysis(graph, clg)
    assert report.deadlock_free


@pytest.mark.parametrize("senders", [2, 4, 8])
def test_fanin_scaling(senders, benchmark):
    graph = build_sync_graph(fanin_program(senders))
    clg = benchmark(build_clg, graph)
    assert not clg.has_cycle()


def test_fanin_shape_table(benchmark):
    def scenario():
        rows = []
        for senders in (2, 4, 8, 16):
            graph = build_sync_graph(fanin_program(senders))
            clg = build_clg(graph)
            rows.append(
                (
                    senders,
                    len(list(graph.sync_edges())),
                    sync_graph_has_undirected_sync_cycle(graph),
                    clg.has_cycle(),
                )
            )
        print_table(
            "E3: sync-edge cycles vs CLG cycles (fan-in family)",
            ["senders", "sync edges", "raw sync cycle", "CLG cycle"],
            rows,
        )
        assert all(raw and not clg for (_, _, raw, clg) in rows)

    bench_once(benchmark, scenario)
"""Indexed bitset kernel vs the reference set-based refined algorithm.

Runs ``refined_deadlock_analysis`` with ``backend="index"`` and
``backend="reference"`` over the two deadlock-free scaling families of
``bench_scaling.py`` — pipelines and handshake chains — plus the
bundled paper corpus, asserting identical verdicts and evidence
everywhere.  The shape to reproduce: the indexed backend wins at every
size, by at least 3x at the largest size of each family (the per-head
rooted Tarjan + bitset marking removes the per-edge Python closures
and the full SCC enumeration the reference pays for per hypothesis).
Headline numbers land in ``BENCH_refined.json``.

Setting ``REPRO_PERF_SMOKE=1`` (the CI perf-smoke job) shrinks the
families so the whole run stays under a minute on shared runners; the
3x floor is only asserted at full size, but "indexed never slower"
holds in both modes.
"""

from __future__ import annotations

import os
import time

from _util import print_table, write_bench_json
from repro.analysis.coexec import compute_coexec
from repro.analysis.index import AnalysisIndex
from repro.analysis.orderings import compute_orderings
from repro.analysis.refined import refined_deadlock_analysis
from repro.syncgraph.build import build_sync_graph
from repro.syncgraph.clg import build_clg
from repro.transforms.unroll import remove_loops
from repro.workloads.corpus import paper_corpus
from repro.workloads.patterns import handshake_chain, pipeline

SMOKE = os.environ.get("REPRO_PERF_SMOKE") == "1"
PIPELINE_STAGES = (4, 8) if SMOKE else (4, 8, 16, 32)
HANDSHAKE_TASKS = (2, 3, 4) if SMOKE else (2, 3, 4, 5, 6)
ROUNDS = 3  # timing repetitions; best-of to shed scheduler noise
SPEEDUP_FLOOR = 3.0  # acceptance: indexed >= 3x at the largest size


def _families():
    for stages in PIPELINE_STAGES:
        yield ("pipeline", stages, build_sync_graph(pipeline(stages, 2)))
    for tasks in HANDSHAKE_TASKS:
        yield (
            "handshake",
            tasks,
            build_sync_graph(handshake_chain(tasks, rounds=2)),
        )


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_refined_kernel_speedup(benchmark):
    rows = []
    results = []
    for family, size, graph in _families():
        # Shared precompute: both backends receive the same CLG,
        # orderings and coexec, so the timings isolate the marking +
        # SCC kernels (index build time is charged to the index side).
        clg = build_clg(graph)
        orderings = compute_orderings(graph)
        coexec = compute_coexec(graph)

        def run_index():
            return refined_deadlock_analysis(
                graph, clg=clg, orderings=orderings, coexec=coexec,
                backend="index",
            )

        def run_reference():
            return refined_deadlock_analysis(
                graph, clg=clg, orderings=orderings, coexec=coexec,
                backend="reference",
            )

        index_s, index_report = _best_of(run_index)
        ref_s, ref_report = _best_of(run_reference)

        assert index_report.verdict == ref_report.verdict
        assert index_report.evidence == ref_report.evidence
        assert index_report.stats == ref_report.stats
        assert index_report.deadlock_free  # both families are free

        speedup = ref_s / index_s
        rows.append(
            (
                f"{family}({size})",
                clg.node_count,
                f"{index_s * 1e3:.2f}",
                f"{ref_s * 1e3:.2f}",
                f"{speedup:.2f}x",
            )
        )
        results.append(
            {
                "family": family,
                "size": size,
                "clg_nodes": clg.node_count,
                "clg_edges": clg.edge_count,
                "index_s": round(index_s, 6),
                "reference_s": round(ref_s, 6),
                "speedup": round(speedup, 3),
            }
        )

    print_table(
        "Refined kernel: indexed bitset backend vs reference sets",
        ["case", "CLG nodes", "index ms", "reference ms", "speedup"],
        rows,
    )

    # The indexed backend must never lose; at the largest size of each
    # family it must clear the acceptance floor.
    for entry in results:
        assert entry["speedup"] >= 1.0, entry
    if not SMOKE:
        for family, sizes in (
            ("pipeline", PIPELINE_STAGES),
            ("handshake", HANDSHAKE_TASKS),
        ):
            largest = next(
                e
                for e in results
                if e["family"] == family and e["size"] == max(sizes)
            )
            assert largest["speedup"] >= SPEEDUP_FLOOR, largest

    # Corpus sweep: identical reports on every bundled paper program.
    corpus_cases = 0
    for entry in paper_corpus().values():
        transformed, _ = remove_loops(entry.program)
        graph = build_sync_graph(transformed)
        index_report = refined_deadlock_analysis(graph, backend="index")
        ref_report = refined_deadlock_analysis(graph, backend="reference")
        assert index_report.verdict == ref_report.verdict, entry.name
        assert index_report.evidence == ref_report.evidence, entry.name
        corpus_cases += 1

    def timed_scenario():
        # One representative case under pytest-benchmark so the run
        # shows up in --benchmark-only output.
        graph = build_sync_graph(pipeline(PIPELINE_STAGES[-1], 2))
        return refined_deadlock_analysis(graph, backend="index")

    benchmark.pedantic(timed_scenario, rounds=1, iterations=1)

    write_bench_json(
        "BENCH_refined.json",
        {
            "smoke": SMOKE,
            "rounds_best_of": ROUNDS,
            "speedup_floor": SPEEDUP_FLOOR,
            "corpus_cases_checked": corpus_cases,
            "cases": results,
        },
    )

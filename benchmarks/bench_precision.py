"""E9 — precision: false-alarm rates of the detector family.

Random programs are labelled by exhaustive wave exploration; every
detector must flag all true deadlocks (safety — zero misses) and the
refined family must false-alarm no more often than the naive algorithm
(the paper's precision claim).  The spectrum naive ≥ refined ≥
extensions is printed as the headline table.
"""

from __future__ import annotations

import pytest

from _util import bench_once, print_table
from repro.analysis.constraint4 import constraint4_deadlock_analysis
from repro.analysis.extensions import (
    combined_pairs_analysis,
    head_pairs_analysis,
    head_tail_analysis,
)
from repro.analysis.naive import naive_deadlock_analysis
from repro.analysis.refined import refined_deadlock_analysis
from repro.errors import ExplorationLimitError
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from repro.waves.explore import explore
from repro.workloads.random_programs import (
    RandomProgramConfig,
    random_program,
    random_serializable_program,
)

DETECTORS = [
    ("naive", naive_deadlock_analysis),
    ("refined", refined_deadlock_analysis),
    ("refined+c4", constraint4_deadlock_analysis),
    ("head-pairs", head_pairs_analysis),
    ("head-tail", head_tail_analysis),
    ("combined", combined_pairs_analysis),
]


def _labelled_corpus(count: int = 60):
    """Random programs with exact deadlock labels."""
    corpus = []
    cfg = RandomProgramConfig(
        tasks=3, statements_per_task=3, messages=2, branch_prob=0.25
    )
    for seed in range(count // 2):
        program, _ = remove_loops(random_program(cfg, seed=seed))
        corpus.append(program)
    for seed in range(count - count // 2):
        corpus.append(
            random_serializable_program(tasks=3, rendezvous=5, seed=seed)
        )
    labelled = []
    for program in corpus:
        graph = build_sync_graph(program)
        try:
            exact = explore(graph, state_limit=50_000)
        except ExplorationLimitError:
            continue
        labelled.append((program, graph, exact.has_deadlock))
    return labelled


@pytest.fixture(scope="module")
def labelled():
    return _labelled_corpus()


def test_precision_spectrum(labelled, benchmark):
    def scenario():
        free = [(g) for (_, g, dl) in labelled if not dl]
        locked = [(g) for (_, g, dl) in labelled if dl]
        rows = []
        rates = {}
        for name, detector in DETECTORS:
            false_alarms = sum(
                1 for g in free if not detector(g).deadlock_free
            )
            misses = sum(1 for g in locked if detector(g).deadlock_free)
            assert misses == 0, f"{name} missed a real deadlock"
            rate = false_alarms / len(free) if free else 0.0
            rates[name] = rate
            rows.append(
                (
                    name,
                    len(locked),
                    0,
                    len(free),
                    false_alarms,
                    f"{rate:.0%}",
                )
            )
        print_table(
            "E9: precision on random programs (exact labels)",
            [
                "detector",
                "deadlocks",
                "missed",
                "free programs",
                "false alarms",
                "false-alarm rate",
            ],
            rows,
        )
        assert rates["refined"] <= rates["naive"]
        assert rates["refined+c4"] <= rates["refined"]
        assert rates["head-pairs"] <= rates["refined"]
        assert rates["combined"] <= rates["refined"]

    bench_once(benchmark, scenario)
@pytest.mark.parametrize(
    "name,detector", DETECTORS, ids=[n for n, _ in DETECTORS]
)
def test_detector_throughput(name, detector, labelled, benchmark):
    graphs = [g for (_, g, _) in labelled[:20]]

    def run_all():
        return [detector(g).deadlock_free for g in graphs]

    benchmark(run_all)


def test_certification_rate_at_scale(benchmark):
    """Certification rate on provably-free programs beyond exact reach.

    The unique-message serializable family is deadlock-free by
    construction (forced pairings + a global order), so it labels
    itself — letting precision be measured at sizes where exhaustive
    exploration is no longer the bottleneck's referee.
    """

    def scenario():
        rows = []
        for tasks, rendezvous in ((4, 10), (6, 20), (8, 40), (10, 80)):
            certified = 0
            total = 12
            for seed in range(total):
                program = random_serializable_program(
                    tasks=tasks,
                    rendezvous=rendezvous,
                    seed=seed,
                    unique_messages=True,
                )
                graph = build_sync_graph(program)
                certified += refined_deadlock_analysis(graph).deadlock_free
            rows.append(
                (f"{tasks} tasks / {rendezvous} rdv", certified, total)
            )
        print_table(
            "E9b: refined certification rate on provably-free programs",
            ["size", "certified", "programs"],
            rows,
        )
        # unique pairings leave no spurious cycles: certification is total
        assert all(c == t for (_, c, t) in rows)

    bench_once(benchmark, scenario)


def test_safety_at_scale(benchmark):
    """Zero missed deadlocks on programs far beyond exact labelling.

    Injected crossed waits guarantee a reachable deadlock in provably
    clean host programs; every detector must flag every one, at sizes
    where exhaustive exploration would need astronomically many waves.
    """
    from repro.workloads.random_programs import inject_deadlock

    at_scale = [
        ("naive", naive_deadlock_analysis),
        ("refined", refined_deadlock_analysis),
        ("refined+c4", constraint4_deadlock_analysis),
        ("head-tail", head_tail_analysis),
    ]  # the pair-based extensions are quadratic in hypotheses: skipped

    def scenario():
        rows = []
        for tasks, rendezvous in ((5, 15), (8, 30), (11, 50)):
            flagged = {name: 0 for name, _ in at_scale}
            total = 5
            for seed in range(total):
                host = random_serializable_program(
                    tasks=tasks,
                    rendezvous=rendezvous,
                    seed=seed,
                    unique_messages=True,
                )
                graph = build_sync_graph(inject_deadlock(host))
                for name, detector in at_scale:
                    if not detector(graph).deadlock_free:
                        flagged[name] += 1
            rows.append(
                (
                    f"{tasks}t/{rendezvous}r",
                    total,
                    *(flagged[name] for name, _ in at_scale),
                )
            )
        print_table(
            "E9c: injected deadlocks flagged at scale (no exact oracle)",
            ["size", "programs"] + [name for name, _ in at_scale],
            rows,
        )
        for row in rows:
            assert all(v == row[1] for v in row[2:]), "missed deadlock"

    bench_once(benchmark, scenario)

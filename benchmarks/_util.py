"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures or implied
quantitative claims (see DESIGN.md §3 and EXPERIMENTS.md).  Benchmarks
both *measure* (via pytest-benchmark) and *assert the shape* of each
result — who wins, what gets certified, what blows up.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable, Sequence


def print_table(
    title: str, header: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Print an aligned results table (visible with ``-s``)."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def bench_once(benchmark, fn):
    """Run a whole scenario exactly once under pytest-benchmark.

    Shape/table scenarios do real work (exhaustive exploration, corpus
    sweeps); one timed round keeps them visible in ``--benchmark-only``
    runs without repeating minutes of computation.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def attach_metrics(benchmark, fn: Callable[[], object]) -> dict:
    """Run ``fn`` once under observability and attach the snapshot.

    The run happens *outside* the timed rounds (observability stays
    disabled while pytest-benchmark measures), and the counter/gauge
    snapshot lands in ``benchmark.extra_info["metrics"]`` — so saved
    benchmark JSON carries pruning-effectiveness and precision counters
    that can be diffed across PRs alongside the timings.
    """
    from repro import obs
    from repro.obs.export import session_to_dict

    with obs.observed() as session:
        fn()
    snapshot = session_to_dict(session)
    # Span trees vary run to run; keep only the diff-stable scalars.
    benchmark.extra_info["metrics"] = {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
    }
    return snapshot


def write_bench_json(filename: str, payload: dict) -> Path:
    """Write a benchmark's headline numbers next to the repo root.

    ``BENCH_*.json`` files are the diffable artifacts of a benchmark
    run (EXPERIMENTS.md): stable keys, machine-readable, committed or
    archived by CI as needed.  Returns the path written.
    """
    path = Path(__file__).resolve().parent.parent / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def print_pruning_summary(title: str, snapshot: dict) -> None:
    """Print the per-rule pruning counters from an obs snapshot."""
    rows = [
        (key, value)
        for key, value in sorted(snapshot["counters"].items())
        if key.startswith("refined.pruned") and value
    ]
    print_table(title, ["counter", "value"], rows)

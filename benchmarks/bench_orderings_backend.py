"""Ablation — ordering-framework backends: sparse sets vs dense numpy.

Both backends compute the identical prefix-sound REL fixpoint.  The
benchmark records which one wins on which graph shape: long chains
(pipelines) favour the incremental sparse sets; fan-in graphs with many
partners per signal narrow the gap.  Equivalence of the outputs is
asserted on every measured graph.
"""

from __future__ import annotations

import pytest

from _util import bench_once, print_table
from repro.analysis.orderings import compute_orderings
from repro.analysis.orderings_matrix import compute_orderings_matrix
from repro.lang.ast_nodes import Accept, Program, Send, TaskDecl
from repro.syncgraph.build import build_sync_graph
from repro.workloads.patterns import handshake_chain, pipeline


def fanin_heavy(groups: int, senders: int) -> Program:
    """``groups`` accept tasks, each receiving from ``senders`` tasks.

    Every signal has ``senders`` send nodes — the many-partner shape
    that stresses the partner-intersection clause.
    """
    tasks = []
    for g in range(groups):
        tasks.append(
            TaskDecl(
                name=f"acc{g}",
                body=tuple(Accept(message="m") for _ in range(senders)),
            )
        )
    for s in range(senders):
        body = tuple(Send(task=f"acc{g}", message="m") for g in range(groups))
        tasks.append(TaskDecl(name=f"snd{s}", body=body))
    return Program(name=f"fanin_{groups}x{senders}", tasks=tuple(tasks))


GRAPH_FACTORIES = {
    "pipeline_20x3": lambda: pipeline(20, 3),
    "chain_10x3": lambda: handshake_chain(10, 3),
    "fanin_4x6": lambda: fanin_heavy(4, 6),
}


@pytest.mark.parametrize("name", sorted(GRAPH_FACTORIES))
def test_sparse_backend(name, benchmark):
    graph = build_sync_graph(GRAPH_FACTORIES[name]())
    benchmark(compute_orderings, graph)


@pytest.mark.parametrize("name", sorted(GRAPH_FACTORIES))
def test_matrix_backend(name, benchmark):
    graph = build_sync_graph(GRAPH_FACTORIES[name]())
    benchmark(compute_orderings_matrix, graph)


def test_backends_agree_and_report(benchmark):
    def scenario():
        import time

        rows = []
        for name, factory in sorted(GRAPH_FACTORIES.items()):
            graph = build_sync_graph(factory())
            t0 = time.perf_counter()
            sparse = compute_orderings(graph)
            t1 = time.perf_counter()
            dense = compute_orderings_matrix(graph)
            t2 = time.perf_counter()
            assert sparse.precedes == dense.precedes, name
            rows.append(
                (
                    name,
                    len(graph.rendezvous_nodes),
                    sparse.pair_count,
                    f"{(t1 - t0) * 1e3:.1f}",
                    f"{(t2 - t1) * 1e3:.1f}",
                )
            )
        print_table(
            "Ablation: ordering backends (identical outputs asserted)",
            ["graph", "nodes", "ordered pairs", "sparse ms", "dense ms"],
            rows,
        )

    bench_once(benchmark, scenario)

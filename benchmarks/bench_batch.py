"""Batch farm throughput: parallelism and cache effectiveness.

Runs a ~200-program random corpus through ``repro.farm`` four ways —
serial vs parallel, cold vs warm cache — and reports programs/sec for
each.  The shape to reproduce: the warm-cache rerun does no analysis at
all (every item a hit, identical verdicts), and the parallel cold run
scales with worker count on multi-core hardware.  Headline numbers land
in ``BENCH_batch.json`` for diffing across PRs.
"""

from __future__ import annotations

import os
import time

from _util import bench_once, print_table, write_bench_json
from repro.farm import ResultCache, run_batch
from repro.lang.pretty import pretty
from repro.workloads import random_serializable_program

CORPUS_SIZE = 200
# One worker per core: capping below cpu_count() once recorded a
# "parallel" run with jobs=1 (and a bogus 0.73x "speedup") on a large
# machine whose cpu_count() probe failed.  The JSON records the actual
# job count and the probed core count so the numbers are interpretable.
CPU_COUNT = os.cpu_count() or 1
JOBS = CPU_COUNT


def _corpus():
    programs = []
    for seed in range(CORPUS_SIZE):
        program = random_serializable_program(
            tasks=4, rendezvous=10, messages=3, seed=seed
        )
        programs.append((program.name, pretty(program)))
    return programs


def _timed_run(pairs, jobs, cache):
    t0 = time.perf_counter()
    report = run_batch(pairs, jobs=jobs, cache=cache)
    elapsed = time.perf_counter() - t0
    return report, elapsed


def test_batch_throughput(benchmark, tmp_path):
    pairs = _corpus()
    cache_dir = tmp_path / "cache"

    serial_cold, serial_cold_s = _timed_run(pairs, 1, None)

    def parallel_cold_scenario():
        return _timed_run(pairs, JOBS, ResultCache(cache_dir))

    parallel_cold, parallel_cold_s = bench_once(
        benchmark, parallel_cold_scenario
    )
    warm, warm_s = _timed_run(pairs, JOBS, ResultCache(cache_dir))
    serial_warm, serial_warm_s = _timed_run(pairs, 1, ResultCache(cache_dir))

    rows = [
        ("serial cold (jobs=1)", f"{serial_cold_s:.2f}",
         f"{CORPUS_SIZE / serial_cold_s:.0f}", serial_cold.cache_hits),
        (f"parallel cold (jobs={JOBS})", f"{parallel_cold_s:.2f}",
         f"{CORPUS_SIZE / parallel_cold_s:.0f}", parallel_cold.cache_hits),
        (f"parallel warm (jobs={JOBS})", f"{warm_s:.2f}",
         f"{CORPUS_SIZE / warm_s:.0f}", warm.cache_hits),
        ("serial warm (jobs=1)", f"{serial_warm_s:.2f}",
         f"{CORPUS_SIZE / serial_warm_s:.0f}", serial_warm.cache_hits),
    ]
    print_table(
        f"Batch throughput, {CORPUS_SIZE} random programs",
        ["configuration", "wall s", "programs/s", "cache hits"],
        rows,
    )

    # Shape assertions: every configuration agrees on every verdict...
    verdicts = [
        [item.result.deadlock.verdict for item in report.items]
        for report in (serial_cold, parallel_cold, warm, serial_warm)
    ]
    assert all(v == verdicts[0] for v in verdicts[1:])
    # ...and the warm rerun is pure cache.
    assert parallel_cold.cache_hits == 0
    assert warm.cache_hits == CORPUS_SIZE
    assert warm_s < parallel_cold_s + serial_cold_s

    # A 1-core machine cannot demonstrate parallel scaling: jobs=1 is
    # the serial fallback and the "speedup" would be pure run-to-run
    # noise that later PRs might diff as a regression (or, worse, quote
    # as a headline).  Refuse the number outright rather than record a
    # meaningless one; the cache-effect speedups stay, they are real on
    # any core count.
    if CPU_COUNT == 1:
        parallel_speedup = None
        speedup_note = (
            "refused: cpu_count == 1, the parallel run is the serial "
            "fallback and cannot demonstrate scaling"
        )
    else:
        parallel_speedup = round(serial_cold_s / parallel_cold_s, 3)
        speedup_note = None

    write_bench_json(
        "BENCH_batch.json",
        {
            "corpus_size": CORPUS_SIZE,
            "jobs": JOBS,
            "cpu_count": CPU_COUNT,
            "serial_cold_s": round(serial_cold_s, 4),
            "parallel_cold_s": round(parallel_cold_s, 4),
            "parallel_warm_s": round(warm_s, 4),
            "serial_warm_s": round(serial_warm_s, 4),
            "serial_programs_per_s": round(CORPUS_SIZE / serial_cold_s, 2),
            "parallel_programs_per_s": round(
                CORPUS_SIZE / parallel_cold_s, 2
            ),
            "warm_programs_per_s": round(CORPUS_SIZE / warm_s, 2),
            "parallel_speedup": parallel_speedup,
            "parallel_speedup_note": speedup_note,
            "warm_speedup": round(serial_cold_s / warm_s, 3),
            "warm_cache_hits": warm.cache_hits,
        },
    )

"""E2 — Figure 2: the stall/deadlock anomaly taxonomy.

Regenerates the paper's two archetypes: the wave model classifies the
Figure-2(a) program as a stall and the Figure-2(b) program as a
deadlock; Theorem 1's coverage property holds on every anomalous wave;
the runtime interpreter observes the same outcomes.
"""

from __future__ import annotations

import pytest

from _util import print_table
from repro.analysis.stalls import lemma3_stall_analysis
from repro.interp.runtime import sample_runs
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from repro.waves.explore import explore
from repro.workloads.corpus import paper_corpus


@pytest.fixture(scope="module")
def corpus():
    return paper_corpus()


def test_fig2a_is_a_stall(corpus, benchmark):
    program, _ = remove_loops(corpus["fig2a"].program)
    result = benchmark(explore, build_sync_graph(program))
    assert result.has_stall and not result.has_deadlock
    for classification in result.anomalous:
        assert classification.covers_all_nodes  # Theorem 1


def test_fig2b_is_a_deadlock(corpus, benchmark):
    result = benchmark(
        explore, build_sync_graph(corpus["fig2b"].program)
    )
    assert result.has_deadlock and not result.has_stall
    for classification in result.anomalous:
        assert classification.covers_all_nodes  # Theorem 1


def test_fig2_runtime_agrees(corpus, benchmark):
    runs = benchmark(
        sample_runs, corpus["fig2b"].program, 40
    )
    assert runs.deadlock_runs == 40
    stall_runs = sample_runs(corpus["fig2a"].program, runs=40)
    assert stall_runs.stall_runs > 0
    assert stall_runs.deadlock_runs == 0
    print_table(
        "E2: anomaly taxonomy (wave model vs 40 concrete runs)",
        ["program", "wave verdict", "runtime deadlocks", "runtime stalls"],
        [
            ("fig2a", "stall", 0, stall_runs.stall_runs),
            ("fig2b", "deadlock", runs.deadlock_runs, 0),
        ],
    )


def test_fig2a_lemma3_flags_imbalance(corpus, benchmark):
    report = benchmark(lemma3_stall_analysis, corpus["fig2b"].program)
    # fig2b is balanced (deadlock, not stall); fig2a is detected by the
    # unknown/possible verdicts instead
    assert report.stall_free

#!/usr/bin/env python3
"""Lint a deliberately suspicious program, then fix it rule by rule.

The lint engine reports *where* a program is suspicious as
source-located diagnostics, before (and without) the full
certification pipeline.  This example lints a program that trips six
different paper-grounded rules, shows the three output backends
(text, JSON, SARIF), and then repairs the program.  One candidate
survives the repair — ADL010, the constraint-1 coupling-cycle screen —
so the example runs the full certification pipeline to refute it and
suppresses the refuted candidate with a `-- lint: disable` comment:
the intended division of labor between the cheap screen and the
polynomial certificate.

Run with::

    python examples/lint_walkthrough.py
"""

from __future__ import annotations

import json

import repro
from repro.lint import (
    lint_source,
    lint_to_dict,
    render_text,
    sarif_report,
    validate_sarif_shape,
)

SUSPICIOUS = """\
program courier;

task dispatcher is
begin
    send courier1.pickup;
    send courier1.manifest;
    accept receipt;
    null;
end;

task courier1 is
begin
    accept pickup;
    for attempt in 3 .. 1 loop
        send dispatcher.retry;
    end loop;
    while traffic loop
        send depot.scan;
        accept scanned;
    end loop;
end;

task depot is
begin
    accept scan;
    send courier1.scanned;
end;
"""

REPAIRED = """\
program courier;

task dispatcher is
begin
    send courier1.pickup;
    send courier1.manifest;
    accept receipt;
    null;
end;

task courier1 is
begin
    accept pickup;
    accept manifest;
    for attempt in 1 .. 3 loop
        send depot.scan;  -- lint: disable=coupling-cycle
    end loop;
    accept logged;
    send dispatcher.receipt;
end;

task depot is
begin
    for job in 1 .. 3 loop
        accept scan;
    end loop;
    send courier1.logged;
end;
"""


def main() -> None:
    print("=== suspicious program: text backend ===")
    result = lint_source(SUSPICIOUS, path="courier.adl")
    print(render_text(result))

    print("\n=== same run: JSON backend (summary only) ===")
    payload = lint_to_dict(result)
    print(json.dumps(payload["summary"], indent=2))
    print("rules fired:", ", ".join(result.rule_ids))

    print("\n=== same run: SARIF 2.1.0 backend ===")
    doc = sarif_report([result])
    run = doc["runs"][0]
    print(
        f"tool {run['tool']['driver']['name']}, "
        f"{len(run['tool']['driver']['rules'])} rules in catalog, "
        f"{len(run['results'])} results, "
        f"shape problems: {validate_sarif_shape(doc) or 'none'}"
    )

    print("\n=== repaired program: certify, then suppress the candidate ===")
    # Without the suppression, ADL010 would still flag a candidate
    # coupling cycle in the scan loop — the screen is conservative by
    # design.  The certification pipeline refutes it:
    print(repro.analyze(REPAIRED).describe())
    repaired = lint_source(REPAIRED, path="courier.adl")
    print(render_text(repaired))


if __name__ == "__main__":
    main()

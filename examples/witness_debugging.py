#!/usr/bin/env python3
"""From 'possible deadlock' to a concrete failing schedule.

A static alarm is only half the story: this example escalates the
refined algorithm's report to a bounded exact search, prints the
shortest schedule into the stuck state, replays the paper's
NOT-SEEN/READY/WAITING/EXECUTED node states along it, and renders the
whole wave graph to Graphviz.

Run with::

    python examples/witness_debugging.py [--dot waves.dot]
"""

from __future__ import annotations

import sys

from repro.analysis.confirm import confirm_deadlock_report
from repro.analysis.refined import refined_deadlock_analysis
from repro.syncgraph.build import build_sync_graph
from repro.waves.dot import wave_graph_to_dot
from repro.waves.states import trace_states
from repro.workloads.adl_corpus import adl_corpus


def main() -> None:
    entry = adl_corpus()["atm_deadlock"]
    print("program under audit: atm_deadlock")
    print(entry.description, "\n")

    graph = build_sync_graph(entry.program)
    report = refined_deadlock_analysis(graph)
    print(report.describe())

    confirmed = confirm_deadlock_report(graph, report)
    print(f"\nconfirmation outcome: {confirmed.outcome}")
    witness = confirmed.witness
    assert witness is not None
    print(witness.describe())

    print("\nnode states along the schedule (paper §2 bookkeeping):")
    for step, snapshot in enumerate(trace_states(graph, witness)):
        snapshot.check_invariants(graph)
        ready = ", ".join(str(n) for n in snapshot.ready_nodes()) or "-"
        waiting = ", ".join(str(n) for n in snapshot.waiting_nodes()) or "-"
        print(f"  after step {step}:")
        print(f"    READY:   {ready}")
        print(f"    WAITING: {waiting}")
    final = trace_states(graph, witness)[-1]
    assert final.ready_nodes() == ()
    print("\nfinal wave has no READY pair: every task waits forever.")

    if "--dot" in sys.argv:
        path = sys.argv[sys.argv.index("--dot") + 1]
        with open(path, "w") as fh:
            fh.write(wave_graph_to_dot(graph))
        print(f"wave graph written to {path} (deadlocked waves in red)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Dining philosophers: find the circular wait statically, then fix it.

The classic symmetric pickup order deadlocks; the standard asymmetry
fix (last philosopher grabs right-first) removes the circular wait.
This example shows all three tools agreeing:

* the refined static algorithm (polynomial),
* exhaustive wave exploration (exact, exponential),
* the concrete interpreter (sampled schedules).

Run with::

    python examples/dining_philosophers.py [n]
"""

from __future__ import annotations

import sys

from repro.analysis.refined import refined_deadlock_analysis
from repro.interp.runtime import sample_runs
from repro.lang.pretty import pretty
from repro.syncgraph.build import build_sync_graph
from repro.waves.explore import explore
from repro.workloads.patterns import dining_philosophers


def report(label: str, deadlock: bool) -> None:
    print(f"  {label:<28} {'POSSIBLE DEADLOCK' if deadlock else 'deadlock-free'}")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3

    for deadlocky in (True, False):
        program = dining_philosophers(n, deadlock=deadlocky)
        print(f"\n=== {program.name} ===")
        if n <= 3 and deadlocky:
            print(pretty(program))

        graph = build_sync_graph(program)
        static = refined_deadlock_analysis(graph)
        report("refined static analysis:", not static.deadlock_free)

        exact = explore(graph)
        report("exact wave exploration:", exact.has_deadlock)

        runs = sample_runs(program, runs=200)
        print(
            f"  {'interpreter (200 runs):':<28} "
            f"{runs.deadlock_runs} deadlocked, {runs.completed} completed"
        )

        if deadlocky:
            assert exact.has_deadlock and not static.deadlock_free
            if runs.example_deadlock is not None:
                waiting = ", ".join(
                    f"{task} on {req.signal}"
                    for task, req in sorted(
                        runs.example_deadlock.waiting.items()
                    )
                )
                print(f"  one stuck schedule: {waiting}")
        else:
            assert not exact.has_deadlock
            assert runs.deadlock_runs == 0

    print(
        "\nThe asymmetric variant eliminates every deadlock; the static "
        "analysis stays conservative on it (forks share signal types), "
        "which is exactly the precision trade-off the paper studies."
    )


if __name__ == "__main__":
    main()

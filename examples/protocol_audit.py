#!/usr/bin/env python3
"""Audit a multi-task protocol: deadlock certificates, stall findings,
and Graphviz artifacts.

The protocol: a coordinator runs a two-phase commit against two
participants, with a logger recording the decision.  One variant is
clean; the buggy variant makes the coordinator collect acknowledgements
in the wrong phase, which a participant cannot satisfy yet.

Run with::

    python examples/protocol_audit.py [--dot OUT_PREFIX]
"""

from __future__ import annotations

import sys

import repro
from repro.syncgraph.build import build_sync_graph
from repro.syncgraph.clg import build_clg
from repro.syncgraph.dot import clg_to_dot, sync_graph_to_dot
from repro.transforms.unroll import remove_loops

TWO_PHASE_COMMIT = """
program two_phase_commit;

task coordinator is
begin
    send p1.prepare;
    send p2.prepare;
    accept vote;            -- one vote from each participant
    accept vote;
    send logger.decision;
    send p1.commit;
    send p2.commit;
    accept ack;
    accept ack;
end;

task p1 is
begin
    accept prepare;
    send coordinator.vote;
    accept commit;
    send coordinator.ack;
end;

task p2 is
begin
    accept prepare;
    send coordinator.vote;
    accept commit;
    send coordinator.ack;
end;

task logger is
begin
    accept decision;
end;
"""

# Bug: the coordinator demands both acks BEFORE issuing the second
# commit, but p2 only acknowledges after receiving it.
BUGGY_COMMIT = """
program buggy_commit;

task coordinator is
begin
    send p1.prepare;
    send p2.prepare;
    accept vote;
    accept vote;
    send p1.commit;
    accept ack;
    accept ack;             -- waits for p2's ack...
    send p2.commit;         -- ...which needs this commit first
end;

task p1 is
begin
    accept prepare;
    send coordinator.vote;
    accept commit;
    send coordinator.ack;
end;

task p2 is
begin
    accept prepare;
    send coordinator.vote;
    accept commit;
    send coordinator.ack;
end;
"""


def audit(source: str) -> "repro.AnalysisResult":
    result = repro.analyze(source, algorithm="refined")
    print(result.describe())
    exact = repro.analyze(source, algorithm="exact")
    print(
        "exact oracle:",
        "deadlock feasible"
        if not exact.deadlock.deadlock_free
        else "no feasible deadlock",
    )
    return result


def main() -> None:
    dot_prefix = None
    if "--dot" in sys.argv:
        dot_prefix = sys.argv[sys.argv.index("--dot") + 1]

    print("=== clean two-phase commit ===")
    clean = audit(TWO_PHASE_COMMIT)
    assert clean.deadlock.deadlock_free

    print("\n=== buggy variant ===")
    buggy = audit(BUGGY_COMMIT)
    assert not buggy.deadlock.deadlock_free
    print("\ncycle evidence:")
    for evidence in buggy.deadlock.evidence:
        print(" ", evidence.describe())

    if dot_prefix:
        program, _ = remove_loops(buggy.program)
        graph = build_sync_graph(program)
        with open(f"{dot_prefix}_sync.dot", "w") as fh:
            fh.write(sync_graph_to_dot(graph))
        with open(f"{dot_prefix}_clg.dot", "w") as fh:
            fh.write(clg_to_dot(build_clg(graph)))
        print(f"\nwrote {dot_prefix}_sync.dot and {dot_prefix}_clg.dot")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: certify a small tasking program deadlock- and stall-free.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro

HANDSHAKE = """
program handshake;

task client is
begin
    send server.request;
    accept reply;
end;

task server is
begin
    accept request;
    send client.reply;
end;
"""

CROSSED = """
program crossed;

task left is
begin
    send right.ping;    -- waits for right to accept ping...
    accept pong;
end;

task right is
begin
    send left.pong;     -- ...while right waits for left to accept pong
    accept ping;
end;
"""


def main() -> None:
    print("--- a correct handshake ---")
    result = repro.analyze(HANDSHAKE)
    print(result.describe())
    assert result.deadlock.deadlock_free
    assert result.stall.stall_free

    print("\n--- two crossed sends: the minimal deadlock ---")
    result = repro.analyze(CROSSED)
    print(result.describe())
    assert not result.deadlock.deadlock_free

    # The evidence names the hypothesized head node and the cycle.
    for evidence in result.deadlock.evidence:
        print("evidence:", evidence.describe())

    # The exact (exponential) oracle agrees, as it must on a real
    # deadlock:
    exact = repro.analyze(CROSSED, algorithm="exact")
    assert not exact.deadlock.deadlock_free
    print("\nexact exploration confirms the deadlock.")

    # --- observability: where did the time go, what got pruned? ---
    # The CLI equivalents are:
    #
    #     repro-analyze program.adl --trace
    #     repro-analyze program.adl --json --metrics-out metrics.json
    #     repro-analyze program.adl --metrics-out metrics.prom
    #
    from repro import obs
    from repro.obs.export import session_to_dict

    print("\n--- observed rerun: span tree and pruning counters ---")
    with obs.observed() as session:
        repro.analyze(HANDSHAKE)
    print(session.tracer.render())
    snapshot = session_to_dict(session)
    for name, value in sorted(snapshot["counters"].items()):
        if value:
            print(f"{name} = {value}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Why exact deadlock detection is NP-hard: the Theorem-2 reduction live.

Builds the paper's Appendix-A program for a 3-CNF formula, shows the
generated tasks, and demonstrates that finding a deadlock cycle with
unsequenceable head nodes *is* solving the formula — validated against
a DPLL solver on random instances.

Run with::

    python examples/sat_reduction_demo.py
"""

from __future__ import annotations

from repro.lang.ast_nodes import statement_count
from repro.lang.pretty import pretty
from repro.reductions.cnf import CNF, random_cnf
from repro.reductions.dpll import is_satisfiable, solve
from repro.reductions.theorem2 import (
    build_theorem2_program,
    find_unsequenceable_cycle,
)
from repro.reductions.theorem3 import (
    build_theorem3_graph,
    find_constraint2_cycle,
)


def main() -> None:
    # The paper's running example: (a + b + ~c)(a + c + ~d)
    formula = CNF.of(
        [(1, True), (2, True), (3, False)],
        [(1, True), (3, True), (4, False)],
    )
    print(f"formula: {formula}")
    print(f"DPLL: {'satisfiable' if is_satisfiable(formula) else 'UNSAT'}, "
          f"model = {solve(formula)}")

    instance = build_theorem2_program(formula)
    program = instance.program
    print(
        f"\nTheorem-2 program: {len(program.tasks)} tasks, "
        f"{statement_count(program)} statements"
    )
    print("one literal task (clause 1, literal 3 = ~x3):\n")
    task = program.task(instance.literal_tasks[(1, 3)])
    print(pretty(program.with_tasks([task])))

    assignment = find_unsequenceable_cycle(instance)
    print(f"deadlock cycle with unsequenceable heads -> assignment "
          f"{assignment}")
    assert assignment is not None

    graph_instance = build_theorem3_graph(formula)
    assignment3 = find_constraint2_cycle(graph_instance)
    print(f"Theorem-3 cycle without rendezvousing heads -> {assignment3}")

    print("\nvalidating both reductions on 20 random formulas...")
    for seed in range(20):
        f = random_cnf(4, 6, seed=seed)
        sat = is_satisfiable(f)
        got2 = find_unsequenceable_cycle(build_theorem2_program(f))
        got3 = find_constraint2_cycle(build_theorem3_graph(f))
        assert (got2 is not None) == sat == (got3 is not None)
        print(f"  seed {seed:2d}: {'SAT  ' if sat else 'UNSAT'} "
              f"cycle2={got2 is not None} cycle3={got3 is not None}")
    print("all agree: deadlock-cycle existence == satisfiability")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Certifying looping producer/consumer pipelines.

Source programs with loops cannot be fed to the CLG algorithms
directly; the Lemma-1 double-unroll transform removes the loops while
preserving every deadlock.  This example certifies a looping pipeline,
injects a back-edge bug that only manifests on the *second* iteration,
and shows the transform preserving it — then compares analysis cost
against exhaustive exploration as the pipeline grows.

Run with::

    python examples/pipeline_certification.py
"""

from __future__ import annotations

import time

import repro
from repro.analysis.refined import refined_deadlock_analysis
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from repro.waves.explore import explore
from repro.workloads.patterns import pipeline

LOOPING_PIPELINE = """
program looping_pipeline;

task producer is
begin
    while more loop
        send stage.item;
    end loop;
    send stage.eof;
end;

task stage is
begin
    while more loop
        accept item;
        send consumer.cooked;
    end loop;
    accept eof;
    send consumer.eof2;
end;

task consumer is
begin
    while more loop
        accept cooked;
    end loop;
    accept eof2;
end;
"""

# Bug: from the second iteration on, the stage demands a credit token
# *before* accepting the item, while the producer only hands out the
# credit after its item is taken.
SECOND_ITERATION_BUG = """
program second_iteration_bug;

task producer is
begin
    send stage.item;
    while more loop
        send stage.item;
        accept credit;
    end loop;
end;

task stage is
begin
    accept item;
    while more loop
        send producer.credit;
        accept item;
    end loop;
end;
"""


def main() -> None:
    print("=== looping pipeline ===")
    result = repro.analyze(LOOPING_PIPELINE)
    print(result.describe())
    assert result.deadlock.loops_transformed
    assert result.deadlock.deadlock_free

    print("\n=== a bug that needs the second loop iteration ===")
    result = repro.analyze(SECOND_ITERATION_BUG)
    print(result.describe())
    transformed, _ = remove_loops(result.program)
    exact = explore(build_sync_graph(transformed))
    print(
        "exact oracle on the unrolled program:",
        "deadlock feasible" if exact.has_deadlock else "clean",
    )

    print("\n=== cost: refined vs exhaustive as the pipeline grows ===")
    print(f"{'stages':>6} {'refined ms':>11} {'exact ms':>9} {'waves':>7}")
    for stages in (3, 5, 7, 9):
        program = pipeline(stages, rounds=2)
        graph = build_sync_graph(program)
        t0 = time.perf_counter()
        report = refined_deadlock_analysis(graph)
        refined_ms = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        exact = explore(graph)
        exact_ms = (time.perf_counter() - t0) * 1e3
        assert report.deadlock_free and not exact.has_deadlock
        print(
            f"{stages:>6} {refined_ms:>11.1f} {exact_ms:>9.1f} "
            f"{exact.visited_count:>7}"
        )
    print(
        "\nThe polynomial certificate keeps up while the exact wave "
        "count grows combinatorially - the paper's core trade-off."
    )


if __name__ == "__main__":
    main()

"""Execution-wave semantics tests (paper, Section 2)."""

import pytest

from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph
from repro.waves.anomaly import (
    classify_wave,
    deadlock_sets,
    is_anomalous,
    stall_nodes,
)
from repro.waves.coupling import coupled_to, transitively_coupled_sets
from repro.waves.wave import Wave, initial_waves, next_waves, ready_pairs


def graph_for(src):
    return build_sync_graph(parse_program(src))


class TestInitialWaves:
    def test_single_initial_wave_for_straight_line(self, handshake):
        sg = build_sync_graph(handshake)
        waves = initial_waves(sg)
        assert len(waves) == 1
        assert all(p.is_rendezvous for p in waves[0].positions)

    def test_branching_entry_multiplies_waves(self):
        sg = graph_for(
            "program p;"
            "task a is begin if ? then send b.x; else send b.y; end if; end;"
            "task b is begin accept x; end;"
        )
        # task a: two entry options; task b: one
        assert len(initial_waves(sg)) == 2

    def test_rendezvous_free_task_starts_at_e(self):
        sg = graph_for(
            "program p; task a is begin null; end;"
            "task b is begin null; end;"
        )
        (wave,) = initial_waves(sg)
        assert wave.is_terminal(sg)


class TestStepping:
    def test_ready_pairs_on_handshake(self, handshake):
        sg = build_sync_graph(handshake)
        (wave,) = initial_waves(sg)
        assert len(ready_pairs(sg, wave)) == 1

    def test_next_waves_advances_both_tasks(self, handshake):
        sg = build_sync_graph(handshake)
        (wave,) = initial_waves(sg)
        nexts = list(next_waves(sg, wave))
        assert len(nexts) == 1
        nxt = nexts[0]
        assert all(
            p is not q for p, q in zip(wave.positions, nxt.positions)
        )

    def test_terminal_wave_has_no_successors(self, handshake):
        sg = build_sync_graph(handshake)
        wave = Wave((sg.e, sg.e))
        assert wave.is_terminal(sg)
        assert list(next_waves(sg, wave)) == []

    def test_wave_replace_is_functional(self, handshake):
        sg = build_sync_graph(handshake)
        (wave,) = initial_waves(sg)
        other = wave.replace(0, sg.e)
        assert other is not wave
        assert wave.positions[0] is not sg.e


class TestAnomalies:
    def test_handshake_initial_wave_not_anomalous(self, handshake):
        sg = build_sync_graph(handshake)
        (wave,) = initial_waves(sg)
        assert not is_anomalous(sg, wave)

    def test_crossed_initial_wave_anomalous(self, crossed):
        sg = build_sync_graph(crossed)
        (wave,) = initial_waves(sg)
        assert is_anomalous(sg, wave)

    def test_all_terminal_wave_not_anomalous(self, handshake):
        sg = build_sync_graph(handshake)
        assert not is_anomalous(sg, Wave((sg.e, sg.e)))

    def test_stall_nodes_unmatched_send(self, stall_program):
        sg = build_sync_graph(stall_program)
        (wave,) = initial_waves(sg)
        assert is_anomalous(sg, wave)
        stalls = stall_nodes(sg, wave)
        assert [s.triple for s in stalls] == [("t2", "m", "+")]

    def test_crossed_wave_is_deadlock_not_stall(self, crossed):
        sg = build_sync_graph(crossed)
        (wave,) = initial_waves(sg)
        assert stall_nodes(sg, wave) == ()
        sets = deadlock_sets(sg, wave)
        assert len(sets) == 1
        assert len(sets[0]) == 2

    def test_classify_rejects_non_anomalous(self, handshake):
        sg = build_sync_graph(handshake)
        (wave,) = initial_waves(sg)
        with pytest.raises(ValueError):
            classify_wave(sg, wave)

    def test_theorem1_coverage_on_crossed(self, crossed):
        sg = build_sync_graph(crossed)
        (wave,) = initial_waves(sg)
        assert classify_wave(sg, wave).covers_all_nodes


class TestCoupling:
    def test_crossed_coupling_is_mutual(self, crossed):
        sg = build_sync_graph(crossed)
        (wave,) = initial_waves(sg)
        a, b = wave.positions
        assert b in coupled_to(sg, wave, a)
        assert a in coupled_to(sg, wave, b)

    def test_coupling_requires_strict_descendant(self, handshake):
        sg = build_sync_graph(handshake)
        (wave,) = initial_waves(sg)
        send, accept = wave.positions
        # the handshake pair rendezvouses directly: accept's partner is
        # send itself, not a strict descendant, so no coupling
        assert send not in coupled_to(sg, wave, accept)

    def test_transitively_coupled_sets_on_three_task_cycle(self):
        sg = graph_for(
            "program p;"
            "task a is begin send b.m1; accept m3; end;"
            "task b is begin send c.m2; accept m1; end;"
            "task c is begin send a.m3; accept m2; end;"
        )
        (wave,) = initial_waves(sg)
        sets = transitively_coupled_sets(sg, wave)
        assert len(sets) == 1
        assert len(sets[0]) == 3

    def test_coupled_waves_classification(self):
        # t3 waits on a signal only the deadlocked t1 could send later:
        # it is transitively coupled to the deadlock, not part of it.
        sg = graph_for(
            "program p;"
            "task t1 is begin send t2.a; accept x; send t3.z; end;"
            "task t2 is begin send t1.x; accept a; end;"
            "task t3 is begin accept z; end;"
        )
        (wave,) = initial_waves(sg)
        info = classify_wave(sg, wave)
        assert info.has_deadlock
        coupled_tasks = {n.task for n in info.coupled_to_anomaly}
        assert coupled_tasks == {"t3"}
        assert info.covers_all_nodes


class TestWaveGraphExport:
    def test_deadlock_highlighted(self, crossed):
        from repro.waves.dot import wave_graph_to_dot

        sg = build_sync_graph(crossed)
        dot = wave_graph_to_dot(sg)
        assert dot.startswith("digraph")
        assert "indianred" in dot

    def test_terminal_doublecircled(self, handshake):
        from repro.waves.dot import wave_graph_to_dot

        dot = wave_graph_to_dot(build_sync_graph(handshake))
        assert "doublecircle" in dot
        assert "indianred" not in dot and "orange" not in dot

    def test_stall_highlighted(self, stall_program):
        from repro.waves.dot import wave_graph_to_dot

        dot = wave_graph_to_dot(build_sync_graph(stall_program))
        assert "orange" in dot

    def test_state_limit(self):
        from repro.errors import ExplorationLimitError
        from repro.waves.dot import wave_graph_to_dot
        from repro.workloads.patterns import dining_philosophers

        with pytest.raises(ExplorationLimitError):
            wave_graph_to_dot(
                build_sync_graph(dining_philosophers(4, True)),
                state_limit=3,
            )

    def test_edges_labelled_with_signals(self, handshake):
        from repro.waves.dot import wave_graph_to_dot

        dot = wave_graph_to_dot(build_sync_graph(handshake))
        assert 'label="t2.sig1"' in dot

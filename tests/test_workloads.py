"""Workload generators and the paper corpus."""

import pytest

from repro.lang.validate import validate_program
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from repro.waves.explore import explore
from repro.workloads.corpus import paper_corpus
from repro.workloads.patterns import (
    client_server,
    crossed_pair,
    dining_philosophers,
    handshake_chain,
    master_workers,
    pipeline,
    token_ring,
)
from repro.workloads.random_programs import (
    RandomProgramConfig,
    random_program,
    random_serializable_program,
)


class TestPatterns:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: dining_philosophers(4, True),
            lambda: dining_philosophers(4, False),
            lambda: pipeline(4, 3),
            lambda: client_server(3, 2),
            lambda: client_server(2, 1, shared_reply=True),
            lambda: token_ring(5, 2),
            lambda: master_workers(3, 2),
            lambda: crossed_pair(),
            lambda: handshake_chain(4, 2),
        ],
    )
    def test_patterns_validate(self, factory):
        validate_program(factory())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            dining_philosophers(1)
        with pytest.raises(ValueError):
            pipeline(1)
        with pytest.raises(ValueError):
            token_ring(1)

    def test_known_verdicts(self):
        assert explore(build_sync_graph(pipeline(3, 2))).has_anomaly is False
        assert explore(build_sync_graph(crossed_pair())).has_deadlock

    def test_philosopher_asymmetry_fixes_deadlock(self):
        bad = explore(build_sync_graph(dining_philosophers(3, True)))
        good = explore(build_sync_graph(dining_philosophers(3, False)))
        assert bad.has_deadlock and not good.has_deadlock


class TestRandomPrograms:
    def test_deterministic(self):
        cfg = RandomProgramConfig(tasks=3, statements_per_task=4)
        assert random_program(cfg, seed=5) == random_program(cfg, seed=5)

    def test_validates_for_many_seeds(self):
        cfg = RandomProgramConfig(
            tasks=4, statements_per_task=5, branch_prob=0.3, loop_prob=0.1
        )
        for seed in range(25):
            validate_program(random_program(cfg, seed=seed))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomProgramConfig(tasks=1)

    def test_serializable_programs_can_complete(self):
        for seed in range(10):
            program = random_serializable_program(
                tasks=3, rendezvous=6, seed=seed
            )
            result = explore(build_sync_graph(program))
            assert result.can_terminate

    def test_serializable_programs_are_balanced(self):
        from repro.analysis.stalls import lemma3_stall_analysis

        for seed in range(10):
            program = random_serializable_program(
                tasks=3, rendezvous=6, seed=seed
            )
            assert lemma3_stall_analysis(program).stall_free


class TestCorpus:
    def test_all_figures_present(self, corpus):
        assert set(corpus) == {
            "fig1",
            "fig2a",
            "fig2b",
            "fig3",
            "fig4a",
            "fig4c",
            "fig5a",
            "fig5bc",
            "fig5d",
        }

    def test_corpus_programs_validate(self, corpus):
        for entry in corpus.values():
            validate_program(entry.program)

    def test_expectations_match_exact_semantics(self, corpus):
        for entry in corpus.values():
            program, _ = remove_loops(entry.program)
            result = explore(build_sync_graph(program))
            assert result.has_deadlock == entry.expect_deadlock, entry.name
            assert result.has_stall == entry.expect_stall, entry.name


class TestNewPatterns:
    def test_barrier_clean(self):
        from repro.workloads.patterns import barrier

        result = explore(build_sync_graph(barrier(3, 2)))
        assert not result.has_anomaly
        assert result.can_terminate

    def test_gossip_ring_clean_and_certified(self):
        from repro.analysis.refined import refined_deadlock_analysis
        from repro.workloads.patterns import gossip_ring

        graph = build_sync_graph(gossip_ring(5))
        assert not explore(graph).has_anomaly
        assert refined_deadlock_analysis(graph).deadlock_free

    def test_barrier_parameter_validation(self):
        from repro.workloads.patterns import barrier, gossip_ring

        with pytest.raises(ValueError):
            barrier(0)
        with pytest.raises(ValueError):
            gossip_ring(1)


class TestUniqueMessageFamily:
    @pytest.mark.parametrize("seed", range(8))
    def test_provably_deadlock_free(self, seed):
        program = random_serializable_program(
            tasks=4, rendezvous=8, seed=seed, unique_messages=True
        )
        assert not explore(build_sync_graph(program)).has_anomaly

    def test_refined_certifies_unique_family(self):
        from repro.analysis.refined import refined_deadlock_analysis

        for seed in range(8):
            program = random_serializable_program(
                tasks=4, rendezvous=8, seed=seed, unique_messages=True
            )
            assert refined_deadlock_analysis(
                build_sync_graph(program)
            ).deadlock_free

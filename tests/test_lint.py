"""Lint engine tests: spans, rules, suppressions, backends, properties."""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.diagnostics import Diagnostic, Related, Severity
from repro.lang.ast_nodes import Accept, For, If, Program, Send, While
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.lint import (
    all_rules,
    get_rule,
    lint_program,
    lint_source,
    lint_to_dict,
    render_text,
    sarif_report,
    scan_suppressions,
    validate_sarif_shape,
)
from repro.transforms.unroll import remove_loops
from repro.workloads.adl_corpus import lint_corpus
from repro.workloads.random_programs import (
    RandomProgramConfig,
    random_program,
    random_serializable_program,
)
from tests.conftest import CROSSED_SRC, HANDSHAKE_SRC, STALL_SRC


def rules_of(result):
    return {d.rule_id for d in result.diagnostics}


class TestSpans:
    def test_statement_spans_are_threaded(self):
        program = parse_program(HANDSHAKE_SRC)
        send = program.tasks[0].body[0]
        assert isinstance(send, Send)
        assert send.loc is not None
        assert send.loc.line == 3  # HANDSHAKE_SRC opens with a newline
        assert send.loc.column > 1

    def test_task_and_program_spans(self):
        program = parse_program(HANDSHAKE_SRC)
        assert program.loc is not None
        assert all(task.loc is not None for task in program.tasks)

    def test_nested_statement_spans(self):
        src = (
            "program p;\n"
            "task t is\n"
            "begin\n"
            "    if ? then\n"
            "        send u.m;\n"
            "    elsif ? then\n"
            "        null;\n"
            "    end if;\n"
            "end;\n"
            "task u is begin accept m; end;\n"
        )
        program = parse_program(src)
        outer = program.tasks[0].body[0]
        assert isinstance(outer, If)
        assert outer.loc.line == 4
        send = outer.then_body[0]
        assert send.loc.line == 5
        assert send.loc.column == 9
        # the desugared elsif chain gets its own span
        inner = outer.else_body[0]
        assert isinstance(inner, If)
        assert inner.loc is not None

    def test_loc_ignored_by_equality(self):
        a = parse_program("program p;\ntask t is begin null; end;")
        b = parse_program("program p;\n\n\ntask t is begin null; end;")
        assert a == b
        assert a.tasks[0].body[0].loc != b.tasks[0].body[0].loc


class TestDiagnostic:
    def test_format(self):
        program = parse_program(STALL_SRC)
        result = lint_program(program, path="stall.adl")
        line = result.diagnostics[0].format("stall.adl")
        assert line.startswith("stall.adl:3:")
        assert "[ADL001]" in line

    def test_severity_validation(self):
        with pytest.raises(ValueError):
            Diagnostic(rule_id="X", severity="fatal", message="m")

    def test_severity_ordering(self):
        assert Severity.at_least("error", "warning")
        assert Severity.at_least("warning", "warning")
        assert not Severity.at_least("note", "warning")

    def test_to_dict_roundtrip_fields(self):
        program = parse_program(STALL_SRC)
        diag = lint_program(program).diagnostics[0]
        payload = diag.to_dict()
        assert payload["rule"] == diag.rule_id
        assert payload["span"]["line"] == diag.line


class TestRegistry:
    def test_twelve_rules_registered(self):
        rules = all_rules()
        assert [r.rule_id for r in rules] == [
            f"ADL{i:03d}" for i in range(1, 13)
        ]

    def test_rules_have_paper_refs_and_summaries(self):
        for rule in all_rules():
            assert rule.summary
            assert rule.paper_ref
            assert rule.name == rule.name.lower()
            Severity.rank(rule.severity)

    def test_get_rule(self):
        assert get_rule("ADL003").name == "self-rendezvous"


class TestRules:
    def test_adl001_unmatched_send(self):
        result = lint_source(STALL_SRC)
        (diag,) = [d for d in result.diagnostics if d.rule_id == "ADL001"]
        assert "never accepted" in diag.message
        assert diag.task == "t1"
        assert diag.span is not None

    def test_adl002_unmatched_accept(self):
        result = lint_source(
            "program p;\ntask t is begin accept ghost; end;\n"
            "task u is begin null; end;"
        )
        assert "ADL002" in rules_of(result)

    def test_adl003_self_rendezvous(self):
        result = lint_source(
            "program p;\ntask t is begin send t.m; accept m; end;"
        )
        (diag,) = [d for d in result.diagnostics if d.rule_id == "ADL003"]
        assert diag.severity == Severity.ERROR

    def test_adl004_unknown_send_target_and_call(self):
        result = lint_source(
            "program p;\ntask t is begin send ghost.m; call phantom; end;"
        )
        found = [d for d in result.diagnostics if d.rule_id == "ADL004"]
        assert len(found) == 2
        assert {"ghost" in d.message or "phantom" in d.message for d in found}

    def test_adl004_not_duplicated_by_adl001(self):
        # a send to an unknown task is ADL004's finding, not ADL001's
        result = lint_source("program p;\ntask t is begin send ghost.m; end;")
        assert "ADL001" not in rules_of(result)

    def test_adl005_duplicate_task_with_related(self):
        result = lint_source(
            "program p;\ntask t is begin null; end;\n"
            "task t is begin null; end;"
        )
        (diag,) = [d for d in result.diagnostics if d.rule_id == "ADL005"]
        assert diag.span.line == 3
        assert diag.related[0].span.line == 2

    def test_adl006_recursive_procedure(self):
        result = lint_source(
            "program p;\n"
            "procedure a is begin call b; end;\n"
            "procedure b is begin call a; end;\n"
            "task t is begin call a; end;"
        )
        (diag,) = [d for d in result.diagnostics if d.rule_id == "ADL006"]
        assert "a -> b -> a" in diag.message

    def test_adl007_dead_procedure(self):
        result = lint_source(
            "program p;\nprocedure unused is begin null; end;\n"
            "task t is begin null; end;"
        )
        assert "ADL007" in rules_of(result)

    def test_adl007_transitive_reachability(self):
        result = lint_source(
            "program p;\n"
            "procedure inner is begin null; end;\n"
            "procedure outer is begin call inner; end;\n"
            "task t is begin call outer; end;"
        )
        assert "ADL007" not in rules_of(result)

    def test_adl008_zero_trip_for(self):
        result = lint_source(
            "program p;\ntask t is begin\n"
            "for i in 5 .. 1 loop null; end loop;\nend;"
        )
        (diag,) = [d for d in result.diagnostics if d.rule_id == "ADL008"]
        assert "5 .. 1" in diag.message

    def test_adl008_normal_for_clean(self):
        result = lint_source(
            "program p;\ntask t is begin\n"
            "for i in 1 .. 3 loop null; end loop;\nend;"
        )
        assert "ADL008" not in rules_of(result)

    def test_adl009_while_rendezvous(self):
        result = lint_source(
            "program p;\n"
            "task t is begin while ? loop send u.m; end loop; end;\n"
            "task u is begin while ? loop accept m; end loop; end;"
        )
        found = [d for d in result.diagnostics if d.rule_id == "ADL009"]
        assert len(found) == 2
        assert all(d.severity == Severity.NOTE for d in found)

    def test_adl009_rendezvous_free_while_clean(self):
        result = lint_source(
            "program p;\ntask t is begin while ? loop null; end loop; end;"
        )
        assert "ADL009" not in rules_of(result)

    def test_adl010_coupling_cycle(self):
        result = lint_source(CROSSED_SRC)
        (diag,) = [d for d in result.diagnostics if d.rule_id == "ADL010"]
        assert diag.span is not None
        assert diag.related  # other cycle members attached

    def test_adl010_clean_handshake(self):
        result = lint_source(HANDSHAKE_SRC)
        assert rules_of(result) == set()

    def test_adl011_unreachable_after_stall(self):
        result = lint_source(
            "program p;\n"
            "task t is begin send u.ghost; null; null; end;\n"
            "task u is begin null; end;"
        )
        (diag,) = [d for d in result.diagnostics if d.rule_id == "ADL011"]
        assert "2 following statement" in diag.message
        assert diag.related[0].message.startswith("guaranteed-stall")

    def test_graph_rules_degrade_on_broken_programs(self):
        # duplicate tasks make the graph pipeline unbuildable; the
        # structural rules must still fire without raising
        result = lint_source(
            "program p;\ntask t is begin send t.x; end;\n"
            "task t is begin null; end;"
        )
        assert {"ADL003", "ADL005"} <= rules_of(result)


class TestSuppressions:
    def test_scan_trailing_and_own_line(self):
        lines = scan_suppressions(
            "send a.b;  -- lint: disable=ADL001\n"
            "-- lint: disable=ADL002, adl003\n"
            "accept c;\n"
        )
        assert lines[1] == {"adl001"}
        assert {"adl002", "adl003"} <= lines[2]
        assert {"adl002", "adl003"} <= lines[3]

    def test_trailing_comment_suppresses(self):
        # ADL001 anchors at the stalling send (line 2); ADL011 anchors
        # at the first dead statement (line 3)
        src = (
            "program p;\n"
            "task t is begin send u.ghost; -- lint: disable=ADL001\n"
            "null; -- lint: disable=ADL011\n"
            "end;\n"
            "task u is begin null; end;\n"
        )
        result = lint_source(src)
        assert rules_of(result) == set()
        assert result.suppressed == 2

    def test_own_line_comment_covers_next_line(self):
        src = (
            "program p;\ntask t is begin\n"
            "-- lint: disable=while-rendezvous\n"
            "while ? loop send u.m; end loop;\n"
            "end;\n"
            "task u is begin accept m; end;\n"
        )
        result = lint_source(src)
        assert "ADL009" not in rules_of(result)

    def test_disable_all(self):
        src = (
            "program p;\n"
            "task t is begin send u.ghost; -- lint: disable=all\n"
            "end;\ntask u is begin null; end;\n"
        )
        result = lint_source(src)
        assert result.diagnostics == ()
        assert result.suppressed >= 1

    def test_suppression_needs_source(self):
        # lint_program without source text cannot see comments
        src = (
            "program p;\n"
            "task t is begin send u.ghost; -- lint: disable=all\n"
            "end;\ntask u is begin null; end;\n"
        )
        result = lint_program(parse_program(src))
        assert "ADL001" in rules_of(result)


class TestSelectDisable:
    def test_disable_by_id_and_name(self):
        result = lint_source(STALL_SRC, disable=["unmatched-send"])
        assert "ADL001" not in rules_of(result)
        assert "ADL001" not in result.rules_run

    def test_select_runs_only_named_rules(self):
        result = lint_source(STALL_SRC, select=["ADL001"])
        assert result.rules_run == ("ADL001",)

    def test_unknown_rule_name_raises(self):
        with pytest.raises(KeyError):
            lint_source(STALL_SRC, select=["ADL999"])


class TestLintResult:
    def test_fails_thresholds(self):
        result = lint_source(STALL_SRC)  # warnings only
        assert not result.fails("error")
        assert result.fails("warning")
        assert result.fails("note")

    def test_counts(self):
        result = lint_source(STALL_SRC)
        counts = result.counts()
        assert counts[Severity.WARNING] >= 1
        assert counts[Severity.ERROR] == 0

    def test_diagnostics_sorted_by_position(self):
        result = lint_source(lint_corpus()["stall_candidates"].source)
        keys = [d.sort_key() for d in result.diagnostics]
        assert keys == sorted(keys)


class TestOutputBackends:
    def test_render_text_summary(self):
        result = lint_source(STALL_SRC, path="stall.adl")
        text = render_text(result)
        assert text.splitlines()[-1].startswith("stall.adl: 0 error(s)")

    def test_lint_to_dict_schema(self):
        result = lint_source(STALL_SRC, path="stall.adl")
        payload = lint_to_dict(result)
        assert payload["lint_schema_version"] == 1
        assert payload["summary"]["warnings"] >= 1
        json.dumps(payload)  # JSON-serializable

    def test_sarif_shape_valid(self):
        results = [
            lint_source(entry.source, path=f"{entry.name}.adl")
            for entry in lint_corpus().values()
        ]
        doc = sarif_report(results)
        assert validate_sarif_shape(doc) == []

    def test_sarif_rule_catalog_and_indices(self):
        result = lint_source(STALL_SRC, path="stall.adl")
        doc = sarif_report([result])
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert len(rules) == len(all_rules())
        for sarif_result in run["results"]:
            idx = sarif_result["ruleIndex"]
            assert rules[idx]["id"] == sarif_result["ruleId"]
            region = sarif_result["locations"][0]["physicalLocation"][
                "region"
            ]
            assert region["startLine"] >= 1

    def test_sarif_related_locations(self):
        src = (
            "program p;\ntask t is begin null; end;\n"
            "task t is begin null; end;"
        )
        doc = sarif_report([lint_source(src, path="dup.adl")])
        dup = [
            r
            for r in doc["runs"][0]["results"]
            if r["ruleId"] == "ADL005"
        ][0]
        assert dup["relatedLocations"]

    def test_validate_sarif_shape_catches_damage(self):
        doc = sarif_report([lint_source(STALL_SRC)])
        doc["runs"][0]["results"][0]["level"] = "catastrophic"
        assert validate_sarif_shape(doc)


class TestObsIntegration:
    def test_counters_and_span(self):
        with obs.observed() as session:
            lint_source(STALL_SRC)
        registry = session.registry
        assert registry.counter("lint.runs").value == 1
        assert registry.counter("lint.diagnostics", rule="ADL001").value >= 1
        names = {span.name for span in session.tracer.all_spans()}
        assert "lint.run" in names

    def test_suppressed_counter(self):
        src = (
            "program p;\n"
            "task t is begin send u.ghost; -- lint: disable=all\n"
            "end;\ntask u is begin null; end;\n"
        )
        with obs.observed() as session:
            lint_source(src)
        suppressed = [
            counter
            for (name, _), counter in session.registry.counters.items()
            if name == "lint.suppressed"
        ]
        assert suppressed and sum(c.value for c in suppressed) >= 1

    def test_disabled_obs_is_free(self):
        assert not obs.is_enabled()
        lint_source(STALL_SRC)  # must not raise


class TestZeroTripUnrollRegression:
    def test_zero_trip_for_unrolls_to_nothing(self):
        src = (
            "program p;\ntask t is begin\n"
            "for i in 5 .. 1 loop send u.m; end loop;\nend;\n"
            "task u is begin null; end;\n"
        )
        program = parse_program(src)
        unrolled, changed = remove_loops(program)
        assert changed
        assert unrolled.tasks[0].body == ()  # loop body dropped entirely

        result = lint_source(src)
        assert "ADL008" in rules_of(result)
        # the sends inside the dead loop never reach the sync graph, so
        # ADL001 must still warn at source level
        assert "ADL001" in rules_of(result)


class TestLintCorpus:
    def test_manifest_expectations(self):
        for entry in lint_corpus().values():
            result = lint_source(entry.source, path=f"{entry.name}.adl")
            assert set(result.rule_ids) == set(entry.expect_rules), entry.name

    def test_selfcheck_passes(self, capsys):
        from repro.lint.selfcheck import main

        assert main() == 0
        assert "selfcheck OK" in capsys.readouterr().out


def _bounded_config(seed: int) -> Program:
    return random_program(
        RandomProgramConfig(
            tasks=3, statements_per_task=4, branch_prob=0.3, loop_prob=0.3
        ),
        seed=seed,
    )


PROPERTY = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestLintProperties:
    @PROPERTY
    @given(seed=st.integers(0, 10_000), serializable=st.booleans())
    def test_lint_never_crashes_and_spans_in_bounds(
        self, seed, serializable
    ):
        if serializable:
            program = random_serializable_program(seed=seed)
        else:
            program = _bounded_config(seed)
        source = pretty(program)
        reparsed = parse_program(source)
        result = lint_source(source, path="random.adl")
        lines = source.splitlines()
        for diag in result.diagnostics:
            assert diag.span is not None  # every finding is located
            assert 1 <= diag.span.line <= len(lines)
            line = lines[diag.span.line - 1]
            assert 1 <= diag.span.column <= len(line) + 1
        # linting must not mutate the AST
        assert reparsed == parse_program(source)
        assert lint_source(source).diagnostics == result.diagnostics

    @PROPERTY
    @given(seed=st.integers(0, 10_000))
    def test_sarif_always_valid(self, seed):
        program = _bounded_config(seed)
        result = lint_program(program, source=pretty(program))
        assert validate_sarif_shape(sarif_report([result])) == []

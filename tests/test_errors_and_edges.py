"""Error types, edge cases, and defensive paths across modules."""

import pytest

import repro
from repro.errors import (
    AnalysisError,
    ExplorationLimitError,
    LexError,
    ParseError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.lang.ast_nodes import Accept
from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            AnalysisError,
            ExplorationLimitError,
            LexError,
            ParseError,
            SimulationError,
            ValidationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_exploration_limit_message(self):
        err = ExplorationLimitError(42)
        assert "42" in str(err)
        assert err.limit == 42

    def test_lex_error_location(self):
        err = LexError("bad", 3, 7)
        assert err.line == 3 and err.column == 7
        assert "line 3" in str(err)

    def test_parse_error_without_location(self):
        err = ParseError("oops")
        assert "oops" in str(err)
        assert "line" not in str(err)


class TestEdgeCasePrograms:
    def test_single_task_program(self):
        result = repro.analyze("program p; task only is begin null; end;")
        assert result.deadlock.deadlock_free
        assert result.stall.stall_free

    def test_all_tasks_rendezvous_free(self):
        result = repro.analyze(
            "program p; task a is begin x := 1; end;"
            "task b is begin null; null; end;"
        )
        assert result.deadlock.deadlock_free

    def test_empty_bodies(self):
        result = repro.analyze(
            "program p; task a is begin end; task b is begin end;"
        )
        assert result.deadlock.deadlock_free

    def test_rendezvous_only_in_dead_branch_arm(self):
        # accept reachable only via one arm; analysis must not crash
        result = repro.analyze(
            "program p;"
            "task a is begin if ? then send b.m; end if; end;"
            "task b is begin if ? then accept m; end if; end;"
        )
        assert result.deadlock.deadlock_free
        assert result.stall.verdict == "unknown"

    def test_deeply_nested_conditionals(self):
        depth = 20
        open_ifs = "if ? then " * depth
        close_ifs = "end if; " * depth
        src = (
            "program p; task a is begin "
            + open_ifs
            + "send b.m; "
            + close_ifs
            + "end; task b is begin "
            + open_ifs
            + "accept m; "
            + close_ifs
            + "end;"
        )
        result = repro.analyze(src)
        assert result.deadlock.deadlock_free

    def test_wide_fanout_signal(self):
        senders = "".join(
            f"task s{i} is begin send hub.m; end;" for i in range(12)
        )
        accepts = "accept m; " * 12
        src = f"program p; {senders} task hub is begin {accepts} end;"
        result = repro.analyze(src)
        assert result.deadlock.deadlock_free
        assert result.stall.stall_free

    def test_long_straight_line_program(self):
        n = 300
        a = " ".join(f"send b.m{i};" for i in range(n))
        b = " ".join(f"accept m{i};" for i in range(n))
        src = f"program p; task a is begin {a} end; task b is begin {b} end;"
        result = repro.analyze(src)
        assert result.deadlock.deadlock_free
        assert result.stall.stall_free

    def test_message_name_reuse_across_tasks(self):
        # same message name to different tasks = different signals
        src = (
            "program p;"
            "task a is begin send b.go; send c.go; end;"
            "task b is begin accept go; end;"
            "task c is begin accept go; end;"
        )
        result = repro.analyze(src)
        assert result.deadlock.deadlock_free


class TestAnalyzeRobustness:
    def test_analyze_raises_on_validation_error(self):
        with pytest.raises(ValidationError):
            repro.analyze("program p; task a is begin send a.m; end;")

    def test_analyze_raises_on_parse_error(self):
        with pytest.raises(ParseError):
            repro.analyze("program ;")

    def test_exact_state_limit_is_budget_faithful(self):
        # Exhausting the exact-path budget no longer raises: analyze
        # returns a conservative partial report instead.
        from repro.workloads.patterns import dining_philosophers

        result = repro.analyze(
            dining_philosophers(4, True),
            algorithm="exact",
            state_limit=3,
        )
        report = result.deadlock
        assert not report.deadlock_free
        assert report.stats["exploration_limited"] is True
        assert report.stats["feasible_waves"] <= 3

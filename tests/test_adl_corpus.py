"""The realistic ADL regression corpus."""

import pytest

import repro
from repro.interp.runtime import sample_runs
from repro.syncgraph.build import build_sync_graph
from repro.transforms.inline import inline_procedures
from repro.transforms.unroll import remove_loops
from repro.waves.explore import explore
from repro.workloads.adl_corpus import adl_corpus, load_adl


@pytest.fixture(scope="module")
def corpus():
    return adl_corpus()


class TestCorpusIntegrity:
    def test_all_entries_present(self, corpus):
        assert len(corpus) == 10

    def test_sources_parse_and_match_names(self, corpus):
        for name, entry in corpus.items():
            assert entry.program.name == name

    def test_load_adl_returns_source(self):
        assert "program elevator;" in load_adl("elevator")

    def test_unknown_name_raises(self):
        with pytest.raises(FileNotFoundError):
            load_adl("nonexistent")


class TestExpectations:
    def test_wave_model_expectations(self, corpus):
        for name, entry in corpus.items():
            program, _ = inline_procedures(entry.program)
            program, _ = remove_loops(program)
            result = explore(build_sync_graph(program))
            assert result.has_deadlock == entry.expect_deadlock, name
            assert result.has_stall == entry.expect_stall, name

    def test_detectors_are_safe_on_corpus(self, corpus):
        for name, entry in corpus.items():
            result = repro.analyze(entry.source)
            if entry.expect_deadlock:
                assert not result.deadlock.deadlock_free, name

    def test_atm_deadlock_always_sticks_at_runtime(self, corpus):
        summary = sample_runs(corpus["atm_deadlock"].program, runs=30)
        assert summary.completed == 0
        assert summary.deadlock_runs == 30

    def test_clean_protocols_complete_at_runtime(self, corpus):
        for name in ("elevator", "atm", "printer_spooler", "relay_chat",
                     "train_junction", "handoff_protocol",
                     "bounded_buffer"):
            summary = sample_runs(corpus[name].program, runs=25)
            assert summary.stuck == 0, name

    def test_watchdog_stall_is_branch_dependent(self, corpus):
        summary = sample_runs(corpus["watchdog"].program, runs=60)
        assert summary.stall_runs > 0
        assert summary.completed > 0
        assert summary.deadlock_runs == 0


class TestEndToEnd:
    def test_refined_certifies_the_clean_hub_protocols(self, corpus):
        for name in ("elevator", "atm", "relay_chat", "printer_spooler"):
            result = repro.analyze(corpus[name].source)
            assert result.deadlock.deadlock_free, name

    def test_train_junction_is_an_honest_false_alarm(self, corpus):
        # the shared 'release' signal creates cross-train cycles no
        # polynomial variant eliminates; the confirmation pass refutes
        result = repro.analyze(corpus["train_junction"].source)
        assert not result.deadlock.deadlock_free

    def test_confirmation_settles_every_alarm(self, corpus):
        from repro.analysis.confirm import (
            ConfirmationOutcome,
            confirm_deadlock_report,
        )

        for name, entry in corpus.items():
            result = repro.analyze(entry.source)
            confirmed = confirm_deadlock_report(
                result.sync_graph, result.deadlock
            )
            assert confirmed.outcome != ConfirmationOutcome.INCONCLUSIVE
            if entry.expect_deadlock:
                assert confirmed.outcome == ConfirmationOutcome.CONFIRMED

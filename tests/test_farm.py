"""Tests for the batch-analysis farm: cache, pool, runner, analyze_many."""

from __future__ import annotations

import os
import pickle
import time

import pytest

import repro
from repro import obs
from repro.api import ALGORITHMS, analyze, analyze_many
from repro.errors import ReproError
from repro.farm import (
    PIPELINE_VERSION,
    ResultCache,
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    WorkItem,
    WorkOutcome,
    cache_key,
    canonical_source,
    collect_sources,
    run_batch,
    run_pool,
)
from repro.farm import cache as cache_module
from repro.workloads import adl_corpus
from tests.conftest import CROSSED_SRC, HANDSHAKE_SRC

COMMENTED_HANDSHAKE = """
program handshake;
-- a comment the canonical form must not see
task t1 is
begin
    send   t2.sig1;
    accept sig2;
end;
task t2 is begin accept sig1; send t1.sig2; end;
"""


# ---------------------------------------------------------------------------
# cache keys


class TestCacheKey:
    def test_same_source_same_key(self):
        assert cache_key(HANDSHAKE_SRC) == cache_key(HANDSHAKE_SRC)

    def test_whitespace_and_comments_do_not_change_key(self):
        assert cache_key(HANDSHAKE_SRC) == cache_key(COMMENTED_HANDSHAKE)
        assert canonical_source(HANDSHAKE_SRC) == canonical_source(
            COMMENTED_HANDSHAKE
        )

    def test_different_program_different_key(self):
        assert cache_key(HANDSHAKE_SRC) != cache_key(CROSSED_SRC)

    def test_algorithm_changes_key(self):
        assert cache_key(HANDSHAKE_SRC, algorithm="naive") != cache_key(
            HANDSHAKE_SRC, algorithm="refined"
        )

    def test_state_limit_and_exact_change_key(self):
        base = cache_key(HANDSHAKE_SRC)
        assert cache_key(HANDSHAKE_SRC, state_limit=7) != base
        assert cache_key(HANDSHAKE_SRC, exact=True) != base

    def test_lint_changes_key(self):
        # Lint entries carry extra payload, so they must not shadow
        # (or be shadowed by) plain analysis entries.
        assert cache_key(HANDSHAKE_SRC, lint=True) != cache_key(
            HANDSHAKE_SRC
        )

    def test_pipeline_version_changes_key(self, monkeypatch):
        base = cache_key(HANDSHAKE_SRC)
        monkeypatch.setattr(cache_module, "PIPELINE_VERSION", PIPELINE_VERSION + 1)
        assert cache_key(HANDSHAKE_SRC) != base

    def test_accepts_parsed_program(self, handshake):
        assert cache_key(handshake) == cache_key(HANDSHAKE_SRC)


# ---------------------------------------------------------------------------
# result cache


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(HANDSHAKE_SRC)
        assert cache.get(key) is None
        result = analyze(HANDSHAKE_SRC)
        cache.put(key, result)
        got = cache.get(key)
        assert got is not None
        assert got.deadlock.verdict == result.deadlock.verdict

    def test_disk_persists_across_instances(self, tmp_path):
        key = cache_key(HANDSHAKE_SRC)
        ResultCache(tmp_path).put(key, analyze(HANDSHAKE_SRC))
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is not None
        assert fresh.stats.hits == 1

    def test_corrupted_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(HANDSHAKE_SRC)
        cache.put(key, analyze(HANDSHAKE_SRC))
        entry = cache._entry_path(key)
        entry.write_bytes(b"not a pickle at all")
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.errors == 1
        assert not entry.exists()  # healed: deleted for the next store

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key_a = cache_key(HANDSHAKE_SRC)
        key_b = cache_key(CROSSED_SRC)
        cache.put(key_a, analyze(HANDSHAKE_SRC))
        # Simulate a renamed/copied entry file.
        path_b = cache._entry_path(key_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(cache._entry_path(key_a).read_bytes())
        fresh = ResultCache(tmp_path)
        assert fresh.get(key_b) is None

    def test_memory_lru_eviction_still_hits_disk(self, tmp_path):
        cache = ResultCache(tmp_path, memory_entries=1)
        key_a = cache_key(HANDSHAKE_SRC)
        key_b = cache_key(CROSSED_SRC)
        cache.put(key_a, analyze(HANDSHAKE_SRC))
        cache.put(key_b, analyze(CROSSED_SRC))  # evicts key_a from memory
        assert cache.stats.evictions == 1
        assert cache.get(key_a) is not None  # reloaded from disk

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache_key(HANDSHAKE_SRC), analyze(HANDSHAKE_SRC))
        cache.put(cache_key(CROSSED_SRC), analyze(CROSSED_SRC))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get(cache_key(HANDSHAKE_SRC)) is None


# ---------------------------------------------------------------------------
# picklability (cached payloads and pool transport depend on it)


class TestPicklability:
    def test_algorithm_registry_is_picklable(self):
        for name, fn in ALGORITHMS.items():
            assert pickle.loads(pickle.dumps(fn)) is fn, name

    @pytest.mark.parametrize(
        "name", ["elevator", "atm_deadlock", "sensor_poll", "handoff_protocol"]
    )
    def test_analysis_result_round_trips(self, name):
        entry = adl_corpus()[name]
        result = analyze(entry.source)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.program == result.program
        assert clone.deadlock.verdict == result.deadlock.verdict
        assert clone.stall.verdict == result.stall.verdict
        assert clone.validation.diagnostics == result.validation.diagnostics
        assert clone.sync_graph.stats() == result.sync_graph.stats()
        assert clone.describe() == result.describe()

    def test_k_pairs_result_round_trips(self):
        result = analyze(CROSSED_SRC, algorithm="k-pairs-3")
        clone = pickle.loads(pickle.dumps(result))
        assert clone.deadlock.verdict == result.deadlock.verdict


# ---------------------------------------------------------------------------
# worker pool


def _slow_worker(item: WorkItem) -> WorkOutcome:
    if "slow" in item.label:
        time.sleep(30)
    return WorkOutcome(label=item.label, status=STATUS_OK, result=item.label)


def _crashing_worker(item: WorkItem) -> WorkOutcome:
    if "boom" in item.label:
        os._exit(23)
    return WorkOutcome(label=item.label, status=STATUS_OK, result=item.label)


def _items(labels):
    return [WorkItem(label=label, source=HANDSHAKE_SRC) for label in labels]


class TestPool:
    def test_serial_matches_input_order(self):
        outcomes = run_pool(_items(["a", "b", "c"]), jobs=1)
        assert [o.label for o in outcomes] == ["a", "b", "c"]
        assert all(o.ok for o in outcomes)

    def test_serial_contains_failures(self):
        items = [
            WorkItem(label="good", source=HANDSHAKE_SRC),
            WorkItem(label="bad", source="program ;"),
        ]
        outcomes = run_pool(items, jobs=1)
        assert outcomes[0].ok
        assert outcomes[1].status == STATUS_FAILED
        assert "Traceback" in outcomes[1].error

    def test_parallel_matches_serial_verdicts(self):
        corpus = adl_corpus()
        items = [
            WorkItem(label=name, source=entry.source)
            for name, entry in sorted(corpus.items())
        ]
        parallel = run_pool(items, jobs=4)
        serial = run_pool(items, jobs=1)
        assert [o.label for o in parallel] == [o.label for o in serial]
        for p, s in zip(parallel, serial):
            assert p.ok and s.ok
            assert p.result.deadlock.verdict == s.result.deadlock.verdict
            assert p.result.stall.verdict == s.result.stall.verdict

    def test_parallel_unknown_algorithm_fails_only_that_item(self):
        items = [
            WorkItem(label="good", source=HANDSHAKE_SRC),
            WorkItem(label="bad", source=HANDSHAKE_SRC, algorithm="nope"),
        ]
        outcomes = run_pool(items, jobs=2)
        assert outcomes[0].ok
        assert outcomes[1].status == STATUS_FAILED
        assert "unknown algorithm" in outcomes[1].error

    def test_timeout_marks_item_and_spares_the_rest(self):
        items = _items(["ok-1", "slow-item", "ok-2", "ok-3"])
        outcomes = run_pool(
            items, jobs=2, timeout=1.5, worker=_slow_worker
        )
        by_label = {o.label: o for o in outcomes}
        assert by_label["slow-item"].status == STATUS_TIMEOUT
        for label in ("ok-1", "ok-2", "ok-3"):
            assert by_label[label].ok, label

    def test_crash_convicts_only_the_crasher(self):
        items = _items(["ok-1", "boom-item", "ok-2", "ok-3", "ok-4"])
        outcomes = run_pool(items, jobs=3, worker=_crashing_worker)
        by_label = {o.label: o for o in outcomes}
        assert by_label["boom-item"].status == STATUS_CRASHED
        assert "died" in by_label["boom-item"].error
        for label in ("ok-1", "ok-2", "ok-3", "ok-4"):
            assert by_label[label].ok, label

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_pool([], jobs=0)


# ---------------------------------------------------------------------------
# batch runner


class TestRunBatch:
    def test_verdicts_identical_to_serial_analyze(self, tmp_path):
        """Acceptance: --jobs 4 over the ADL corpus == serial analyze()."""
        corpus = adl_corpus()
        pairs = [(name, entry.source) for name, entry in sorted(corpus.items())]
        report = run_batch(pairs, jobs=4, cache=tmp_path / "cache")
        assert report.ok
        for (name, source), item in zip(pairs, report.items):
            expected = analyze(source)
            assert item.result.deadlock.verdict == expected.deadlock.verdict, name
            assert item.result.stall.verdict == expected.stall.verdict, name

    def test_warm_cache_rerun_hits_and_is_faster(self, tmp_path):
        corpus = adl_corpus()
        pairs = [(name, entry.source) for name, entry in sorted(corpus.items())]
        cache_dir = tmp_path / "cache"
        with obs.observed() as session:
            cold = run_batch(pairs, jobs=2, cache=cache_dir)
            warm = run_batch(pairs, jobs=2, cache=cache_dir)
        assert cold.cache_hits == 0 and cold.cache_misses == len(pairs)
        assert warm.cache_hits == len(pairs) and warm.cache_misses == 0
        # Warm skips all analysis and all worker scheduling.
        assert warm.wall_time_s < cold.wall_time_s
        assert session.registry.counter_value("farm.cache.hits") == len(pairs)
        assert session.registry.counter_value("farm.cache.misses") == len(pairs)
        for hit_item, cold_item in zip(warm.items, cold.items):
            assert hit_item.cache == "hit"
            assert (
                hit_item.result.deadlock.verdict
                == cold_item.result.deadlock.verdict
            )

    def test_cache_disabled_by_default(self):
        report = run_batch([("h", HANDSHAKE_SRC)])
        assert not report.cache_enabled
        assert report.items[0].cache == "off"

    def test_parse_error_item_fails_without_aborting(self, tmp_path):
        report = run_batch(
            [("good", HANDSHAKE_SRC), ("bad", "program ;")],
            jobs=1,
            cache=tmp_path,
        )
        assert report.items[0].ok
        assert report.items[1].status == STATUS_FAILED
        assert not report.ok
        # The broken item must not poison the cache.
        rerun = run_batch(
            [("good", HANDSHAKE_SRC), ("bad", "program ;")],
            jobs=1,
            cache=tmp_path,
        )
        assert rerun.items[0].cache == "hit"
        assert rerun.items[1].status == STATUS_FAILED

    def test_accepts_programs_and_bare_sources(self, handshake):
        report = run_batch([handshake, CROSSED_SRC])
        assert report.items[0].label == "handshake"
        assert report.items[0].result.deadlock.deadlock_free
        assert not report.items[1].result.deadlock.deadlock_free

    def test_injected_crash_is_contained(self, tmp_path, monkeypatch):
        """Acceptance: a crashing worker item is FAILED/CRASHED without
        aborting the remaining items."""
        monkeypatch.setenv("REPRO_FARM_INJECT_CRASH", "atm_deadlock")
        corpus = adl_corpus()
        pairs = [(name, entry.source) for name, entry in sorted(corpus.items())]
        with obs.observed() as session:
            report = run_batch(pairs, jobs=3, cache=tmp_path / "cache")
        by_label = {item.label: item for item in report.items}
        assert by_label["atm_deadlock"].status == STATUS_CRASHED
        assert session.registry.counter_value("farm.worker.crashes") >= 1
        for name in corpus:
            if name != "atm_deadlock":
                assert by_label[name].ok, name

    def test_jsonl_and_dict_schema(self, tmp_path):
        import json

        report = run_batch(
            [("h", HANDSHAKE_SRC), ("bad", "program ;")], cache=tmp_path
        )
        payload = report.to_dict()
        assert payload["schema_version"] == 2
        assert payload["pipeline_version"] == PIPELINE_VERSION
        assert payload["cache"]["misses"] == 1  # "bad" never got a key
        lines = [
            json.loads(line) for line in report.to_jsonl().splitlines()
        ]
        kinds = [line["kind"] for line in lines]
        assert kinds == ["item", "item", "summary"]
        assert lines[0]["program"] == "handshake"
        assert lines[0]["deadlock"]["deadlock_free"] is True
        assert lines[1]["status"] == STATUS_FAILED
        assert lines[1]["error"]
        assert lines[2]["counts"] == {"ok": 1, "failed": 1}


# ---------------------------------------------------------------------------
# lint-enabled batches


class TestLintBatch:
    def test_items_carry_per_rule_counts(self, tmp_path):
        report = run_batch(
            [("h", HANDSHAKE_SRC), ("crossed", CROSSED_SRC)],
            cache=tmp_path,
            lint=True,
        )
        assert report.ok and report.lint_enabled
        by_label = {item.label: item for item in report.items}
        assert by_label["h"].lint_counts == {}  # clean program
        crossed = by_label["crossed"].lint_counts
        assert crossed and crossed.get("ADL010", 0) >= 1

    def test_counts_survive_the_cache(self, tmp_path):
        args = dict(cache=tmp_path, lint=True)
        first = run_batch([("crossed", CROSSED_SRC)], **args)
        second = run_batch([("crossed", CROSSED_SRC)], **args)
        assert second.items[0].cache == "hit"
        assert second.items[0].lint_counts == first.items[0].lint_counts
        assert second.items[0].result.deadlock.verdict == (
            first.items[0].result.deadlock.verdict
        )

    def test_lint_entries_do_not_shadow_plain_runs(self, tmp_path):
        run_batch([("crossed", CROSSED_SRC)], cache=tmp_path, lint=True)
        plain = run_batch([("crossed", CROSSED_SRC)], cache=tmp_path)
        assert plain.items[0].cache == "miss"  # distinct key
        assert plain.items[0].lint_counts is None
        assert not plain.items[0].result.deadlock.deadlock_free

    def test_jsonl_exposes_counts_and_summary(self, tmp_path):
        import json

        report = run_batch(
            [("h", HANDSHAKE_SRC), ("crossed", CROSSED_SRC)],
            cache=tmp_path,
            lint=True,
        )
        lines = [
            json.loads(line) for line in report.to_jsonl().splitlines()
        ]
        items = {rec["label"]: rec for rec in lines if rec["kind"] == "item"}
        assert items["h"]["lint_counts"] == {}
        assert items["crossed"]["lint_counts"]["ADL010"] >= 1
        summary = lines[-1]
        assert summary["lint"]["enabled"] is True
        assert summary["lint"]["diagnostics"] == sum(
            items["crossed"]["lint_counts"].values()
        )

    def test_plain_batches_omit_counts(self, tmp_path):
        report = run_batch([("h", HANDSHAKE_SRC)], cache=tmp_path)
        assert report.items[0].lint_counts is None
        payload = report.to_dict()
        assert "lint_counts" not in payload["item_reports"][0]
        assert payload["lint"] == {"enabled": False, "diagnostics": 0}

    def test_parallel_lint_batch(self, tmp_path):
        corpus = adl_corpus()
        pairs = [
            (name, entry.source) for name, entry in sorted(corpus.items())
        ][:4]
        report = run_batch(
            pairs, jobs=2, cache=tmp_path / "cache", lint=True
        )
        assert report.ok
        assert all(
            item.lint_counts is not None for item in report.items
        )


# ---------------------------------------------------------------------------
# collect_sources


class TestCollectSources:
    def test_directory_file_and_glob(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.adl").write_text(HANDSHAKE_SRC)
        (tmp_path / "sub" / "b.adl").write_text(CROSSED_SRC)
        (tmp_path / "c.txt").write_text("not adl")

        from_dir = collect_sources([tmp_path])
        assert [Path_name(p) for p, _ in from_dir] == ["a.adl", "b.adl"]

        from_file = collect_sources([tmp_path / "a.adl"])
        assert len(from_file) == 1

        from_glob = collect_sources([str(tmp_path / "*.adl")])
        assert [Path_name(p) for p, _ in from_glob] == ["a.adl"]

    def test_deduplicates_across_specs(self, tmp_path):
        (tmp_path / "a.adl").write_text(HANDSHAKE_SRC)
        pairs = collect_sources(
            [tmp_path, tmp_path / "a.adl", str(tmp_path / "*.adl")]
        )
        assert len(pairs) == 1

    def test_no_match_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no ADL sources match"):
            collect_sources([tmp_path / "missing.adl"])


def Path_name(path_str):
    return os.path.basename(path_str)


# ---------------------------------------------------------------------------
# analyze_many


class TestAnalyzeMany:
    def test_results_in_input_order(self):
        report = analyze_many([HANDSHAKE_SRC, CROSSED_SRC])
        results = report.results
        assert results[0].deadlock.deadlock_free
        assert not results[1].deadlock.deadlock_free

    def test_exported_from_package_root(self):
        assert repro.analyze_many is analyze_many

    def test_caching_and_jobs(self, tmp_path):
        sources = [HANDSHAKE_SRC, CROSSED_SRC]
        first = analyze_many(sources, jobs=2, cache=tmp_path)
        second = analyze_many(sources, jobs=2, cache=tmp_path)
        assert first.cache_misses == 2
        assert second.cache_hits == 2
        for a, b in zip(first.results, second.results):
            assert a.deadlock.verdict == b.deadlock.verdict

    def test_matches_analyze_verdicts(self):
        entries = sorted(adl_corpus().values(), key=lambda e: e.name)
        report = analyze_many([e.source for e in entries], jobs=2)
        for entry, result in zip(entries, report.results):
            assert result.deadlock.verdict == analyze(entry.source).deadlock.verdict


class TestLruFront:
    def test_eviction_order_is_lru(self):
        from repro.farm.cache import LruFront

        front = LruFront(max_entries=2)
        front.put("a", 1)
        front.put("b", 2)
        assert front.get("a") == 1  # refresh a; b is now oldest
        front.put("c", 3)
        assert "b" not in front
        assert front.get("a") == 1
        assert front.get("c") == 3
        assert front.evictions == 1

    def test_hit_miss_counters(self):
        from repro.farm.cache import LruFront

        front = LruFront()
        assert front.get("ghost") is None
        assert front.get("ghost", default="d") == "d"
        front.put("k", "v")
        assert front.get("k") == "v"
        assert (front.hits, front.misses) == (1, 2)

    def test_contains_is_a_pure_probe(self):
        from repro.farm.cache import LruFront

        front = LruFront(max_entries=2)
        front.put("a", 1)
        front.put("b", 2)
        # Probing "a" must not refresh its recency or count a hit.
        assert "a" in front
        front.put("c", 3)
        assert "a" not in front  # still evicted first
        assert (front.hits, front.misses) == (0, 0)

    def test_snapshot_and_len(self):
        from repro.farm.cache import LruFront

        front = LruFront(max_entries=3)
        front.put("a", 1)
        front.get("a")
        front.get("nope")
        assert len(front) == 1
        assert front.snapshot() == {
            "entries": 1,
            "max_entries": 3,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }
        front.clear()
        assert len(front) == 0

    def test_items_lru_first(self):
        from repro.farm.cache import LruFront

        front = LruFront()
        front.put("a", 1)
        front.put("b", 2)
        front.get("a")
        assert [k for k, _ in front.items()] == ["b", "a"]

    def test_capacity_validation(self):
        from repro.farm.cache import LruFront

        with pytest.raises(ValueError):
            LruFront(max_entries=0)

    def test_result_cache_front_is_lru_front(self, tmp_path):
        from repro.farm.cache import LruFront, ResultCache

        cache = ResultCache(cache_dir=tmp_path, memory_entries=7)
        assert isinstance(cache.front, LruFront)
        assert cache.front.max_entries == 7
        snap = cache.front.snapshot()
        assert set(snap) == {
            "entries", "max_entries", "hits", "misses", "evictions",
        }

    def test_on_disk_vs_contains(self, tmp_path):
        from repro.farm.cache import ResultCache
        from tests.conftest import CROSSED_SRC

        cache = ResultCache(cache_dir=tmp_path)
        cache.put("k" * 64, analyze(CROSSED_SRC))
        assert cache.contains("k" * 64)
        assert cache.on_disk("k" * 64)
        for entry in tmp_path.glob("??/*.pkl"):
            entry.unlink()
        assert not cache.on_disk("k" * 64)
        assert cache.contains("k" * 64)  # the front still has it


# ---------------------------------------------------------------------------
# thread safety (the daemon's worker pool shares these objects)


class TestLruFrontThreadSafety:
    def test_concurrent_gets_count_exactly(self):
        import threading

        from repro.farm.cache import LruFront

        front = LruFront(max_entries=8)
        front.put("k", "v")
        workers, per = 8, 2000
        errors = []

        def reader():
            try:
                for _ in range(per):
                    assert front.get("k") == "v"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Unguarded ``self.hits += 1`` loses updates under contention;
        # the lock makes the count exact, not approximate.
        assert front.hits == workers * per
        assert front.misses == 0

    def test_concurrent_churn_never_corrupts(self):
        import threading

        from repro.farm.cache import LruFront

        # Tiny capacity + many distinct keys: every put races the
        # eviction loop, every get races ``move_to_end`` — the exact
        # shape that raised KeyError from the unguarded OrderedDict.
        front = LruFront(max_entries=4)
        workers, per = 8, 1000
        errors = []

        def churn(i):
            try:
                for n in range(per):
                    front.put(f"w{i}-{n % 16}", n)
                    front.get(f"w{(i + 1) % workers}-{n % 16}")
                    len(front)
                    front.snapshot()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(i,))
            for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(front) <= 4
        snap = front.snapshot()
        assert snap["hits"] + snap["misses"] == workers * per


class TestSharedProcessPool:
    def test_run_matches_in_process_analysis(self):
        from repro.farm.pool import SharedProcessPool

        with SharedProcessPool(jobs=2) as pool:
            outcome = pool.run(
                WorkItem(label="crossed", source=CROSSED_SRC)
            )
            assert outcome.status == STATUS_OK
            direct = analyze(CROSSED_SRC)
            assert (
                outcome.result.deadlock.verdict
                == direct.deadlock.verdict
            )
            # The executor persists across run() calls.
            again = pool.run(
                WorkItem(label="handshake", source=HANDSHAKE_SRC)
            )
            assert again.status == STATUS_OK

    def test_failures_are_outcomes_not_exceptions(self):
        from repro.farm.pool import SharedProcessPool

        with SharedProcessPool(jobs=2) as pool:
            outcome = pool.run(WorkItem(label="bad", source="program ;"))
            assert outcome.status == STATUS_FAILED
            assert outcome.error

    def test_close_is_idempotent_and_reusable(self):
        from repro.farm.pool import SharedProcessPool

        pool = SharedProcessPool(jobs=2)
        pool.close()
        pool.close()
        # A closed pool lazily rebuilds its executor on the next run.
        outcome = pool.run(WorkItem(label="h", source=HANDSHAKE_SRC))
        assert outcome.status == STATUS_OK
        pool.close()

    def test_rejects_zero_jobs(self):
        from repro.farm.pool import SharedProcessPool

        with pytest.raises(ValueError):
            SharedProcessPool(jobs=0)

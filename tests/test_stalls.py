"""Stall analysis tests (paper, Section 5)."""

import pytest

from repro.analysis.stalls import (
    exact_stall_analysis,
    has_conditional_rendezvous,
    lemma3_stall_analysis,
    signal_balance,
    stall_analysis,
)
from repro.analysis.results import StallVerdict
from repro.lang.ast_nodes import Signal
from repro.lang.parser import parse_program


class TestConditionalDetection:
    def test_straight_line_program(self, handshake):
        assert not has_conditional_rendezvous(handshake)

    def test_rendezvous_in_branch(self):
        p = parse_program(
            "program p; task a is begin if ? then send b.m; end if; end;"
            "task b is begin accept m; end;"
        )
        assert has_conditional_rendezvous(p)

    def test_rendezvous_in_loop(self):
        p = parse_program(
            "program p; task a is begin while ? loop send b.m; end loop; end;"
            "task b is begin accept m; end;"
        )
        assert has_conditional_rendezvous(p)

    def test_rendezvous_free_conditional_ignored(self):
        p = parse_program(
            "program p; task a is begin if ? then null; end if; "
            "send b.m; end; task b is begin accept m; end;"
        )
        assert not has_conditional_rendezvous(p)


class TestLemma3:
    def test_balanced_straight_line_certified(self, handshake):
        report = lemma3_stall_analysis(handshake)
        assert report.verdict == StallVerdict.CERTIFIED_FREE
        assert report.stall_free

    def test_imbalanced_reports_signals(self, stall_program):
        report = lemma3_stall_analysis(stall_program)
        assert report.verdict == StallVerdict.POSSIBLE_STALL
        assert report.imbalanced == {Signal("t2", "m"): (1, 0)}

    def test_conditional_rendezvous_unknown(self):
        p = parse_program(
            "program p; task a is begin if ? then send b.m; end if; end;"
            "task b is begin accept m; end;"
        )
        report = lemma3_stall_analysis(p)
        assert report.verdict == StallVerdict.UNKNOWN

    def test_balanced_but_deadlocking_still_stall_free(self, crossed):
        # Lemma 3 speaks about stalls only; the crossed program
        # deadlocks but never stalls.
        report = lemma3_stall_analysis(crossed)
        assert report.stall_free
        exact = exact_stall_analysis(crossed)
        assert exact.stall_free

    def test_signal_balance_counts(self):
        p = parse_program(
            "program p;"
            "task a is begin send b.m; send b.m; end;"
            "task b is begin accept m; end;"
        )
        assert signal_balance(p)[Signal("b", "m")] == (2, 1)


class TestPipeline:
    def test_branch_merge_enables_certification(self, corpus):
        report = stall_analysis(corpus["fig5bc"].program)
        # after the merge, only the co-dependent go-rendezvous remains
        # conditional; it is not factorable by the simple pattern here
        # (no data flows), so the result stays conservative
        assert report.verdict in (
            StallVerdict.UNKNOWN,
            StallVerdict.CERTIFIED_FREE,
        )
        assert any("branch-merge" in t for t in report.transforms_applied)

    def test_codependent_factoring_certifies_fig5d(self, corpus):
        report = stall_analysis(corpus["fig5d"].program)
        assert report.verdict == StallVerdict.CERTIFIED_FREE
        assert any(
            "codependent" in t for t in report.transforms_applied
        )

    def test_transforms_can_be_disabled(self, corpus):
        report = stall_analysis(
            corpus["fig5d"].program, apply_transforms=False
        )
        assert report.verdict == StallVerdict.UNKNOWN

    def test_simple_both_branches_merge(self):
        p = parse_program(
            "program p;"
            "task a is begin if ? then send b.m; else send b.m; end if; end;"
            "task b is begin accept m; end;"
        )
        report = stall_analysis(p)
        assert report.verdict == StallVerdict.CERTIFIED_FREE


class TestExact:
    def test_exact_flags_conditional_stall(self, corpus):
        report = exact_stall_analysis(corpus["fig2a"].program)
        assert report.verdict == StallVerdict.POSSIBLE_STALL
        assert report.notes

    def test_exact_certifies_handshake(self, handshake):
        assert exact_stall_analysis(handshake).stall_free

    def test_lemma3_agrees_with_exact_when_applicable(self, handshake):
        # on unconditional-rendezvous programs Lemma 3 is exact
        assert (
            lemma3_stall_analysis(handshake).stall_free
            == exact_stall_analysis(handshake).stall_free
        )


class TestCertifiedCodependence:
    SRC = """
    program certify;
    task t is begin send tp.s; if ? then send tp.r; end if; end;
    task tp is begin accept s; if ? then accept r; end if; end;
    """

    def test_without_certification_unknown(self):
        p = parse_program(self.SRC)
        assert lemma3_stall_analysis(p).verdict == StallVerdict.UNKNOWN

    def test_certification_enables_lemma3(self):
        p = parse_program(self.SRC)
        report = lemma3_stall_analysis(
            p, certified_codependent=[Signal("tp", "r")]
        )
        assert report.verdict == StallVerdict.CERTIFIED_FREE
        assert any("certified" in n for n in report.notes)

    def test_certification_through_pipeline(self):
        p = parse_program(self.SRC)
        report = stall_analysis(
            p, certified_codependent=[Signal("tp", "r")]
        )
        assert report.verdict == StallVerdict.CERTIFIED_FREE

    def test_certification_does_not_mask_other_conditionals(self):
        src = """
        program mixed;
        task t is begin send tp.s; if ? then send tp.r; end if;
        if ? then send tp.q; end if; end;
        task tp is begin accept s; if ? then accept r; end if;
        accept q; end;
        """
        p = parse_program(src)
        report = lemma3_stall_analysis(
            p, certified_codependent=[Signal("tp", "r")]
        )
        assert report.verdict == StallVerdict.UNKNOWN

    def test_certified_imbalance_still_detected(self):
        src = """
        program imbalanced;
        task t is begin send tp.s; if ? then send tp.r; end if;
        send tp.r; end;
        task tp is begin accept s; if ? then accept r; end if; end;
        """
        p = parse_program(src)
        report = lemma3_stall_analysis(
            p, certified_codependent=[Signal("tp", "r")]
        )
        assert report.verdict == StallVerdict.POSSIBLE_STALL


class TestLemma4NetVectors:
    def test_balanced_arms_certified_without_transforms(self):
        from repro.analysis.stalls import lemma4_stall_analysis

        p = parse_program(
            "program p; task a is begin if ? then accept go; send b.m; "
            "else send b.m; accept go; end if; end;"
            "task b is begin accept m; end;"
            "task c is begin send a.go; end;"
        )
        # branch-merge cannot hoist here in one shot (different order),
        # but the nets agree: lemma4 certifies directly
        report = lemma4_stall_analysis(p)
        assert report.verdict == StallVerdict.CERTIFIED_FREE

    def test_for_loops_use_exact_trip_counts(self):
        from repro.analysis.stalls import lemma4_stall_analysis
        from repro.syncgraph.build import build_sync_graph
        from repro.transforms.unroll import remove_loops
        from repro.waves.explore import explore

        p = parse_program(
            "program p;"
            "task a is begin for i in 1 .. 3 loop send b.m; end loop; end;"
            "task b is begin for i in 1 .. 3 loop accept m; end loop; end;"
        )
        assert lemma4_stall_analysis(p).stall_free
        unrolled, _ = remove_loops(p)
        assert not explore(build_sync_graph(unrolled)).has_stall

    def test_mismatched_for_counts_flagged(self):
        from repro.analysis.stalls import lemma4_stall_analysis

        p = parse_program(
            "program p;"
            "task a is begin for i in 1 .. 3 loop send b.m; end loop; end;"
            "task b is begin for i in 1 .. 2 loop accept m; end loop; end;"
        )
        report = lemma4_stall_analysis(p)
        assert report.verdict == StallVerdict.POSSIBLE_STALL
        assert report.imbalanced[Signal("b", "m")] == (1, 0)

    def test_while_loop_varies(self):
        from repro.analysis.stalls import lemma4_stall_analysis

        p = parse_program(
            "program p;"
            "task a is begin while ? loop send b.m; end loop; end;"
            "task b is begin while ? loop accept m; end loop; end;"
        )
        assert lemma4_stall_analysis(p).verdict == StallVerdict.UNKNOWN

    def test_unbalanced_arms_vary(self):
        from repro.analysis.stalls import lemma4_stall_analysis

        p = parse_program(
            "program p;"
            "task a is begin if ? then send b.m; end if; end;"
            "task b is begin accept m; end;"
        )
        assert lemma4_stall_analysis(p).verdict == StallVerdict.UNKNOWN

    def test_pipeline_uses_lemma4_fallback(self):
        p = parse_program(
            "program p;"
            "task a is begin if ? then accept go; send b.m; "
            "else send b.m; accept go; end if; end;"
            "task b is begin accept m; end;"
            "task c is begin send a.go; end;"
        )
        report = stall_analysis(p)
        assert report.verdict == StallVerdict.CERTIFIED_FREE
        assert report.method == "lemma4-net-vectors"

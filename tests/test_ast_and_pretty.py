"""AST utilities, the builder API, and the pretty-printer round trip."""

import pytest

from repro.lang.ast_nodes import (
    Accept,
    Condition,
    If,
    Null,
    Program,
    Send,
    Signal,
    TaskDecl,
    While,
    statement_count,
    walk_statements,
)
from repro.lang.builder import ProgramBuilder
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty


class TestWalk:
    def test_walk_flat(self):
        body = (Send(task="t", message="m"), Null())
        assert list(walk_statements(body)) == [body[0], body[1]]

    def test_walk_recurses_into_compounds(self):
        inner = Accept(message="x")
        body = (
            If(
                condition=Condition.unknown(),
                then_body=(inner,),
                else_body=(Null(),),
            ),
            While(condition=Condition.unknown(), body=(Send("t", "m"),)),
        )
        found = list(walk_statements(body))
        assert inner in found
        assert Send("t", "m") in found
        assert len(found) == 5

    def test_statement_count(self):
        p = parse_program(
            "program p; task t is begin "
            "if ? then null; null; else null; end if; "
            "end;"
        )
        assert statement_count(p) == 4


class TestProgramAccessors:
    def test_task_lookup(self):
        p = parse_program("program p; task a is begin end; task b is begin end;")
        assert p.task("b").name == "b"
        with pytest.raises(KeyError):
            p.task("missing")

    def test_signal_str(self):
        assert str(Signal("t", "m")) == "(t, m)"

    def test_condition_negate_roundtrip(self):
        c = Condition.of_var("v")
        assert c.negate().negated
        assert c.negate().negate() == c


class TestBuilder:
    def test_flat_program(self):
        pb = ProgramBuilder("p")
        with pb.task("t1") as t:
            t.send("t2", "a").accept("b")
        with pb.task("t2") as t:
            t.accept("a").send("t1", "b")
        p = pb.build()
        assert p.task("t1").body == (
            Send(task="t2", message="a"),
            Accept(message="b"),
        )

    def test_if_else_builder(self):
        pb = ProgramBuilder("p")
        with pb.task("t1") as t:
            with t.if_() as branch:
                t.send("t2", "a")
                with branch.else_():
                    t.null()
        with pb.task("t2") as t:
            t.accept("a")
        p = pb.build()
        stmt = p.task("t1").body[0]
        assert isinstance(stmt, If)
        assert stmt.then_body == (Send(task="t2", message="a"),)
        assert stmt.else_body == (Null(),)

    def test_while_and_for_builders(self):
        pb = ProgramBuilder("p")
        with pb.task("t") as t:
            with t.while_():
                t.null()
            with t.for_("i", 1, 4):
                t.assign("x", "?")
        p = pb.build()
        loop, forloop = p.task("t").body
        assert isinstance(loop, While)
        assert forloop.trip_count == 4

    def test_builder_validates(self):
        pb = ProgramBuilder("p")
        with pb.task("t") as t:
            t.send("missing", "m")
        with pytest.raises(Exception):
            pb.build()
        assert pb.build(validate=False).name == "p"


class TestPrettyRoundTrip:
    CASES = [
        "program p; task t is begin null; end;",
        "program p; task a is begin send b.m; end; task b is begin accept m; end;",
        "program p; task t is begin if ? then null; else null; end if; end;",
        "program p; task t is begin while ? loop null; end loop; end;",
        "program p; task t is begin for i in 1 .. 3 loop null; end loop; end;",
        "program p; task t is begin x := ?; if x then null; end if; end;",
        "program p; task a is begin accept m (v); end; task b is begin send a.m; end;",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_parse_pretty_parse_is_identity(self, source):
        once = parse_program(source)
        again = parse_program(pretty(once))
        assert once == again

    def test_pretty_indents_nesting(self):
        p = parse_program(
            "program p; task t is begin if ? then while ? loop null; "
            "end loop; end if; end;"
        )
        text = pretty(p)
        assert "        while ? loop" in text
        assert "            null;" in text

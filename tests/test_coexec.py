"""NOT-COEXEC approximation tests."""

import pytest

from repro.analysis.coexec import compute_coexec
from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph


def setup(src):
    sg = build_sync_graph(parse_program(src))
    return sg, compute_coexec(sg)


def node(sg, task, message, sign):
    for n in sg.nodes_of_task(task):
        if n.signal.message == message and n.sign == sign:
            return n
    raise KeyError((task, message, sign))


class TestIntraTask:
    def test_exclusive_branches_are_not_coexec(self):
        sg, info = setup(
            "program p;"
            "task a is begin if ? then send b.x; else send b.y; end if; end;"
            "task b is begin accept x; accept y; end;"
        )
        x = node(sg, "a", "x", "+")
        y = node(sg, "a", "y", "+")
        assert info.not_coexecutable(x, y)
        assert info.not_coexecutable(y, x)

    def test_sequential_nodes_are_coexec(self, handshake):
        sg = build_sync_graph(handshake)
        info = compute_coexec(sg)
        r = node(sg, "t1", "sig1", "+")
        s = node(sg, "t1", "sig2", "-")
        assert not info.not_coexecutable(r, s)

    def test_branch_and_following_node_coexec(self):
        sg, info = setup(
            "program p;"
            "task a is begin if ? then send b.x; end if; send b.z; end;"
            "task b is begin accept x; accept z; end;"
        )
        x = node(sg, "a", "x", "+")
        z = node(sg, "a", "z", "+")
        assert not info.not_coexecutable(x, z)


class TestCrossTask:
    def test_cross_task_defaults_to_coexec(self, handshake):
        sg = build_sync_graph(handshake)
        info = compute_coexec(sg)
        r = node(sg, "t1", "sig1", "+")
        u = node(sg, "t2", "sig1", "-")
        assert not info.not_coexecutable(r, u)

    def test_external_facts_injected(self, handshake):
        sg = build_sync_graph(handshake)
        r = node(sg, "t1", "sig1", "+")
        u = node(sg, "t2", "sig1", "-")
        info = compute_coexec(sg, extra_not_coexec=[(r, u)])
        assert info.not_coexecutable(r, u)
        assert info.not_coexecutable(u, r)

    def test_pair_count(self):
        sg, info = setup(
            "program p;"
            "task a is begin if ? then send b.x; else send b.y; end if; end;"
            "task b is begin accept x; accept y; end;"
        )
        assert info.pair_count == 1

"""Ordering framework tests (paper §4.1 / SEQUENCEABLE)."""

import pytest

from repro.analysis.orderings import compute_orderings, strict_dominators
from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph


def setup(src):
    sg = build_sync_graph(parse_program(src))
    return sg, compute_orderings(sg)


def node(sg, task, message, sign):
    for n in sg.nodes_of_task(task):
        if n.signal.message == message and n.sign == sign:
            return n
    raise KeyError((task, message, sign))


class TestStrictDominators:
    def test_straight_line_chain(self, handshake):
        sg = build_sync_graph(handshake)
        doms = strict_dominators(sg)
        send = node(sg, "t1", "sig1", "+")
        accept = node(sg, "t1", "sig2", "-")
        assert doms[accept] == frozenset({send})
        assert doms[send] == frozenset()

    def test_branch_arms_not_dominators(self):
        sg = build_sync_graph(parse_program(
            "program p;"
            "task a is begin if ? then send b.x; else send b.y; end if; "
            "send b.z; end;"
            "task b is begin accept x; accept y; accept z; end;"
        ))
        doms = strict_dominators(sg)
        z = node(sg, "a", "z", "+")
        assert doms[z] == frozenset()  # neither arm dominates


class TestIntraTaskPrecedes:
    def test_dominator_gives_precedes(self, handshake):
        sg, info = setup(
            "program p;"
            "task t1 is begin send t2.sig1; accept sig2; end;"
            "task t2 is begin accept sig1; send t1.sig2; end;"
        )
        r = node(sg, "t1", "sig1", "+")
        s = node(sg, "t1", "sig2", "-")
        assert info.must_precede(r, s)
        assert not info.must_precede(s, r)
        assert info.sequenceable(r, s)


class TestCrossTaskPrecedes:
    def test_partner_rule_derives_cross_task_order(self, handshake):
        sg = build_sync_graph(handshake)
        info = compute_orderings(sg)
        r = node(sg, "t1", "sig1", "+")  # first rendezvous
        v = node(sg, "t2", "sig2", "+")  # t2's second node
        # v is only reached after u completes; u completes only with r.
        assert info.must_precede(r, v)

    def test_figure1_narrative_v_after_r(self):
        # r; s in t1 — s rendezvouses only with v, which sits after u in
        # t2; u's only partner is r => r precedes v.
        sg, info = setup(
            "program p;"
            "task t1 is begin send t2.sig1; accept sig2; end;"
            "task t2 is begin accept sig1; send t1.sig2; end;"
        )
        r = node(sg, "t1", "sig1", "+")
        v = node(sg, "t2", "sig2", "+")
        assert info.must_precede(r, v)
        assert info.sequenceable(r, v)

    def test_crossed_program_derives_no_orderings(self, crossed):
        # the crossed program always deadlocks; a prefix-sound framework
        # must not order its head nodes (the old completion-conditioned
        # rules did, which was unsound)
        sg = build_sync_graph(crossed)
        info = compute_orderings(sg)
        h1 = node(sg, "t1", "a", "+")
        h2 = node(sg, "t2", "x", "+")
        assert not info.sequenceable(h1, h2)

    def test_multi_partner_blocks_derivation(self):
        # two senders for one accept: completing the accept pins down
        # neither sender, so no cross-task fact may be derived from it
        sg, info = setup(
            "program p;"
            "task a is begin send c.m; end;"
            "task b is begin send c.m; end;"
            "task c is begin accept m; accept m; send d.n; end;"
            "task d is begin accept n; end;"
        )
        s_a = node(sg, "a", "m", "+")
        send_n = node(sg, "c", "n", "+")
        # The counting rule applies: both accepts are chain ordered in c
        # and counts match, so the last accept forces both senders;
        # c's send of n is therefore not reached until either send of m
        # completed.
        assert info.must_precede(s_a, send_n)
        s_b = node(sg, "b", "m", "+")
        assert info.must_precede(s_b, send_n)

    def test_counting_rule_requires_balance(self):
        sg, info = setup(
            "program p;"
            "task a is begin send c.m; end;"
            "task b is begin send c.m; end;"
            "task c is begin accept m; send d.n; end;"
            "task d is begin accept n; end;"
        )
        s_a = node(sg, "a", "m", "+")
        send_n = node(sg, "c", "n", "+")
        # 2 sends vs 1 accept: completing the accept identifies neither
        # sender, so no ordering may be claimed for either send.
        assert not info.must_precede(s_a, send_n)


class TestSequenceableWith:
    def test_symmetric_closure(self, handshake):
        sg = build_sync_graph(handshake)
        info = compute_orderings(sg)
        r = node(sg, "t1", "sig1", "+")
        s = node(sg, "t1", "sig2", "-")
        assert s in info.sequenceable_with(r)
        assert r in info.sequenceable_with(s)

    def test_pair_count_nonnegative(self, crossed):
        sg = build_sync_graph(crossed)
        info = compute_orderings(sg)
        assert info.pair_count >= 0

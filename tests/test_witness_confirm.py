"""Anomaly witnesses, state traces, and the confirmation pass."""

import pytest

from repro.analysis.confirm import (
    ConfirmationOutcome,
    confirm_deadlock_report,
)
from repro.analysis.refined import refined_deadlock_analysis
from repro.analysis.results import Verdict
from repro.errors import ExplorationLimitError
from repro.syncgraph.build import build_sync_graph
from repro.waves.explore import explore
from repro.waves.states import NodeState, label_wave, trace_states
from repro.waves.wave import initial_waves
from repro.waves.witness import find_anomaly_witness
from repro.workloads.patterns import dining_philosophers


class TestWitness:
    def test_crossed_witness_is_immediate(self, crossed):
        graph = build_sync_graph(crossed)
        witness = find_anomaly_witness(graph, "deadlock")
        assert witness is not None
        assert witness.schedule == ()
        assert witness.is_deadlock
        assert len(witness.waves) == 1

    def test_philosophers_witness_schedule(self):
        graph = build_sync_graph(dining_philosophers(3, True))
        witness = find_anomaly_witness(graph, "deadlock")
        assert witness is not None
        # the shortest circular wait: each philosopher grabs one fork
        assert len(witness.schedule) == 3
        signals = {r.signal.message for r, _ in zip(
            [a for a, _ in witness.schedule], witness.schedule
        )}
        assert signals == {"pickup"}

    def test_no_witness_on_clean_program(self, handshake):
        graph = build_sync_graph(handshake)
        assert find_anomaly_witness(graph, "deadlock") is None
        assert find_anomaly_witness(graph, "any") is None

    def test_stall_witness(self, stall_program):
        graph = build_sync_graph(stall_program)
        witness = find_anomaly_witness(graph, "stall")
        assert witness is not None
        assert witness.is_stall and not witness.is_deadlock

    def test_kind_validation(self, handshake):
        with pytest.raises(ValueError):
            find_anomaly_witness(build_sync_graph(handshake), "meltdown")

    def test_state_limit(self):
        graph = build_sync_graph(dining_philosophers(4, True))
        with pytest.raises(ExplorationLimitError):
            find_anomaly_witness(graph, "deadlock", state_limit=2)

    def test_witness_agrees_with_explore(self, fig2b):
        graph = build_sync_graph(fig2b)
        assert explore(graph).has_deadlock
        assert find_anomaly_witness(graph, "deadlock") is not None

    def test_describe_mentions_steps(self):
        graph = build_sync_graph(dining_philosophers(3, True))
        witness = find_anomaly_witness(graph, "deadlock")
        text = witness.describe()
        assert "step 1" in text and "deadlock" in text


class TestStateTraces:
    def test_initial_labels(self, handshake):
        graph = build_sync_graph(handshake)
        (wave,) = initial_waves(graph)
        snap = label_wave(graph, wave, executed=set())
        ready = snap.ready_nodes()
        assert len(ready) == 2  # the sig1 pair can fire
        assert all(
            snap.of(n) == NodeState.NOT_SEEN
            for n in graph.rendezvous_nodes
            if n not in ready
        )
        snap.check_invariants(graph)

    def test_trace_invariants_along_witness(self):
        graph = build_sync_graph(dining_philosophers(3, True))
        witness = find_anomaly_witness(graph, "deadlock")
        snaps = trace_states(graph, witness)
        assert len(snaps) == len(witness.schedule) + 1
        for snap in snaps:
            snap.check_invariants(graph)
        final = snaps[-1]
        assert final.ready_nodes() == ()  # anomalous: no pair ready
        assert len(final.waiting_nodes()) == 6

    def test_executed_labels_accumulate(self):
        graph = build_sync_graph(dining_philosophers(3, True))
        witness = find_anomaly_witness(graph, "deadlock")
        snaps = trace_states(graph, witness)
        executed_counts = [
            sum(
                1
                for s in snap.states.values()
                if s == NodeState.EXECUTED
            )
            for snap in snaps
        ]
        assert executed_counts == sorted(executed_counts)
        assert executed_counts[-1] == 2 * len(witness.schedule)


class TestConfirmation:
    def test_real_deadlock_confirmed(self, crossed):
        graph = build_sync_graph(crossed)
        report = refined_deadlock_analysis(graph)
        confirmed = confirm_deadlock_report(graph, report)
        assert confirmed.outcome == ConfirmationOutcome.CONFIRMED
        assert confirmed.witness is not None
        assert confirmed.final_verdict == ConfirmationOutcome.CONFIRMED

    def test_false_alarm_refuted(self):
        graph = build_sync_graph(dining_philosophers(3, False))
        report = refined_deadlock_analysis(graph)
        assert not report.deadlock_free  # conservative false alarm
        confirmed = confirm_deadlock_report(graph, report)
        assert confirmed.outcome == ConfirmationOutcome.REFUTED
        assert confirmed.final_verdict == Verdict.CERTIFIED_FREE

    def test_certified_report_untouched(self, handshake):
        graph = build_sync_graph(handshake)
        report = refined_deadlock_analysis(graph)
        confirmed = confirm_deadlock_report(graph, report)
        assert confirmed.outcome == ConfirmationOutcome.NOT_NEEDED
        assert confirmed.final_verdict == Verdict.CERTIFIED_FREE

    def test_budget_exhaustion_is_inconclusive(self):
        graph = build_sync_graph(dining_philosophers(4, True))
        report = refined_deadlock_analysis(graph)
        confirmed = confirm_deadlock_report(graph, report, state_limit=2)
        assert confirmed.outcome == ConfirmationOutcome.INCONCLUSIVE
        assert confirmed.final_verdict == report.verdict

    def test_describe(self, crossed):
        graph = build_sync_graph(crossed)
        report = refined_deadlock_analysis(graph)
        text = confirm_deadlock_report(graph, report).describe()
        assert "confirmation: confirmed-deadlock" in text
